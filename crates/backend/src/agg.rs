//! Aggregations: the summarization layer behind DIO's dashboards.
//!
//! Implements the Elasticsearch aggregations the paper's visualizations
//! rely on — `terms` (syscalls per thread name), `date_histogram` (events
//! over time, Fig. 4), `percentiles` (tail latency, Fig. 3), plus `stats`,
//! `value_count` and `cardinality` — all with nested sub-aggregations.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::query::Query;
use crate::value_path::{as_keyword, as_number, get_path};

/// An aggregation request, optionally nested.
///
/// # Examples
///
/// ```
/// use dio_backend::Aggregation;
///
/// // Fig. 4's shape: syscalls over time, split by thread name.
/// let agg = Aggregation::date_histogram("time", 1_000_000_000)
///     .sub("by_thread", Aggregation::terms("proc_name", 16));
/// assert_eq!(agg.field(), "time");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    kind: AggKind,
    field: String,
    sub: BTreeMap<String, Aggregation>,
}

#[derive(Debug, Clone, PartialEq)]
enum AggKind {
    Terms { size: usize },
    Histogram { interval: f64 },
    DateHistogram { interval_ns: u64 },
    Percentiles { percents: Vec<f64> },
    Stats,
    ValueCount,
    Cardinality,
    Min,
    Max,
    Avg,
    Sum,
    Filter { query: Box<Query> },
    Range { ranges: Vec<(Option<f64>, Option<f64>)> },
}

impl Aggregation {
    /// Buckets by distinct keyword value, most-populous first.
    pub fn terms(field: impl Into<String>, size: usize) -> Self {
        Aggregation { kind: AggKind::Terms { size }, field: field.into(), sub: BTreeMap::new() }
    }

    /// Buckets numeric values into fixed-width intervals.
    pub fn histogram(field: impl Into<String>, interval: f64) -> Self {
        Aggregation {
            kind: AggKind::Histogram { interval },
            field: field.into(),
            sub: BTreeMap::new(),
        }
    }

    /// Buckets nanosecond timestamps into fixed windows (gaps filled with
    /// empty buckets so time series stay contiguous).
    pub fn date_histogram(field: impl Into<String>, interval_ns: u64) -> Self {
        Aggregation {
            kind: AggKind::DateHistogram { interval_ns: interval_ns.max(1) },
            field: field.into(),
            sub: BTreeMap::new(),
        }
    }

    /// Computes percentiles of a numeric field.
    pub fn percentiles(field: impl Into<String>, percents: impl IntoIterator<Item = f64>) -> Self {
        Aggregation {
            kind: AggKind::Percentiles { percents: percents.into_iter().collect() },
            field: field.into(),
            sub: BTreeMap::new(),
        }
    }

    /// Count / min / max / avg / sum of a numeric field.
    pub fn stats(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Stats, field: field.into(), sub: BTreeMap::new() }
    }

    /// Number of documents with the field present.
    pub fn value_count(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::ValueCount, field: field.into(), sub: BTreeMap::new() }
    }

    /// Number of distinct values of the field.
    pub fn cardinality(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Cardinality, field: field.into(), sub: BTreeMap::new() }
    }

    /// Minimum of a numeric field.
    pub fn min(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Min, field: field.into(), sub: BTreeMap::new() }
    }

    /// Maximum of a numeric field.
    pub fn max(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Max, field: field.into(), sub: BTreeMap::new() }
    }

    /// Mean of a numeric field.
    pub fn avg(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Avg, field: field.into(), sub: BTreeMap::new() }
    }

    /// Sum of a numeric field.
    pub fn sum(field: impl Into<String>) -> Self {
        Aggregation { kind: AggKind::Sum, field: field.into(), sub: BTreeMap::new() }
    }

    /// A single bucket holding the documents matching `query` — used to
    /// nest metrics under a condition (ES `filter` aggregation).
    pub fn filter(query: Query) -> Self {
        Aggregation {
            kind: AggKind::Filter { query: Box::new(query) },
            field: String::new(),
            sub: BTreeMap::new(),
        }
    }

    /// Buckets a numeric field into explicit `[from, to)` ranges (ES
    /// `range` aggregation); `None` bounds are open.
    pub fn ranges(
        field: impl Into<String>,
        ranges: impl IntoIterator<Item = (Option<f64>, Option<f64>)>,
    ) -> Self {
        Aggregation {
            kind: AggKind::Range { ranges: ranges.into_iter().collect() },
            field: field.into(),
            sub: BTreeMap::new(),
        }
    }

    /// Adds a named sub-aggregation (bucket aggregations only).
    pub fn sub(mut self, name: impl Into<String>, agg: Aggregation) -> Self {
        self.sub.insert(name.into(), agg);
        self
    }

    /// The field this aggregation runs on.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Evaluates the aggregation over a set of documents.
    pub fn compute(&self, docs: &[&Value]) -> AggResult {
        match &self.kind {
            AggKind::Terms { size } => {
                let mut groups: BTreeMap<String, Vec<&Value>> = BTreeMap::new();
                for doc in docs {
                    if let Some(key) = get_path(doc, &self.field).and_then(as_keyword) {
                        groups.entry(key).or_default().push(doc);
                    }
                }
                let mut buckets: Vec<Bucket> = groups
                    .into_iter()
                    .map(|(key, group)| self.bucket(Value::String(key), &group))
                    .collect();
                buckets.sort_by(|a, b| {
                    b.doc_count.cmp(&a.doc_count).then_with(|| {
                        a.key.as_str().unwrap_or("").cmp(b.key.as_str().unwrap_or(""))
                    })
                });
                buckets.truncate(*size);
                AggResult::Buckets(buckets)
            }
            AggKind::Histogram { interval } => {
                let interval = if *interval > 0.0 { *interval } else { 1.0 };
                let mut groups: BTreeMap<i64, Vec<&Value>> = BTreeMap::new();
                for doc in docs {
                    if let Some(n) = get_path(doc, &self.field).and_then(as_number) {
                        groups.entry((n / interval).floor() as i64).or_default().push(doc);
                    }
                }
                let buckets =
                    self.fill_numeric_buckets(groups, |slot| Value::from(slot as f64 * interval));
                AggResult::Buckets(buckets)
            }
            AggKind::DateHistogram { interval_ns } => {
                let mut groups: BTreeMap<i64, Vec<&Value>> = BTreeMap::new();
                for doc in docs {
                    if let Some(n) = get_path(doc, &self.field).and_then(as_number) {
                        groups
                            .entry((n / *interval_ns as f64).floor() as i64)
                            .or_default()
                            .push(doc);
                    }
                }
                let interval = *interval_ns;
                let buckets =
                    self.fill_numeric_buckets(groups, |slot| Value::from(slot as u64 * interval));
                AggResult::Buckets(buckets)
            }
            AggKind::Percentiles { percents } => {
                let mut values: Vec<f64> = docs
                    .iter()
                    .filter_map(|d| get_path(d, &self.field).and_then(as_number))
                    .collect();
                values.sort_by(f64::total_cmp);
                let out = percents.iter().map(|&p| (p, percentile(&values, p))).collect();
                AggResult::Percentiles(out)
            }
            AggKind::Stats => {
                let mut stats = StatsResult::default();
                for doc in docs {
                    if let Some(n) = get_path(doc, &self.field).and_then(as_number) {
                        stats.push(n);
                    }
                }
                AggResult::Stats(stats)
            }
            AggKind::ValueCount => {
                let n = docs.iter().filter(|d| get_path(d, &self.field).is_some()).count();
                AggResult::Value(n as f64)
            }
            AggKind::Cardinality => {
                let distinct: std::collections::HashSet<String> = docs
                    .iter()
                    .filter_map(|d| get_path(d, &self.field))
                    .map(|v| v.to_string())
                    .collect();
                AggResult::Value(distinct.len() as f64)
            }
            AggKind::Min | AggKind::Max | AggKind::Avg | AggKind::Sum => {
                let values: Vec<f64> = docs
                    .iter()
                    .filter_map(|d| get_path(d, &self.field).and_then(as_number))
                    .collect();
                let v = if values.is_empty() {
                    f64::NAN
                } else {
                    match &self.kind {
                        AggKind::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
                        AggKind::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        AggKind::Avg => values.iter().sum::<f64>() / values.len() as f64,
                        _ => values.iter().sum::<f64>(),
                    }
                };
                AggResult::Value(v)
            }
            AggKind::Filter { query } => {
                let matching: Vec<&Value> =
                    docs.iter().copied().filter(|d| query.matches(d)).collect();
                AggResult::Buckets(vec![self.bucket(Value::Bool(true), &matching)])
            }
            AggKind::Range { ranges } => {
                let buckets = ranges
                    .iter()
                    .map(|(from, to)| {
                        let members: Vec<&Value> = docs
                            .iter()
                            .copied()
                            .filter(|d| {
                                let Some(n) = get_path(d, &self.field).and_then(as_number) else {
                                    return false;
                                };
                                from.is_none_or(|f| n >= f) && to.is_none_or(|t| n < t)
                            })
                            .collect();
                        let key = format!(
                            "{}-{}",
                            from.map_or("*".to_string(), |f| f.to_string()),
                            to.map_or("*".to_string(), |t| t.to_string())
                        );
                        self.bucket(Value::String(key), &members)
                    })
                    .collect();
                AggResult::Buckets(buckets)
            }
        }
    }

    fn bucket(&self, key: Value, docs: &[&Value]) -> Bucket {
        let sub = self.sub.iter().map(|(name, agg)| (name.clone(), agg.compute(docs))).collect();
        Bucket { key, doc_count: docs.len() as u64, sub }
    }

    /// Materializes numeric buckets in key order, filling interior gaps with
    /// empty buckets (bounded to 100 000 buckets to stay safe).
    fn fill_numeric_buckets(
        &self,
        groups: BTreeMap<i64, Vec<&Value>>,
        key_of: impl Fn(i64) -> Value,
    ) -> Vec<Bucket> {
        let Some((&min, _)) = groups.first_key_value() else {
            return Vec::new();
        };
        let (&max, _) = groups.last_key_value().expect("non-empty");
        let span = (max - min) as u64 + 1;
        if span > 100_000 {
            // Too sparse to fill: emit only occupied buckets.
            return groups
                .into_iter()
                .map(|(slot, docs)| self.bucket(key_of(slot), &docs))
                .collect();
        }
        let empty: Vec<&Value> = Vec::new();
        (min..=max)
            .map(|slot| match groups.get(&slot) {
                Some(docs) => self.bucket(key_of(slot), docs),
                None => self.bucket(key_of(slot), &empty),
            })
            .collect()
    }
}

/// Linear-interpolation percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0) * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi.min(sorted.len() - 1)] * frac
    }
}

/// One bucket of a bucket aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// The bucket key (string for `terms`, number for histograms).
    pub key: Value,
    /// Number of documents in the bucket.
    pub doc_count: u64,
    /// Results of nested sub-aggregations.
    pub sub: BTreeMap<String, AggResult>,
}

/// `stats` aggregation output.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsResult {
    /// Number of numeric values seen.
    pub count: u64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sum.
    pub sum: f64,
}

impl StatsResult {
    fn push(&mut self, n: f64) {
        if self.count == 0 {
            self.min = n;
            self.max = n;
        } else {
            self.min = self.min.min(n);
            self.max = self.max.max(n);
        }
        self.sum += n;
        self.count += 1;
    }

    /// Arithmetic mean (NaN when empty).
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The result of one aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum AggResult {
    /// Bucket list (`terms`, `histogram`, `date_histogram`).
    Buckets(Vec<Bucket>),
    /// `(percent, value)` pairs.
    Percentiles(Vec<(f64, f64)>),
    /// `stats` output.
    Stats(StatsResult),
    /// Single-valued result (`value_count`, `cardinality`).
    Value(f64),
}

impl AggResult {
    /// The buckets of a bucket aggregation (empty slice otherwise).
    pub fn buckets(&self) -> &[Bucket] {
        match self {
            AggResult::Buckets(b) => b,
            _ => &[],
        }
    }

    /// The single value of a metric aggregation.
    pub fn value(&self) -> Option<f64> {
        match self {
            AggResult::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a percentile result.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        match self {
            AggResult::Percentiles(pairs) => {
                pairs.iter().find(|(q, _)| (*q - p).abs() < 1e-9).map(|(_, v)| *v)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn docs() -> Vec<Value> {
        vec![
            json!({"proc_name": "db_bench", "time": 1_000, "lat": 10}),
            json!({"proc_name": "db_bench", "time": 1_500, "lat": 20}),
            json!({"proc_name": "rocksdb:low0", "time": 2_100, "lat": 500}),
            json!({"proc_name": "rocksdb:low0", "time": 4_200, "lat": 700}),
            json!({"proc_name": "rocksdb:high0", "time": 4_300, "lat": 100}),
        ]
    }

    fn refs(docs: &[Value]) -> Vec<&Value> {
        docs.iter().collect()
    }

    #[test]
    fn terms_orders_by_count() {
        let d = docs();
        let res = Aggregation::terms("proc_name", 10).compute(&refs(&d));
        let buckets = res.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].doc_count, 2);
        // tie (2,2) broken by key: db_bench < rocksdb:low0
        assert_eq!(buckets[0].key, json!("db_bench"));
        assert_eq!(buckets[1].key, json!("rocksdb:low0"));
        assert_eq!(buckets[2].key, json!("rocksdb:high0"));
    }

    #[test]
    fn terms_size_truncates() {
        let d = docs();
        let res = Aggregation::terms("proc_name", 1).compute(&refs(&d));
        assert_eq!(res.buckets().len(), 1);
    }

    #[test]
    fn date_histogram_fills_gaps() {
        let d = docs();
        let res = Aggregation::date_histogram("time", 1_000).compute(&refs(&d));
        let buckets = res.buckets();
        // Slots 1..=4 with slot 3 empty.
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].key, json!(1_000));
        assert_eq!(buckets[0].doc_count, 2);
        assert_eq!(buckets[2].key, json!(3_000));
        assert_eq!(buckets[2].doc_count, 0);
        assert_eq!(buckets[3].doc_count, 2);
    }

    #[test]
    fn nested_terms_under_histogram() {
        let d = docs();
        let agg = Aggregation::date_histogram("time", 1_000)
            .sub("by_thread", Aggregation::terms("proc_name", 10));
        let res = agg.compute(&refs(&d));
        let first = &res.buckets()[0];
        let by_thread = first.sub["by_thread"].buckets();
        assert_eq!(by_thread.len(), 1);
        assert_eq!(by_thread[0].key, json!("db_bench"));
        assert_eq!(by_thread[0].doc_count, 2);
    }

    #[test]
    fn percentiles_interpolate() {
        let vals: Vec<Value> = (1..=100).map(|i| json!({ "v": i })).collect();
        let res = Aggregation::percentiles("v", [50.0, 99.0]).compute(&refs(&vals));
        let p50 = res.percentile(50.0).unwrap();
        let p99 = res.percentile(99.0).unwrap();
        assert!((p50 - 50.5).abs() < 0.01, "p50={p50}");
        assert!((p99 - 99.01).abs() < 0.1, "p99={p99}");
        assert!(res.percentile(10.0).is_none());
    }

    #[test]
    fn percentiles_empty_is_nan() {
        let res = Aggregation::percentiles("v", [50.0]).compute(&[]);
        assert!(res.percentile(50.0).unwrap().is_nan());
    }

    #[test]
    fn stats_and_counts() {
        let d = docs();
        let res = Aggregation::stats("lat").compute(&refs(&d));
        match res {
            AggResult::Stats(s) => {
                assert_eq!(s.count, 5);
                assert_eq!(s.min, 10.0);
                assert_eq!(s.max, 700.0);
                assert_eq!(s.sum, 1330.0);
                assert!((s.avg() - 266.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Aggregation::value_count("lat").compute(&refs(&d)).value(), Some(5.0));
        assert_eq!(Aggregation::cardinality("proc_name").compute(&refs(&d)).value(), Some(3.0));
    }

    #[test]
    fn histogram_numeric() {
        let vals: Vec<Value> = [1.0, 2.5, 7.9, 8.0].iter().map(|v| json!({ "v": v })).collect();
        let res = Aggregation::histogram("v", 4.0).compute(&refs(&vals));
        let b = res.buckets();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].key, json!(0.0));
        assert_eq!(b[0].doc_count, 2);
        assert_eq!(b[1].doc_count, 1); // 7.9 in [4,8)
        assert_eq!(b[2].doc_count, 1); // 8.0 in [8,12)
    }

    #[test]
    fn single_value_metrics() {
        let d = docs();
        let r = refs(&d);
        assert_eq!(Aggregation::min("lat").compute(&r).value(), Some(10.0));
        assert_eq!(Aggregation::max("lat").compute(&r).value(), Some(700.0));
        assert_eq!(Aggregation::sum("lat").compute(&r).value(), Some(1330.0));
        assert!((Aggregation::avg("lat").compute(&r).value().unwrap() - 266.0).abs() < 1e-9);
        assert!(Aggregation::min("missing").compute(&r).value().unwrap().is_nan());
    }

    #[test]
    fn filter_agg_scopes_sub_metrics() {
        let d = docs();
        let agg = Aggregation::filter(Query::term("proc_name", "db_bench"))
            .sub("lat", Aggregation::max("lat"));
        let res = agg.compute(&refs(&d));
        let bucket = &res.buckets()[0];
        assert_eq!(bucket.doc_count, 2);
        assert_eq!(bucket.sub["lat"].value(), Some(20.0), "max over db_bench only");
    }

    #[test]
    fn range_agg_buckets_by_bounds() {
        let d = docs();
        let agg = Aggregation::ranges(
            "lat",
            [(None, Some(100.0)), (Some(100.0), Some(600.0)), (Some(600.0), None)],
        );
        let res = agg.compute(&refs(&d));
        let counts: Vec<u64> = res.buckets().iter().map(|b| b.doc_count).collect();
        assert_eq!(counts, vec![2, 2, 1]);
        assert_eq!(res.buckets()[0].key, serde_json::json!("*-100"));
        assert_eq!(res.buckets()[2].key, serde_json::json!("600-*"));
    }

    #[test]
    fn missing_fields_are_ignored() {
        let d = vec![json!({"other": 1})];
        assert!(Aggregation::terms("proc_name", 5).compute(&refs(&d)).buckets().is_empty());
        assert_eq!(Aggregation::value_count("x").compute(&refs(&d)).value(), Some(0.0));
    }
}
