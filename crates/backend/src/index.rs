//! A document index: storage + inverted indexes + search.

use std::collections::{BTreeMap, HashMap, HashSet};

use parking_lot::RwLock;
use serde_json::Value;

use crate::agg::{AggResult, Aggregation};
use crate::query::{compare_docs, Query, SortOrder};
use crate::value_path::{as_keyword, as_number, for_each_leaf};

/// Total-ordered wrapper over `f64` usable as a BTreeMap key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FKey(f64);

impl Eq for FKey {}

impl PartialOrd for FKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Default)]
struct IndexInner {
    docs: HashMap<u64, Value>,
    order: Vec<u64>,
    keywords: HashMap<String, HashMap<String, HashSet<u64>>>,
    numerics: HashMap<String, BTreeMap<FKey, HashSet<u64>>>,
    /// Documents accepted but not yet merged into the inverted indexes.
    /// Mirrors Elasticsearch's near-real-time model: `_bulk` buffers, a
    /// *refresh* makes documents searchable. Queries trigger the refresh.
    pending: Vec<u64>,
    next_id: u64,
    deletions: u64,
}

impl IndexInner {
    fn index_doc(&mut self, id: u64, doc: &Value) {
        for_each_leaf(doc, &mut |path, leaf| {
            if let Some(kw) = as_keyword(leaf) {
                self.keywords
                    .entry(path.to_string())
                    .or_default()
                    .entry(kw)
                    .or_default()
                    .insert(id);
            } else if let Some(n) = as_number(leaf) {
                self.numerics
                    .entry(path.to_string())
                    .or_default()
                    .entry(FKey(n))
                    .or_default()
                    .insert(id);
            }
        });
    }

    fn unindex_doc(&mut self, id: u64, doc: &Value) {
        for_each_leaf(doc, &mut |path, leaf| {
            if let Some(kw) = as_keyword(leaf) {
                if let Some(terms) = self.keywords.get_mut(path) {
                    if let Some(set) = terms.get_mut(&kw) {
                        set.remove(&id);
                        if set.is_empty() {
                            terms.remove(&kw);
                        }
                    }
                }
            } else if let Some(n) = as_number(leaf) {
                if let Some(tree) = self.numerics.get_mut(path) {
                    if let Some(set) = tree.get_mut(&FKey(n)) {
                        set.remove(&id);
                        if set.is_empty() {
                            tree.remove(&FKey(n));
                        }
                    }
                }
            }
        });
    }

    /// Returns the candidate doc-id set for a query, or `None` when the
    /// query cannot be narrowed by the indexes (meaning: scan everything).
    /// Candidates are a superset of matches; the caller re-verifies.
    fn candidates(&self, query: &Query) -> Option<HashSet<u64>> {
        match query {
            Query::Term { field, value } => {
                if let Some(kw) = as_keyword(value) {
                    Some(
                        self.keywords
                            .get(field)
                            .and_then(|t| t.get(&kw))
                            .cloned()
                            .unwrap_or_default(),
                    )
                } else {
                    as_number(value).map(|n| {
                        self.numerics
                            .get(field)
                            .and_then(|t| t.get(&FKey(n)))
                            .cloned()
                            .unwrap_or_default()
                    })
                }
            }
            Query::Terms { field, values } => {
                let mut out = HashSet::new();
                for v in values {
                    match self.candidates(&Query::Term { field: field.clone(), value: v.clone() }) {
                        Some(ids) => out.extend(ids),
                        None => return None,
                    }
                }
                Some(out)
            }
            Query::Range { field, gte, gt, lte, lt } => {
                let tree = match self.numerics.get(field) {
                    Some(t) => t,
                    None => return Some(HashSet::new()),
                };
                use std::ops::Bound;
                let lower = match (gte, gt) {
                    (Some(a), Some(b)) if b >= a => Bound::Excluded(FKey(*b)),
                    (Some(a), _) => Bound::Included(FKey(*a)),
                    (None, Some(b)) => Bound::Excluded(FKey(*b)),
                    (None, None) => Bound::Unbounded,
                };
                let upper = match (lte, lt) {
                    (Some(a), Some(b)) if b <= a => Bound::Excluded(FKey(*b)),
                    (Some(a), _) => Bound::Included(FKey(*a)),
                    (None, Some(b)) => Bound::Excluded(FKey(*b)),
                    (None, None) => Bound::Unbounded,
                };
                let mut out = HashSet::new();
                for (_, ids) in tree.range((lower, upper)) {
                    out.extend(ids);
                }
                Some(out)
            }
            Query::Prefix { field, prefix } => {
                let terms = match self.keywords.get(field) {
                    Some(t) => t,
                    None => return Some(HashSet::new()),
                };
                let mut out = HashSet::new();
                for (term, ids) in terms {
                    if term.starts_with(prefix.as_str()) {
                        out.extend(ids);
                    }
                }
                Some(out)
            }
            Query::Bool { must, should, must_not: _ } => {
                // Intersect the narrowable must clauses; union the shoulds.
                let mut acc: Option<HashSet<u64>> = None;
                for q in must {
                    if let Some(ids) = self.candidates(q) {
                        acc = Some(match acc {
                            None => ids,
                            Some(prev) => prev.intersection(&ids).copied().collect(),
                        });
                    }
                }
                if acc.is_none() && !should.is_empty() {
                    let mut union = HashSet::new();
                    for q in should {
                        match self.candidates(q) {
                            Some(ids) => union.extend(ids),
                            None => return None,
                        }
                    }
                    acc = Some(union);
                }
                acc
            }
            Query::MatchAll | Query::Exists { .. } => None,
        }
    }

    fn matching_ids(&self, query: &Query) -> Vec<u64> {
        match self.candidates(query) {
            Some(cands) => {
                // Preserve insertion order for stable results.
                self.order
                    .iter()
                    .copied()
                    .filter(|id| cands.contains(id))
                    .filter(|id| self.docs.get(id).is_some_and(|d| query.matches(d)))
                    .collect()
            }
            None => self
                .order
                .iter()
                .copied()
                .filter(|id| self.docs.get(id).is_some_and(|d| query.matches(d)))
                .collect(),
        }
    }
}

/// A search request: query + sort + pagination + aggregations.
///
/// Defaults: match-all, insertion order, first 10 000 hits, no aggregations.
/// Aggregations always run over *all* matching documents, as in
/// Elasticsearch.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The filter query.
    pub query: Query,
    /// Sort keys, applied in order.
    pub sort: Vec<(String, SortOrder)>,
    /// Offset into the sorted hit list.
    pub from: usize,
    /// Maximum hits returned.
    pub size: usize,
    /// Named aggregations.
    pub aggs: BTreeMap<String, Aggregation>,
}

impl SearchRequest {
    /// A request returning documents matching `query`.
    pub fn new(query: Query) -> Self {
        SearchRequest { query, sort: Vec::new(), from: 0, size: 10_000, aggs: BTreeMap::new() }
    }

    /// A match-all request (useful for pure aggregations).
    pub fn match_all() -> Self {
        Self::new(Query::MatchAll)
    }

    /// Adds a sort key.
    pub fn sort_by(mut self, field: impl Into<String>, order: SortOrder) -> Self {
        self.sort.push((field.into(), order));
        self
    }

    /// Sets the pagination offset.
    pub fn from(mut self, from: usize) -> Self {
        self.from = from;
        self
    }

    /// Sets the maximum number of hits.
    pub fn size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Adds a named aggregation.
    pub fn agg(mut self, name: impl Into<String>, agg: Aggregation) -> Self {
        self.aggs.insert(name.into(), agg);
        self
    }
}

/// One returned document.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Document id within the index.
    pub id: u64,
    /// The document body.
    pub source: Value,
}

/// The result of [`Index::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Total matching documents (before pagination).
    pub total: u64,
    /// The requested page of hits.
    pub hits: Vec<Hit>,
    /// Aggregation results over all matches.
    pub aggs: BTreeMap<String, AggResult>,
}

/// A thread-safe document index with keyword and numeric inverted indexes.
///
/// # Examples
///
/// ```
/// use dio_backend::{Index, Query, SearchRequest};
/// use serde_json::json;
///
/// let index = Index::new("events");
/// index.bulk(vec![json!({"syscall": "read"}), json!({"syscall": "write"})]);
/// let res = index.search(&SearchRequest::new(Query::term("syscall", "read")));
/// assert_eq!(res.total, 1);
/// ```
pub struct Index {
    name: String,
    inner: RwLock<IndexInner>,
    /// Query-latency histogram, bound by the owning [`crate::DocStore`]
    /// when telemetry is enabled.
    query_ns: std::sync::OnceLock<std::sync::Arc<dio_telemetry::Histogram>>,
    /// Continuous-query subscribers; ingest delivers batch copies to each
    /// (see [`crate::Subscription`]). Kept outside `inner` so delivery
    /// happens after the ingest write lock is released.
    subscribers: RwLock<Vec<std::sync::Arc<crate::subscribe::SubQueue>>>,
    /// Write-through persistence, set when the owning [`crate::DocStore`]
    /// was opened on disk. Every accepted mutation is appended (and on
    /// disk) before the call acknowledges; the in-memory structures stay
    /// the query path.
    persist: Option<std::sync::Arc<crate::storage::StorageEngine>>,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index").field("name", &self.name).field("docs", &self.len()).finish()
    }
}

impl Index {
    /// Creates an empty in-memory index.
    pub fn new(name: impl Into<String>) -> Self {
        Index {
            name: name.into(),
            inner: RwLock::new(IndexInner::default()),
            query_ns: std::sync::OnceLock::new(),
            subscribers: RwLock::new(Vec::new()),
            persist: None,
        }
    }

    /// Creates an empty index that writes through to `engine`.
    pub(crate) fn new_persistent(
        name: impl Into<String>,
        engine: std::sync::Arc<crate::storage::StorageEngine>,
    ) -> Self {
        let mut index = Index::new(name);
        index.persist = Some(engine);
        index
    }

    /// Rebuilds an index from recovered documents (sorted by id). The
    /// inverted indexes are built lazily at the first query, so reopening
    /// a large store stays cheap until someone actually searches it.
    pub(crate) fn from_persisted(
        name: impl Into<String>,
        engine: std::sync::Arc<crate::storage::StorageEngine>,
        docs: Vec<(u64, Vec<u8>)>,
    ) -> Self {
        let index = Index::new_persistent(name, engine);
        {
            let mut inner = index.inner.write();
            for (id, bytes) in docs {
                let text = std::str::from_utf8(&bytes).expect("recovered document is UTF-8");
                let doc: Value =
                    serde_json::from_str(text).expect("recovered document parses as JSON");
                inner.docs.insert(id, doc);
                inner.order.push(id);
                inner.pending.push(id);
                inner.next_id = inner.next_id.max(id + 1);
            }
        }
        index
    }

    /// Serializes a document for the write-through log (done before any
    /// lock is taken).
    fn persist_bytes(doc: &Value) -> Vec<u8> {
        serde_json::to_string(doc).expect("document serializes").into_bytes()
    }

    /// Opens a continuous query: every batch accepted from now on is also
    /// delivered to the returned [`crate::Subscription`], whose bounded
    /// queue holds up to `capacity` batches (overflow drops batches for
    /// that subscriber — ingest never blocks).
    pub fn subscribe(&self, capacity: usize) -> crate::Subscription {
        let queue = std::sync::Arc::new(crate::subscribe::SubQueue::new(capacity));
        self.subscribers.write().push(std::sync::Arc::clone(&queue));
        crate::Subscription::new(self.name.clone(), queue)
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().iter().filter(|s| s.is_alive()).count()
    }

    fn has_subscribers(&self) -> bool {
        !self.subscribers.read().is_empty()
    }

    /// Delivers a batch copy to every live subscriber and prunes dead
    /// ones. Called outside the ingest write lock.
    fn notify_subscribers(&self, batch: &[Value]) {
        let mut saw_dead = false;
        for sub in self.subscribers.read().iter() {
            if sub.is_alive() {
                sub.offer(batch);
            } else {
                saw_dead = true;
            }
        }
        if saw_dead {
            self.subscribers.write().retain(|s| s.is_alive());
        }
    }

    pub(crate) fn bind_query_histogram(&self, histogram: std::sync::Arc<dio_telemetry::Histogram>) {
        let _ = self.query_ns.set(histogram);
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the index holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accepts one document, returning its id. The document becomes
    /// searchable at the next [`Index::refresh`] (queries refresh
    /// implicitly, as in Elasticsearch's near-real-time model).
    pub fn index_doc(&self, doc: Value) -> u64 {
        // Copy for subscribers before the document moves into the store;
        // the copy is skipped entirely when nobody subscribed.
        let snapshot = self.has_subscribers().then(|| vec![doc.clone()]);
        let bytes = self.persist.as_ref().map(|_| Self::persist_bytes(&doc));
        let id = {
            let mut inner = self.inner.write();
            let id = inner.next_id;
            inner.next_id += 1;
            if let (Some(engine), Some(bytes)) = (&self.persist, bytes) {
                engine
                    .append_puts(&self.name, vec![(id, bytes)])
                    .expect("dio-backend: persistent append failed");
            }
            inner.docs.insert(id, doc);
            inner.order.push(id);
            inner.pending.push(id);
            id
        };
        if let Some(batch) = snapshot {
            self.notify_subscribers(&batch);
        }
        id
    }

    /// Bulk-accepts documents under one lock acquisition (the analogue of
    /// Elasticsearch's `_bulk` API the tracer batches into). Ingestion is
    /// O(1) per document; the inverted indexes are built at refresh time,
    /// keeping the hot tracing path cheap — in the paper's deployment this
    /// work happens on the separate backend server.
    pub fn bulk(&self, docs: Vec<Value>) -> Vec<u64> {
        let snapshot = self.has_subscribers().then(|| docs.clone());
        // Serialize for the write-through log before taking the lock.
        let bytes: Option<Vec<Vec<u8>>> =
            self.persist.as_ref().map(|_| docs.iter().map(Self::persist_bytes).collect());
        let ids = {
            let mut inner = self.inner.write();
            let mut ids = Vec::with_capacity(docs.len());
            let first_id = inner.next_id;
            if let (Some(engine), Some(bytes)) = (&self.persist, bytes) {
                let puts = bytes.into_iter().enumerate().map(|(i, b)| (first_id + i as u64, b));
                engine
                    .append_puts(&self.name, puts.collect())
                    .expect("dio-backend: persistent append failed");
            }
            for doc in docs {
                let id = inner.next_id;
                inner.next_id += 1;
                inner.docs.insert(id, doc);
                inner.order.push(id);
                inner.pending.push(id);
                ids.push(id);
            }
            ids
        };
        if let Some(batch) = snapshot {
            self.notify_subscribers(&batch);
        }
        ids
    }

    /// Merges pending documents into the inverted indexes. Called
    /// implicitly by every query entry point.
    pub fn refresh(&self) {
        if self.inner.read().pending.is_empty() {
            return;
        }
        let mut inner = self.inner.write();
        let pending = std::mem::take(&mut inner.pending);
        for id in pending {
            if let Some(doc) = inner.docs.remove(&id) {
                inner.index_doc(id, &doc);
                inner.docs.insert(id, doc);
            }
        }
    }

    /// Fetches a document by id.
    pub fn get(&self, id: u64) -> Option<Value> {
        self.inner.read().docs.get(&id).cloned()
    }

    /// Deletes a document by id, returning whether it existed.
    pub fn delete(&self, id: u64) -> bool {
        self.refresh();
        let mut inner = self.inner.write();
        let Some(doc) = inner.docs.remove(&id) else {
            return false;
        };
        if let Some(engine) = &self.persist {
            engine.append_delete(&self.name, id).expect("dio-backend: persistent delete failed");
        }
        inner.unindex_doc(id, &doc);
        inner.deletions += 1;
        // Compact `order` lazily once deletions pile up.
        if inner.deletions > 1024 && inner.deletions * 2 > inner.order.len() as u64 {
            let live: HashSet<u64> = inner.docs.keys().copied().collect();
            inner.order.retain(|i| live.contains(i));
            inner.deletions = 0;
        }
        true
    }

    /// Counts documents matching `query`.
    pub fn count(&self, query: &Query) -> u64 {
        self.refresh();
        self.inner.read().matching_ids(query).len() as u64
    }

    /// Executes a search.
    pub fn search(&self, request: &SearchRequest) -> SearchResponse {
        let _timer = self.query_ns.get().map(|h| h.start_timer());
        self.refresh();
        let inner = self.inner.read();
        let mut ids = inner.matching_ids(&request.query);
        if !request.sort.is_empty() {
            ids.sort_by(|a, b| {
                let da = &inner.docs[a];
                let db = &inner.docs[b];
                for (field, order) in &request.sort {
                    let ord = compare_docs(da, db, field, *order);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let total = ids.len() as u64;
        let aggs = if request.aggs.is_empty() {
            BTreeMap::new()
        } else {
            let docs: Vec<&Value> = ids.iter().map(|id| &inner.docs[id]).collect();
            request.aggs.iter().map(|(name, agg)| (name.clone(), agg.compute(&docs))).collect()
        };
        let hits = ids
            .into_iter()
            .skip(request.from)
            .take(request.size)
            .map(|id| Hit { id, source: inner.docs[&id].clone() })
            .collect();
        SearchResponse { total, hits, aggs }
    }

    /// Applies `update` to every document matching `query`, keeping the
    /// inverted indexes consistent. Returns the number of updated documents.
    ///
    /// This is the primitive DIO's *file path correlation algorithm* uses
    /// (Elasticsearch `_update_by_query`).
    pub fn update_by_query(&self, query: &Query, mut update: impl FnMut(&mut Value)) -> usize {
        self.refresh();
        let mut inner = self.inner.write();
        let ids = inner.matching_ids(query);
        let mut rewritten: Vec<(u64, Vec<u8>)> = Vec::new();
        for &id in &ids {
            let mut doc = inner.docs.remove(&id).expect("id from matching_ids");
            inner.unindex_doc(id, &doc);
            update(&mut doc);
            inner.index_doc(id, &doc);
            if self.persist.is_some() {
                rewritten.push((id, Self::persist_bytes(&doc)));
            }
            inner.docs.insert(id, doc);
        }
        if let Some(engine) = &self.persist {
            if !rewritten.is_empty() {
                engine
                    .append_puts(&self.name, rewritten)
                    .expect("dio-backend: persistent update failed");
            }
        }
        ids.len()
    }

    /// Deletes every document matching `query`, returning how many.
    pub fn delete_by_query(&self, query: &Query) -> usize {
        self.refresh();
        let ids = self.inner.read().matching_ids(query);
        for &id in &ids {
            self.delete(id);
        }
        ids.len()
    }
}

impl Drop for Index {
    /// Closing the index (store shutdown, `delete_index`, reopen cycle)
    /// closes every subscription deterministically: queued batches stay
    /// drainable, but receives return `None` immediately instead of
    /// waiting out their timeout, and [`crate::Subscription::is_closed`]
    /// flips to true. See the `subscribe` module docs.
    fn drop(&mut self) {
        for sub in self.subscribers.read().iter() {
            sub.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample_index() -> Index {
        let idx = Index::new("t");
        idx.bulk(vec![
            json!({"syscall": "openat", "tid": 1, "time": 100, "ret_val": 3}),
            json!({"syscall": "write", "tid": 1, "time": 200, "ret_val": 26, "offset": 0}),
            json!({"syscall": "read", "tid": 2, "time": 300, "ret_val": 26, "offset": 0}),
            json!({"syscall": "read", "tid": 2, "time": 400, "ret_val": 0, "offset": 26}),
            json!({"syscall": "close", "tid": 1, "time": 500, "ret_val": 0}),
        ]);
        idx
    }

    #[test]
    fn term_search_uses_keyword_index() {
        let idx = sample_index();
        let res = idx.search(&SearchRequest::new(Query::term("syscall", "read")));
        assert_eq!(res.total, 2);
        assert!(res.hits.iter().all(|h| h.source["syscall"] == "read"));
    }

    #[test]
    fn numeric_term_and_range() {
        let idx = sample_index();
        assert_eq!(idx.count(&Query::term("tid", 1)), 3);
        assert_eq!(idx.count(&Query::range("time").gte(200.0).lte(400.0).build()), 3);
        assert_eq!(idx.count(&Query::range("time").gt(200.0).lt(400.0).build()), 1);
        assert_eq!(idx.count(&Query::range("missing_field").gte(0.0).build()), 0);
    }

    #[test]
    fn bool_narrowing_still_correct() {
        let idx = sample_index();
        let q = Query::bool_query()
            .must(Query::term("syscall", "read"))
            .must(Query::term("tid", 2))
            .must_not(Query::term("ret_val", 0))
            .build();
        assert_eq!(idx.count(&q), 1);
    }

    #[test]
    fn sort_and_pagination() {
        let idx = sample_index();
        let res = idx
            .search(&SearchRequest::match_all().sort_by("time", SortOrder::Desc).from(1).size(2));
        assert_eq!(res.total, 5);
        assert_eq!(res.hits.len(), 2);
        assert_eq!(res.hits[0].source["time"], 400);
        assert_eq!(res.hits[1].source["time"], 300);
    }

    #[test]
    fn insertion_order_without_sort() {
        let idx = sample_index();
        let res = idx.search(&SearchRequest::match_all());
        let times: Vec<_> = res.hits.iter().map(|h| h.source["time"].as_u64().unwrap()).collect();
        assert_eq!(times, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn aggregations_cover_all_matches_not_page() {
        let idx = sample_index();
        let res = idx.search(
            &SearchRequest::match_all()
                .size(1)
                .agg("by_syscall", Aggregation::terms("syscall", 10)),
        );
        assert_eq!(res.hits.len(), 1);
        let buckets = res.aggs["by_syscall"].buckets();
        assert_eq!(buckets.iter().map(|b| b.doc_count).sum::<u64>(), 5);
    }

    #[test]
    fn get_delete_roundtrip() {
        let idx = Index::new("t");
        let id = idx.index_doc(json!({"a": 1}));
        assert_eq!(idx.get(id).unwrap()["a"], 1);
        assert!(idx.delete(id));
        assert!(!idx.delete(id));
        assert!(idx.get(id).is_none());
        assert_eq!(idx.count(&Query::term("a", 1)), 0);
    }

    #[test]
    fn update_by_query_reindexes() {
        let idx = sample_index();
        let n = idx.update_by_query(&Query::term("tid", 2), |doc| {
            doc["file_path"] = json!("/tmp/app.log");
        });
        assert_eq!(n, 2);
        // The new field is queryable through the index.
        assert_eq!(idx.count(&Query::term("file_path", "/tmp/app.log")), 2);
        assert_eq!(idx.count(&Query::exists("file_path")), 2);
    }

    #[test]
    fn update_by_query_moves_terms() {
        let idx = Index::new("t");
        idx.index_doc(json!({"s": "a"}));
        idx.update_by_query(&Query::term("s", "a"), |doc| {
            doc["s"] = json!("b");
        });
        assert_eq!(idx.count(&Query::term("s", "a")), 0);
        assert_eq!(idx.count(&Query::term("s", "b")), 1);
    }

    #[test]
    fn delete_by_query() {
        let idx = sample_index();
        assert_eq!(idx.delete_by_query(&Query::term("tid", 1)), 3);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.count(&Query::MatchAll), 2);
    }

    #[test]
    fn prefix_query_through_index() {
        let idx = Index::new("t");
        idx.bulk(vec![
            json!({"file_path": "/db/LOG"}),
            json!({"file_path": "/db/000001.sst"}),
            json!({"file_path": "/tmp/x"}),
        ]);
        assert_eq!(idx.count(&Query::prefix("file_path", "/db/")), 2);
    }

    #[test]
    fn nested_fields_indexed_with_dotted_paths() {
        let idx = Index::new("t");
        idx.index_doc(json!({"args": {"count": 26, "path": "/f"}}));
        assert_eq!(idx.count(&Query::term("args.count", 26)), 1);
        assert_eq!(idx.count(&Query::term("args.path", "/f")), 1);
    }

    #[test]
    fn many_deletions_compact_order() {
        let idx = Index::new("t");
        let ids = idx.bulk((0..5000).map(|i| json!({ "i": i })).collect());
        for id in &ids[..4000] {
            idx.delete(*id);
        }
        assert_eq!(idx.len(), 1000);
        let res = idx.search(&SearchRequest::match_all().size(usize::MAX));
        assert_eq!(res.total, 1000);
    }
}
