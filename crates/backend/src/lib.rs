#![warn(missing_docs)]

//! DIO's analysis backend: an embedded document store standing in for
//! Elasticsearch.
//!
//! The paper's backend "persists and indexes events ... and allows users to
//! query and summarize stored information" (§II-C). This crate provides the
//! pieces DIO actually uses:
//!
//! * [`DocStore`] / [`Index`] — JSON document storage with keyword and
//!   numeric inverted indexes, bulk indexing, and update/delete-by-query
//!   (the substrate of the file-path correlation algorithm);
//! * [`Query`] — a bool/term/terms/range/prefix/exists query DSL;
//! * [`Aggregation`] — terms, histogram, date-histogram, percentiles,
//!   stats, value-count and cardinality aggregations with nesting, which
//!   power every dashboard in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use dio_backend::{Aggregation, DocStore, Query, SearchRequest};
//! use serde_json::json;
//!
//! let store = DocStore::new();
//! let index = store.index("dio-demo");
//! index.bulk(vec![
//!     json!({"syscall": "read",  "proc_name": "db_bench", "time": 1_000}),
//!     json!({"syscall": "write", "proc_name": "rocksdb:low0", "time": 1_200}),
//! ]);
//!
//! let response = index.search(
//!     &SearchRequest::new(Query::term("syscall", "read"))
//!         .agg("by_thread", Aggregation::terms("proc_name", 10)),
//! );
//! assert_eq!(response.total, 1);
//! ```

mod agg;
mod index;
mod query;
pub mod storage;
mod store;
mod subscribe;
mod value_path;

pub use agg::{AggResult, Aggregation, Bucket, StatsResult};
pub use index::{Hit, Index, SearchRequest, SearchResponse};
pub use query::{BoolBuilder, Query, RangeBuilder, SortOrder};
pub use storage::{ShardReport, StorageConfig, StorageEngine, StorageReport};
pub use store::DocStore;
pub use subscribe::{Subscription, DEFAULT_SUBSCRIPTION_CAPACITY};
pub use value_path::{as_keyword, as_number, for_each_leaf, get_path};
