//! The query DSL: a compact subset of the Elasticsearch bool/term/range
//! query language — everything DIO's dashboards and correlation algorithms
//! need.

use serde_json::Value;

use crate::value_path::{as_keyword, as_number, get_path};

/// A query over documents.
///
/// # Examples
///
/// ```
/// use dio_backend::Query;
/// use serde_json::json;
///
/// let q = Query::bool_query()
///     .must(Query::term("syscall", "read"))
///     .must(Query::range("offset").gte(10.0))
///     .build();
/// assert!(q.matches(&json!({"syscall": "read", "offset": 26})));
/// assert!(!q.matches(&json!({"syscall": "read", "offset": 0})));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every document.
    MatchAll,
    /// Exact match on a keyword or numeric field.
    Term {
        /// Dotted field path.
        field: String,
        /// Value to compare against.
        value: Value,
    },
    /// Match any of several values.
    Terms {
        /// Dotted field path.
        field: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Numeric range.
    Range {
        /// Dotted field path.
        field: String,
        /// Inclusive lower bound.
        gte: Option<f64>,
        /// Exclusive lower bound.
        gt: Option<f64>,
        /// Inclusive upper bound.
        lte: Option<f64>,
        /// Exclusive upper bound.
        lt: Option<f64>,
    },
    /// Keyword prefix match.
    Prefix {
        /// Dotted field path.
        field: String,
        /// Required prefix.
        prefix: String,
    },
    /// Field presence.
    Exists {
        /// Dotted field path.
        field: String,
    },
    /// Boolean combination.
    Bool {
        /// All must match.
        must: Vec<Query>,
        /// At least one must match (when non-empty).
        should: Vec<Query>,
        /// None may match.
        must_not: Vec<Query>,
    },
}

impl Query {
    /// A `term` query.
    pub fn term(field: impl Into<String>, value: impl Into<Value>) -> Query {
        Query::Term { field: field.into(), value: value.into() }
    }

    /// A `terms` query.
    pub fn terms(
        field: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Query {
        Query::Terms { field: field.into(), values: values.into_iter().map(Into::into).collect() }
    }

    /// Starts a range query on `field`.
    pub fn range(field: impl Into<String>) -> RangeBuilder {
        RangeBuilder { field: field.into(), gte: None, gt: None, lte: None, lt: None }
    }

    /// A `prefix` query.
    pub fn prefix(field: impl Into<String>, prefix: impl Into<String>) -> Query {
        Query::Prefix { field: field.into(), prefix: prefix.into() }
    }

    /// An `exists` query.
    pub fn exists(field: impl Into<String>) -> Query {
        Query::Exists { field: field.into() }
    }

    /// Starts a bool query.
    pub fn bool_query() -> BoolBuilder {
        BoolBuilder::default()
    }

    /// Whether this query matches `doc` (scan-time evaluation).
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Query::MatchAll => true,
            Query::Term { field, value } => match get_path(doc, field) {
                Some(v) => values_equal(v, value),
                None => false,
            },
            Query::Terms { field, values } => match get_path(doc, field) {
                Some(v) => values.iter().any(|w| values_equal(v, w)),
                None => false,
            },
            Query::Range { field, gte, gt, lte, lt } => {
                let Some(n) = get_path(doc, field).and_then(as_number) else {
                    return false;
                };
                gte.is_none_or(|b| n >= b)
                    && gt.is_none_or(|b| n > b)
                    && lte.is_none_or(|b| n <= b)
                    && lt.is_none_or(|b| n < b)
            }
            Query::Prefix { field, prefix } => get_path(doc, field)
                .and_then(as_keyword)
                .is_some_and(|s| s.starts_with(prefix.as_str())),
            Query::Exists { field } => get_path(doc, field).is_some(),
            Query::Bool { must, should, must_not } => {
                must.iter().all(|q| q.matches(doc))
                    && (should.is_empty() || should.iter().any(|q| q.matches(doc)))
                    && !must_not.iter().any(|q| q.matches(doc))
            }
        }
    }
}

/// Numeric-aware equality: `26` (u64) equals `26.0`, strings compare as
/// strings, booleans as booleans.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (as_number(a), as_number(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// Builder returned by [`Query::range`].
#[derive(Debug, Clone)]
pub struct RangeBuilder {
    field: String,
    gte: Option<f64>,
    gt: Option<f64>,
    lte: Option<f64>,
    lt: Option<f64>,
}

impl RangeBuilder {
    /// Inclusive lower bound.
    pub fn gte(mut self, v: f64) -> Self {
        self.gte = Some(v);
        self
    }

    /// Exclusive lower bound.
    pub fn gt(mut self, v: f64) -> Self {
        self.gt = Some(v);
        self
    }

    /// Inclusive upper bound.
    pub fn lte(mut self, v: f64) -> Self {
        self.lte = Some(v);
        self
    }

    /// Exclusive upper bound.
    pub fn lt(mut self, v: f64) -> Self {
        self.lt = Some(v);
        self
    }

    /// Finishes the range query.
    pub fn build(self) -> Query {
        Query::Range { field: self.field, gte: self.gte, gt: self.gt, lte: self.lte, lt: self.lt }
    }
}

impl From<RangeBuilder> for Query {
    fn from(b: RangeBuilder) -> Query {
        b.build()
    }
}

/// Builder returned by [`Query::bool_query`].
#[derive(Debug, Clone, Default)]
pub struct BoolBuilder {
    must: Vec<Query>,
    should: Vec<Query>,
    must_not: Vec<Query>,
}

impl BoolBuilder {
    /// Adds a required clause.
    pub fn must(mut self, q: impl Into<Query>) -> Self {
        self.must.push(q.into());
        self
    }

    /// Adds an alternative clause.
    pub fn should(mut self, q: impl Into<Query>) -> Self {
        self.should.push(q.into());
        self
    }

    /// Adds an excluding clause.
    pub fn must_not(mut self, q: impl Into<Query>) -> Self {
        self.must_not.push(q.into());
        self
    }

    /// Finishes the bool query.
    pub fn build(self) -> Query {
        Query::Bool { must: self.must, should: self.should, must_not: self.must_not }
    }
}

impl From<BoolBuilder> for Query {
    fn from(b: BoolBuilder) -> Query {
        b.build()
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// Compares two documents on a field for sorting (numbers before strings,
/// missing values last).
pub fn compare_docs(a: &Value, b: &Value, field: &str, order: SortOrder) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let va = get_path(a, field);
    let vb = get_path(b, field);
    let ord = match (va, vb) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => return Ordering::Greater, // missing last regardless of order
        (Some(_), None) => return Ordering::Less,
        (Some(x), Some(y)) => match (as_number(x), as_number(y)) {
            (Some(nx), Some(ny)) => nx.total_cmp(&ny),
            _ => as_keyword(x).unwrap_or_default().cmp(&as_keyword(y).unwrap_or_default()),
        },
    };
    match order {
        SortOrder::Asc => ord,
        SortOrder::Desc => ord.reverse(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn term_numeric_and_string() {
        assert!(Query::term("a", 1).matches(&json!({"a": 1})));
        assert!(Query::term("a", 1).matches(&json!({"a": 1.0})));
        assert!(Query::term("a", "x").matches(&json!({"a": "x"})));
        assert!(!Query::term("a", "x").matches(&json!({"a": "y"})));
        assert!(!Query::term("a", 1).matches(&json!({"b": 1})));
    }

    #[test]
    fn terms_matches_any() {
        let q = Query::terms("s", ["read", "write"]);
        assert!(q.matches(&json!({"s": "read"})));
        assert!(q.matches(&json!({"s": "write"})));
        assert!(!q.matches(&json!({"s": "close"})));
    }

    #[test]
    fn range_bounds() {
        let q = Query::range("n").gte(2.0).lt(5.0).build();
        assert!(!q.matches(&json!({"n": 1})));
        assert!(q.matches(&json!({"n": 2})));
        assert!(q.matches(&json!({"n": 4.9})));
        assert!(!q.matches(&json!({"n": 5})));
        assert!(!q.matches(&json!({"n": "x"})));
        let q = Query::range("n").gt(2.0).lte(3.0).build();
        assert!(!q.matches(&json!({"n": 2})));
        assert!(q.matches(&json!({"n": 3})));
    }

    #[test]
    fn prefix_and_exists() {
        assert!(Query::prefix("p", "/db").matches(&json!({"p": "/db/LOG"})));
        assert!(!Query::prefix("p", "/db").matches(&json!({"p": "/log"})));
        assert!(Query::exists("x").matches(&json!({"x": 0})));
        assert!(!Query::exists("x").matches(&json!({"y": 0})));
    }

    #[test]
    fn bool_combinations() {
        let q = Query::bool_query()
            .must(Query::term("a", 1))
            .must_not(Query::term("b", 2))
            .should(Query::term("c", 3))
            .should(Query::term("c", 4))
            .build();
        assert!(q.matches(&json!({"a": 1, "c": 3})));
        assert!(q.matches(&json!({"a": 1, "c": 4})));
        assert!(!q.matches(&json!({"a": 1, "c": 5})), "no should clause hit");
        assert!(!q.matches(&json!({"a": 1, "b": 2, "c": 3})), "must_not violated");
        assert!(!q.matches(&json!({"a": 2, "c": 3})));
    }

    #[test]
    fn empty_bool_is_match_all() {
        let q = Query::bool_query().build();
        assert!(q.matches(&json!({"anything": true})));
    }

    #[test]
    fn sort_comparisons() {
        use std::cmp::Ordering;
        let a = json!({"n": 1, "s": "a"});
        let b = json!({"n": 2, "s": "b"});
        let missing = json!({});
        assert_eq!(compare_docs(&a, &b, "n", SortOrder::Asc), Ordering::Less);
        assert_eq!(compare_docs(&a, &b, "n", SortOrder::Desc), Ordering::Greater);
        assert_eq!(compare_docs(&a, &b, "s", SortOrder::Asc), Ordering::Less);
        assert_eq!(compare_docs(&a, &missing, "n", SortOrder::Desc), Ordering::Less);
        assert_eq!(compare_docs(&missing, &a, "n", SortOrder::Asc), Ordering::Greater);
    }
}
