//! Crash-injection points for the recovery test harness.
//!
//! The crash harness (DESIGN.md §11.5) runs a child writer process with
//! `DIO_CRASH_POINT=<site>:<countdown>:<split>` in its environment and
//! expects the storage engine to die — `std::process::abort()`, no
//! unwinding, no destructors — *partway through* the named write, after
//! exactly `split` bytes of it reached the file. The parent then reopens
//! the directory and asserts the recovery invariants.
//!
//! * `site` — one of `append` (segment record write), `hint` (hint-file
//!   write at seal/merge time), `compact` (merge-output write).
//! * `countdown` — the n-th hit of the site triggers the crash (0-based),
//!   so a seeded run can land the kill deep into a workload.
//! * `split` — byte offset *within* the targeted write at which the
//!   process dies; the bytes before it are flushed first so the torn
//!   frame is really on disk.
//!
//! The whole feature costs one `OnceLock` read on the hot path when the
//! variable is unset, and is inert in production.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// A named write the harness can interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// A segment-record append.
    Append,
    /// A hint-file write.
    Hint,
    /// A compaction merge-output write.
    Compact,
}

impl CrashSite {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "append" => Some(CrashSite::Append),
            "hint" => Some(CrashSite::Hint),
            "compact" => Some(CrashSite::Compact),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct CrashPlan {
    site: CrashSite,
    /// Remaining hits before the crash fires; decremented per hit.
    countdown: AtomicI64,
    split: usize,
}

static PLAN: OnceLock<Option<CrashPlan>> = OnceLock::new();

fn plan() -> Option<&'static CrashPlan> {
    PLAN.get_or_init(|| {
        let spec = std::env::var("DIO_CRASH_POINT").ok()?;
        let mut parts = spec.split(':');
        let site = CrashSite::parse(parts.next()?)?;
        let countdown: i64 = parts.next()?.parse().ok()?;
        let split: usize = parts.next()?.parse().ok()?;
        Some(CrashPlan { site, countdown: AtomicI64::new(countdown), split })
    })
    .as_ref()
}

/// Consulted before a write at `site` of `len` bytes. Returns
/// `Some(split)` when this write is the one the plan kills: the caller
/// must write the first `split` bytes, flush them, then call
/// [`abort_now`].
pub fn armed_split(site: CrashSite, len: usize) -> Option<usize> {
    let p = plan()?;
    if p.site != site {
        return None;
    }
    if p.countdown.fetch_sub(1, Ordering::Relaxed) != 0 {
        return None;
    }
    Some(p.split.min(len.saturating_sub(1)))
}

/// Kills the process without unwinding, exactly like a SIGKILL landing
/// between two `write(2)` calls. The flight recorder is dumped first —
/// the dump only touches already-durable state, so the crash semantics
/// the harness verifies are unchanged.
pub fn abort_now() -> ! {
    let _ = dio_telemetry::trace::dump_on_trigger("crash");
    std::process::abort()
}
