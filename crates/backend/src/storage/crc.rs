//! CRC-32 (IEEE 802.3 polynomial) with a compile-time lookup table.
//!
//! Every on-disk frame — segment records and hint entries — is guarded by
//! this checksum so a torn or bit-flipped tail is detected on reopen
//! instead of being replayed as data.

/// The reflected IEEE polynomial used by zip/png/ethernet (and bitcask).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An incremental CRC-32 over a byte stream.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut c = Crc32::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.finish(), crc32(b"hello world"));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x40;
        assert_ne!(crc32(&data), clean);
    }
}
