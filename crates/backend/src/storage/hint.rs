//! Hint files: per-segment keydir snapshots for fast restart.
//!
//! A sealed segment `seg-<gen>.log` gets a sidecar `seg-<gen>.hint`
//! holding one compact entry per record — everything the keydir needs
//! (key, seqno, flags, frame location) without the document bodies — so
//! reopening a large store reads kilobytes of hints instead of re-scanning
//! gigabytes of logs.
//!
//! Entry layout (little-endian):
//!
//! ```text
//! [crc: u32]         checksum of the rest of the entry
//! [seqno: u64]
//! [flags: u8]
//! [index_len: u16]
//! [doc_id: u64]
//! [frame_len: u32]   length of the record's frame in the log
//! [offset: u64]      offset of the frame in the log
//! [index_name: bytes]
//! ```
//!
//! followed by a 24-byte trailer `[magic u32]["covered" log_len u64]
//! [entry_count u64][crc u32]`. A hint is trusted only when the trailer
//! verifies **and** `log_len` equals the log's current size — a torn
//! hint write (crash at the `hint` site) or a log truncated by recovery
//! both invalidate it, and the engine falls back to scanning the log and
//! rewrites the hint.

use std::io::{Read, Write};
use std::path::Path;

use super::crash::{self, CrashSite};
use super::crc::{crc32, Crc32};
use super::segment::ScannedRecord;

const MAGIC: u32 = 0x4449_4F48; // "DIOH"
const ENTRY_HEADER: usize = 4 + 8 + 1 + 2 + 8 + 4 + 8;
const TRAILER_LEN: usize = 4 + 8 + 8 + 4;

/// One keydir entry recovered from a hint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintEntry {
    /// Shard-local mutation sequence number.
    pub seqno: u64,
    /// Record flag bits.
    pub flags: u8,
    /// Index (session) name.
    pub index: String,
    /// Document id within the index.
    pub doc_id: u64,
    /// Frame length in the log.
    pub frame_len: u32,
    /// Frame offset in the log.
    pub offset: u64,
}

impl HintEntry {
    /// Builds the hint entry for a scanned log record.
    pub fn from_scanned(rec: &ScannedRecord) -> Self {
        HintEntry {
            seqno: rec.record.seqno,
            flags: rec.record.flags,
            index: rec.record.index.clone(),
            doc_id: rec.record.doc_id,
            frame_len: rec.len,
            offset: rec.offset,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&self.seqno.to_le_bytes());
        out.push(self.flags);
        out.extend_from_slice(&(self.index.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.doc_id.to_le_bytes());
        out.extend_from_slice(&self.frame_len.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(self.index.as_bytes());
        let crc = crc32(&out[start + 4..]);
        out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
    }
}

/// Serializes and writes the hint file for a sealed log of `log_len`
/// bytes. Subject to `hint`-site crash injection: the process may die
/// with only a prefix on disk, which [`read`] later rejects.
pub fn write(path: &Path, entries: &[HintEntry], log_len: u64) -> std::io::Result<()> {
    let mut buf = Vec::new();
    for e in entries {
        e.encode_into(&mut buf);
    }
    let trailer_start = buf.len();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&log_len.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    let crc = crc32(&buf[trailer_start..trailer_start + 20]);
    buf.extend_from_slice(&crc.to_le_bytes());

    let mut file = std::fs::File::create(path)?;
    if let Some(split) = crash::armed_split(CrashSite::Hint, buf.len()) {
        file.write_all(&buf[..split]).expect("crash-injection prefix write");
        let _ = file.sync_data();
        crash::abort_now();
    }
    file.write_all(&buf)?;
    file.sync_data()
}

/// Reads and validates a hint file against the log's current size.
/// Returns `None` — never an error — when the hint is missing, torn,
/// corrupt, or stale; the caller falls back to scanning the log.
pub fn read(path: &Path, log_len: u64) -> Option<Vec<HintEntry>> {
    let mut buf = Vec::new();
    std::fs::File::open(path).ok()?.read_to_end(&mut buf).ok()?;
    if buf.len() < TRAILER_LEN {
        return None;
    }
    let body_len = buf.len() - TRAILER_LEN;
    let trailer = &buf[body_len..];
    let magic = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let covered = u64::from_le_bytes(trailer[4..12].try_into().ok()?);
    let count = u64::from_le_bytes(trailer[12..20].try_into().ok()?);
    let crc = u32::from_le_bytes(trailer[20..24].try_into().ok()?);
    if magic != MAGIC || covered != log_len || crc32(&trailer[..20]) != crc {
        return None;
    }

    let mut entries = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    while pos < body_len {
        if body_len - pos < ENTRY_HEADER {
            return None;
        }
        let e = &buf[pos..];
        let entry_crc = u32::from_le_bytes([e[0], e[1], e[2], e[3]]);
        let seqno = u64::from_le_bytes(e[4..12].try_into().ok()?);
        let flags = e[12];
        let index_len = u16::from_le_bytes([e[13], e[14]]) as usize;
        let doc_id = u64::from_le_bytes(e[15..23].try_into().ok()?);
        let frame_len = u32::from_le_bytes(e[23..27].try_into().ok()?);
        let offset = u64::from_le_bytes(e[27..35].try_into().ok()?);
        let total = ENTRY_HEADER + index_len;
        if body_len - pos < total {
            return None;
        }
        let mut check = Crc32::new();
        check.update(&buf[pos + 4..pos + total]);
        if check.finish() != entry_crc {
            return None;
        }
        let index = std::str::from_utf8(&buf[pos + ENTRY_HEADER..pos + total]).ok()?.to_string();
        entries.push(HintEntry { seqno, flags, index, doc_id, frame_len, offset });
        pos += total;
    }
    if entries.len() as u64 != count {
        return None;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<HintEntry> {
        vec![
            HintEntry {
                seqno: 1,
                flags: 0,
                index: "dio-a".into(),
                doc_id: 0,
                frame_len: 40,
                offset: 0,
            },
            HintEntry {
                seqno: 2,
                flags: 1,
                index: "dio-b".into(),
                doc_id: 9,
                frame_len: 33,
                offset: 40,
            },
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dio-hint-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        write(&path, &sample(), 73).unwrap();
        assert_eq!(read(&path, 73).unwrap(), sample());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_log_len_rejected() {
        let path = tmp("stale");
        write(&path, &sample(), 73).unwrap();
        assert!(read(&path, 72).is_none(), "log shrank after hint was written");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_rejected() {
        let path = tmp("trunc");
        write(&path, &sample(), 73).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read(&path, 73).is_none(), "torn hint of {cut} bytes accepted");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_none() {
        assert!(read(&tmp("missing-nonexistent"), 0).is_none());
    }
}
