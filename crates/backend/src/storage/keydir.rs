//! The in-memory keydir: latest on-disk location of every live document.
//!
//! Bitcask's core trade: every key lives in memory, every value lives in
//! exactly one place on disk. Ours is two-level — index (session) name,
//! then document id — so whole-index drops and per-index loads stay O(1)
//! lookups instead of scans over one flat map.
//!
//! During recovery the keydir also remembers tombstones and drop-index
//! barriers it has seen (`KeyState::seqno` with no slot), because
//! segments are replayed oldest-first but — after an interrupted
//! compaction — the *same* logical record can appear in two files, and
//! only the per-key sequence number says which wins. [`KeyDir::live`]
//! resolves all of that into the surviving document set.

use std::collections::HashMap;

/// Location of one record's frame on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Segment generation holding the frame.
    pub gen: u64,
    /// Frame offset within the segment.
    pub offset: u64,
    /// Total frame length.
    pub frame_len: u32,
    /// The record's shard-local sequence number.
    pub seqno: u64,
}

/// Newest known state of one (index, doc id) key.
#[derive(Debug, Clone, Copy)]
struct KeyState {
    seqno: u64,
    /// `Some` = live value at this slot; `None` = tombstoned.
    slot: Option<Slot>,
}

/// A displaced frame (it became garbage): which segment, how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Displaced {
    /// Segment generation of the now-dead frame.
    pub gen: u64,
    /// Dead bytes added to that segment.
    pub bytes: u64,
}

/// The per-shard keydir (see module docs).
#[derive(Debug, Default)]
pub struct KeyDir {
    entries: HashMap<String, HashMap<u64, KeyState>>,
    /// Per-index drop barrier: records with `seqno <=` this are dead.
    barriers: HashMap<String, u64>,
}

impl KeyDir {
    /// Creates an empty keydir.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a value record, newest-seqno-wins. Returns the frame it
    /// displaced, if any (for dead-byte accounting).
    pub fn apply_put(&mut self, index: &str, doc_id: u64, slot: Slot) -> Option<Displaced> {
        if self.barriers.get(index).is_some_and(|&b| slot.seqno <= b) {
            return Some(Displaced { gen: slot.gen, bytes: slot.frame_len as u64 });
        }
        let per_index = self.entries.entry(index.to_string()).or_default();
        match per_index.get_mut(&doc_id) {
            Some(state) if state.seqno >= slot.seqno => {
                // A duplicate or older copy (interrupted-merge leftovers):
                // the incoming frame itself is the garbage.
                Some(Displaced { gen: slot.gen, bytes: slot.frame_len as u64 })
            }
            Some(state) => {
                let displaced =
                    state.slot.map(|old| Displaced { gen: old.gen, bytes: old.frame_len as u64 });
                *state = KeyState { seqno: slot.seqno, slot: Some(slot) };
                displaced
            }
            None => {
                per_index.insert(doc_id, KeyState { seqno: slot.seqno, slot: Some(slot) });
                None
            }
        }
    }

    /// Applies a tombstone record. Returns the displaced value frame.
    pub fn apply_tombstone(&mut self, index: &str, doc_id: u64, seqno: u64) -> Option<Displaced> {
        let per_index = self.entries.entry(index.to_string()).or_default();
        match per_index.get_mut(&doc_id) {
            Some(state) if state.seqno >= seqno => None,
            Some(state) => {
                let displaced =
                    state.slot.map(|old| Displaced { gen: old.gen, bytes: old.frame_len as u64 });
                *state = KeyState { seqno, slot: None };
                displaced
            }
            None => {
                per_index.insert(doc_id, KeyState { seqno, slot: None });
                None
            }
        }
    }

    /// Applies a whole-index drop barrier: every key of `index` with an
    /// older seqno dies. Returns all displaced value frames.
    pub fn apply_drop_index(&mut self, index: &str, seqno: u64) -> Vec<Displaced> {
        let barrier = self.barriers.entry(index.to_string()).or_insert(0);
        *barrier = (*barrier).max(seqno);
        let mut displaced = Vec::new();
        if let Some(per_index) = self.entries.get_mut(index) {
            per_index.retain(|_, state| {
                if state.seqno <= seqno {
                    if let Some(old) = state.slot {
                        displaced.push(Displaced { gen: old.gen, bytes: old.frame_len as u64 });
                    }
                    false
                } else {
                    true
                }
            });
            if per_index.is_empty() {
                self.entries.remove(index);
            }
        }
        displaced
    }

    /// Moves a live key to a new frame holding the *same* seqno (a
    /// compaction repoint). Returns false — and changes nothing — when
    /// the key advanced past `slot.seqno` in the meantime.
    pub fn repoint(&mut self, index: &str, doc_id: u64, slot: Slot) -> bool {
        let Some(state) = self.entries.get_mut(index).and_then(|m| m.get_mut(&doc_id)) else {
            return false;
        };
        if state.seqno != slot.seqno || state.slot.is_none() {
            return false;
        }
        state.slot = Some(slot);
        true
    }

    /// Looks up the live slot of a key.
    pub fn get(&self, index: &str, doc_id: u64) -> Option<Slot> {
        self.entries.get(index)?.get(&doc_id)?.slot
    }

    /// Iterates every live (index, doc id, slot).
    pub fn live(&self) -> impl Iterator<Item = (&str, u64, Slot)> + '_ {
        self.entries.iter().flat_map(|(index, per_index)| {
            per_index
                .iter()
                .filter_map(move |(&id, state)| state.slot.map(|s| (index.as_str(), id, s)))
        })
    }

    /// Number of live keys.
    pub fn live_len(&self) -> usize {
        self.entries.values().flat_map(|m| m.values()).filter(|s| s.slot.is_some()).count()
    }

    /// Drops remembered tombstones and barriers. Called once recovery
    /// replay is complete: from then on, appends carry strictly
    /// increasing seqnos, so shadow state is no longer needed.
    pub fn prune_shadows(&mut self) {
        for per_index in self.entries.values_mut() {
            per_index.retain(|_, state| state.slot.is_some());
        }
        self.entries.retain(|_, m| !m.is_empty());
        self.barriers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(gen: u64, offset: u64, seqno: u64) -> Slot {
        Slot { gen, offset, frame_len: 32, seqno }
    }

    #[test]
    fn newer_put_displaces_older() {
        let mut kd = KeyDir::new();
        assert!(kd.apply_put("a", 1, slot(1, 0, 1)).is_none());
        let displaced = kd.apply_put("a", 1, slot(1, 32, 5)).unwrap();
        assert_eq!(displaced, Displaced { gen: 1, bytes: 32 });
        assert_eq!(kd.get("a", 1).unwrap().seqno, 5);
    }

    #[test]
    fn older_duplicate_is_self_garbage() {
        let mut kd = KeyDir::new();
        kd.apply_put("a", 1, slot(2, 0, 9));
        // A merge leftover in a higher-gen file with an older seqno.
        let displaced = kd.apply_put("a", 1, slot(3, 0, 4)).unwrap();
        assert_eq!(displaced.gen, 3);
        assert_eq!(kd.get("a", 1).unwrap().seqno, 9);
    }

    #[test]
    fn tombstone_shadows_even_across_replay_order() {
        let mut kd = KeyDir::new();
        kd.apply_put("a", 1, slot(1, 0, 1));
        kd.apply_tombstone("a", 1, 2);
        assert!(kd.get("a", 1).is_none());
        // An older copy replayed later (merge duplicate) cannot resurrect.
        kd.apply_put("a", 1, slot(4, 0, 1));
        assert!(kd.get("a", 1).is_none());
        // A genuinely newer write can.
        kd.apply_put("a", 1, slot(4, 32, 3));
        assert_eq!(kd.get("a", 1).unwrap().seqno, 3);
    }

    #[test]
    fn drop_index_kills_older_spares_newer() {
        let mut kd = KeyDir::new();
        kd.apply_put("a", 1, slot(1, 0, 1));
        kd.apply_put("a", 2, slot(1, 32, 2));
        kd.apply_put("b", 1, slot(1, 64, 3));
        let displaced = kd.apply_drop_index("a", 4);
        assert_eq!(displaced.len(), 2);
        assert!(kd.get("a", 1).is_none());
        assert_eq!(kd.get("b", 1).unwrap().seqno, 3);
        // Replayed-later older put of "a" stays dead behind the barrier.
        kd.apply_put("a", 1, slot(2, 0, 2));
        assert!(kd.get("a", 1).is_none());
        // Newer one lives.
        kd.apply_put("a", 3, slot(2, 32, 9));
        assert_eq!(kd.get("a", 3).unwrap().seqno, 9);
    }

    #[test]
    fn live_iteration_and_prune() {
        let mut kd = KeyDir::new();
        kd.apply_put("a", 1, slot(1, 0, 1));
        kd.apply_put("a", 2, slot(1, 32, 2));
        kd.apply_tombstone("a", 2, 3);
        assert_eq!(kd.live_len(), 1);
        kd.prune_shadows();
        assert_eq!(kd.live().count(), 1);
        let (index, id, s) = kd.live().next().unwrap();
        assert_eq!((index, id, s.seqno), ("a", 1, 1));
    }
}
