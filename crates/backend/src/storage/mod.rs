//! Persistent sharded storage under [`crate::DocStore`] (DESIGN.md §11).
//!
//! A bitcask-style engine: every mutation is one CRC-framed record
//! appended to a segment file; an in-memory [`keydir`] maps each live
//! (index, doc id) key to its newest frame; sealed segments carry hint
//! files so reopening reads keys, not documents; a background compactor
//! merges sealed segments and drops superseded frames. The key space is
//! split over N independent **shards** — separate directories, locks,
//! and segment chains — so concurrent sessions append in parallel
//! instead of serializing on one lock domain.
//!
//! Durability contract: when an append returns, the batch has reached
//! the kernel page cache — it survives a process kill (the crash
//! harness's threat model). `fdatasync` runs at segment seal, on
//! [`StorageEngine::flush`] (wired to tracer session close), and per
//! batch when [`StorageConfig::sync_every_batch`] is set.

pub mod crash;
pub mod crc;
pub mod hint;
pub mod keydir;
pub mod record;
pub mod segment;
pub mod shard;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

use dio_telemetry::{trace, Counter, Histogram, MetricsRegistry};

pub use shard::ShardReport;
use shard::{Op, Shard};

/// Tuning knobs for [`StorageEngine::open`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Number of independent shards (fixed at store creation; recorded
    /// in the manifest and reused on reopen regardless of this value).
    pub shards: usize,
    /// Active-segment size that triggers a seal + rotation.
    pub max_segment_bytes: u64,
    /// Dead-byte fraction of sealed data that triggers compaction.
    pub compact_min_dead_ratio: f64,
    /// Minimum sealed bytes before compaction is considered.
    pub compact_min_sealed_bytes: u64,
    /// `fdatasync` every batch (machine-crash durability) instead of
    /// only at seal/flush (process-crash durability).
    pub sync_every_batch: bool,
    /// Run the background compaction thread.
    pub auto_compact: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            shards: 8,
            max_segment_bytes: 8 * 1024 * 1024,
            compact_min_dead_ratio: 0.35,
            compact_min_sealed_bytes: 1024 * 1024,
            sync_every_batch: false,
            auto_compact: true,
        }
    }
}

impl StorageConfig {
    /// A profile with tiny segments and eager compaction, so unit tests
    /// and the crash harness exercise rotation/merge without gigabytes.
    pub fn tiny_for_tests() -> Self {
        StorageConfig {
            shards: 4,
            max_segment_bytes: 4 * 1024,
            compact_min_dead_ratio: 0.2,
            compact_min_sealed_bytes: 1024,
            auto_compact: false,
            ..StorageConfig::default()
        }
    }
}

/// A monotonically increasing statistic, mirrored into a bound
/// telemetry counter once [`StorageEngine::bind_telemetry`] runs.
#[derive(Debug, Default)]
pub struct StatCell {
    local: AtomicU64,
    bound: OnceLock<Arc<Counter>>,
}

impl StatCell {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        if let Some(c) = self.bound.get() {
            c.add(n);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    fn bind(&self, counter: Arc<Counter>) {
        counter.add(self.get());
        let _ = self.bound.set(counter);
    }
}

/// Engine-lifetime counters (recovery and maintenance activity).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Torn tails truncated during recovery (`backend.recovery.truncated`).
    pub recovery_truncated: StatCell,
    /// Hint files rebuilt because they were missing, torn, or stale.
    pub hints_rewritten: StatCell,
    /// Active segments sealed (rotations).
    pub segments_sealed: StatCell,
    /// Compaction merges completed.
    pub compactions: StatCell,
    /// Bytes written by compaction merges.
    pub compacted_bytes: StatCell,
    /// Bytes appended by ingest.
    pub bytes_appended: StatCell,
    /// Records appended by ingest.
    pub records_appended: StatCell,
    /// `fdatasync` calls issued (per-batch syncs, seals, flushes).
    pub fsyncs: StatCell,
    /// Fsync latency (`backend.storage.fsync_ns`), bound alongside the
    /// counters by [`StorageEngine::bind_telemetry`].
    fsync_ns: OnceLock<Arc<Histogram>>,
}

impl EngineStats {
    /// Counts one fsync that took `ns` nanoseconds. Called inside the
    /// `storage.fsync` span, so the ambient trace id rides along as the
    /// bucket's exemplar.
    pub(crate) fn record_fsync(&self, ns: u64) {
        self.fsyncs.add(1);
        if let Some(h) = self.fsync_ns.get() {
            h.record_traced(ns);
        }
    }
}

/// Point-in-time engine statistics. Serializable so reports can travel
/// as `kind: "storage"` documents into the telemetry index (the
/// dashboard's feed) and be reconstructed on the viz side.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct StorageReport {
    /// Number of shards.
    pub shards: usize,
    /// Aggregated per-shard state.
    pub totals: ShardReport,
    /// State of each shard, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// Torn tails truncated during recovery.
    pub recovery_truncated: u64,
    /// Hint files rebuilt at open.
    pub hints_rewritten: u64,
    /// Segments sealed over the engine's lifetime.
    pub segments_sealed: u64,
    /// Compactions completed over the engine's lifetime.
    pub compactions: u64,
    /// Bytes written by compaction merges over the engine's lifetime.
    pub compacted_bytes: u64,
    /// Bytes appended by ingest over the engine's lifetime.
    pub bytes_appended: u64,
    /// `fdatasync` calls over the engine's lifetime.
    pub fsyncs: u64,
}

impl StorageReport {
    /// Dead fraction of all stored bytes — the compaction debt the
    /// background merger works against.
    pub fn dead_ratio(&self) -> f64 {
        let stored = self.totals.sealed_bytes + self.totals.active_bytes;
        if stored == 0 {
            0.0
        } else {
            self.totals.dead_bytes as f64 / stored as f64
        }
    }

    /// The report as a backend document (`kind: "storage"`). It carries
    /// no `metric` field, so health-report readers of the telemetry
    /// index skip it; the storage panel queries it by `kind`.
    pub fn to_document(&self) -> serde_json::Value {
        let mut doc = serde_json::to_value(self).expect("storage report serializes");
        doc["kind"] = serde_json::Value::from("storage");
        doc
    }

    /// Parses a document produced by [`StorageReport::to_document`].
    pub fn from_document(doc: &serde_json::Value) -> Option<StorageReport> {
        if doc["kind"].as_str() != Some("storage") {
            return None;
        }
        serde_json::from_value(doc).ok()
    }
}

struct CompactorHandle {
    thread: std::thread::JoinHandle<()>,
}

struct CompactorShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The persistent sharded engine (see module docs). One per on-disk
/// store; shared by every [`crate::DocStore`] clone.
pub struct StorageEngine {
    root: PathBuf,
    config: StorageConfig,
    shards: Vec<Arc<Shard>>,
    stats: Arc<EngineStats>,
    compactor_shared: Arc<CompactorShared>,
    compactor: Mutex<Option<CompactorHandle>>,
}

impl std::fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEngine")
            .field("root", &self.root)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// FNV-1a over (index name, doc id): the shard router. Deterministic
/// across processes (unlike `std` hashing), so reopen routes every key
/// to the shard that wrote it.
fn route(index: &str, doc_id: u64, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in index.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in doc_id.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

const MANIFEST: &str = "MANIFEST";

fn read_or_write_manifest(root: &Path, config: &StorageConfig) -> std::io::Result<usize> {
    let path = root.join(MANIFEST);
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let mut lines = text.lines();
            let version = lines.next().unwrap_or("");
            if version != "dio-store v1" {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unsupported store format: {version:?}"),
                ));
            }
            let shards = lines
                .next()
                .and_then(|l| l.strip_prefix("shards "))
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad manifest shard line")
                })?;
            Ok(shards)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let shards = config.shards.max(1);
            let tmp = root.join("MANIFEST.tmp");
            std::fs::write(&tmp, format!("dio-store v1\nshards {shards}\n"))?;
            std::fs::rename(&tmp, &path)?;
            Ok(shards)
        }
        Err(e) => Err(e),
    }
}

/// Every live document recovered at open, grouped by index and sorted
/// by doc id (the original ingest order within an index).
pub type LoadedStore = BTreeMap<String, Vec<(u64, Vec<u8>)>>;

impl StorageEngine {
    /// Opens (creating if needed) the store under `root`, replaying all
    /// shards and returning the engine plus every live document.
    pub fn open(root: &Path, config: StorageConfig) -> std::io::Result<(Arc<Self>, LoadedStore)> {
        std::fs::create_dir_all(root)?;
        let shard_count = read_or_write_manifest(root, &config)?;
        let stats = Arc::new(EngineStats::default());

        // Recovery is traced: one storage.open root span for the store,
        // one recovery.shard child per shard (carrying torn-tail and
        // hint-rebuild attrs), so a slow reopen is attributable.
        let mut open_span = trace::begin_manual("storage", "storage.open", None);
        open_span.attr("store", trace::fnv64(&root.to_string_lossy()));
        open_span.attr("shards", shard_count);
        let open_ctx = open_span.ctx();

        let mut shards: Vec<Option<(Shard, Vec<shard::LiveDoc>)>> = Vec::new();
        shards.resize_with(shard_count, || None);
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut handles = Vec::new();
            for (k, slot) in shards.iter_mut().enumerate() {
                let dir = root.join(format!("shard-{k:03}"));
                let stats = &stats;
                handles.push((slot, scope.spawn(move || Shard::open(dir, k, stats, open_ctx))));
            }
            for (slot, handle) in handles {
                *slot = Some(handle.join().expect("shard open thread panicked")?);
            }
            Ok(())
        })?;

        let mut loaded: LoadedStore = BTreeMap::new();
        let mut shard_arcs = Vec::with_capacity(shard_count);
        for opened in shards {
            let (shard, docs) = opened.expect("every shard opened");
            for doc in docs {
                loaded.entry(doc.index).or_default().push((doc.doc_id, doc.value));
            }
            shard_arcs.push(Arc::new(shard));
        }
        for docs in loaded.values_mut() {
            docs.sort_by_key(|(id, _)| *id);
        }
        open_span.attr("torn_truncated", stats.recovery_truncated.get());
        open_span.attr("hints_rebuilt", stats.hints_rewritten.get());
        open_span.attr("live_docs", loaded.values().map(Vec::len).sum::<usize>());
        open_span.finish();

        let engine = Arc::new(StorageEngine {
            root: root.to_path_buf(),
            config,
            shards: shard_arcs,
            stats,
            compactor_shared: Arc::new(CompactorShared {
                stop: Mutex::new(false),
                wake: Condvar::new(),
            }),
            compactor: Mutex::new(None),
        });
        if engine.config.auto_compact {
            engine.spawn_compactor();
        }
        Ok((engine, loaded))
    }

    fn spawn_compactor(self: &Arc<Self>) {
        let shards: Vec<Arc<Shard>> = self.shards.clone();
        let config = self.config.clone();
        let stats = Arc::clone(&self.stats);
        let shared = Arc::clone(&self.compactor_shared);
        let thread = std::thread::Builder::new()
            .name("dio-compactor".into())
            .spawn(move || loop {
                {
                    let mut stop = shared.stop.lock();
                    if *stop {
                        return;
                    }
                    // Woken early by appends that notice garbage piling
                    // up; otherwise polls.
                    shared.wake.wait_for(&mut stop, std::time::Duration::from_millis(100));
                    if *stop {
                        return;
                    }
                }
                for shard in &shards {
                    if shard.needs_compaction(&config) {
                        if let Err(e) = shard.compact(&stats) {
                            // Maintenance failure must not take ingest
                            // down; surface it and retry next round.
                            eprintln!("dio-backend: compaction failed: {e}");
                        }
                    }
                }
            })
            .expect("spawn compactor thread");
        *self.compactor.lock() = Some(CompactorHandle { thread });
    }

    fn nudge_compactor(&self) {
        self.compactor_shared.wake.notify_all();
    }

    /// Root directory of the store.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Number of shards (from the manifest).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Appends a batch of document writes for one index. Returns once
    /// every routed shard has the bytes on disk — the caller may then
    /// acknowledge the documents.
    pub fn append_puts(&self, index: &str, docs: Vec<(u64, Vec<u8>)>) -> std::io::Result<()> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Op>> = Vec::new();
        per_shard.resize_with(n, Vec::new);
        for (doc_id, value) in docs {
            per_shard[route(index, doc_id, n)].push(Op::Put {
                index: index.to_string(),
                doc_id,
                value,
            });
        }
        let mut compact_wanted = false;
        for (k, ops) in per_shard.into_iter().enumerate() {
            if !ops.is_empty() {
                compact_wanted |= self.shards[k].append_batch(ops, &self.config, &self.stats)?;
            }
        }
        if compact_wanted {
            self.nudge_compactor();
        }
        Ok(())
    }

    /// Appends a tombstone for one document.
    pub fn append_delete(&self, index: &str, doc_id: u64) -> std::io::Result<()> {
        let k = route(index, doc_id, self.shards.len());
        let ops = vec![Op::Delete { index: index.to_string(), doc_id }];
        if self.shards[k].append_batch(ops, &self.config, &self.stats)? {
            self.nudge_compactor();
        }
        Ok(())
    }

    /// Appends a drop-index barrier to every shard (keys of an index
    /// are spread across all of them).
    pub fn drop_index(&self, index: &str) -> std::io::Result<()> {
        let mut compact_wanted = false;
        for shard in &self.shards {
            let ops = vec![Op::DropIndex { index: index.to_string() }];
            compact_wanted |= shard.append_batch(ops, &self.config, &self.stats)?;
        }
        if compact_wanted {
            self.nudge_compactor();
        }
        Ok(())
    }

    /// `fdatasync`s every shard's active segment (session close, or an
    /// explicit durability point).
    pub fn flush(&self) -> std::io::Result<()> {
        for shard in &self.shards {
            shard.sync(&self.stats)?;
        }
        Ok(())
    }

    /// Synchronously compacts every shard (tests and maintenance CLIs;
    /// production relies on the background thread).
    pub fn compact_now(&self) -> std::io::Result<()> {
        for shard in &self.shards {
            shard.compact(&self.stats)?;
        }
        Ok(())
    }

    /// Point-in-time statistics across shards.
    pub fn report(&self) -> StorageReport {
        let per_shard: Vec<ShardReport> = self.shards.iter().map(|s| s.stats()).collect();
        self.report_from(per_shard)
    }

    fn report_from(&self, per_shard: Vec<ShardReport>) -> StorageReport {
        let mut totals = ShardReport::default();
        for shard in &per_shard {
            totals.merge(shard);
        }
        StorageReport {
            shards: self.shards.len(),
            totals,
            per_shard,
            recovery_truncated: self.stats.recovery_truncated.get(),
            hints_rewritten: self.stats.hints_rewritten.get(),
            segments_sealed: self.stats.segments_sealed.get(),
            compactions: self.stats.compactions.get(),
            compacted_bytes: self.stats.compacted_bytes.get(),
            bytes_appended: self.stats.bytes_appended.get(),
            fsyncs: self.stats.fsyncs.get(),
        }
    }

    /// Full invariant check (crash harness): every shard's keydir,
    /// segment chain, and active-writer bookkeeping must be internally
    /// consistent. Expensive — reads every record.
    pub fn verify(&self) -> Result<StorageReport, String> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            per_shard.push(shard.verify()?);
        }
        Ok(self.report_from(per_shard))
    }

    /// Registers the engine's counters with `registry` under
    /// `backend.recovery.*` / `backend.storage.*`. Idempotent.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        self.stats.recovery_truncated.bind(registry.counter("backend.recovery.truncated"));
        self.stats.hints_rewritten.bind(registry.counter("backend.recovery.hints_rewritten"));
        self.stats.segments_sealed.bind(registry.counter("backend.storage.segments_sealed"));
        self.stats.compactions.bind(registry.counter("backend.storage.compactions"));
        self.stats.compacted_bytes.bind(registry.counter("backend.storage.compacted_bytes"));
        self.stats.bytes_appended.bind(registry.counter("backend.storage.bytes_appended"));
        self.stats.records_appended.bind(registry.counter("backend.storage.records_appended"));
        self.stats.fsyncs.bind(registry.counter("backend.storage.fsyncs"));
        let fsync_ns = registry.histogram("backend.storage.fsync_ns");
        // Exemplars link slow fsync buckets to the flight-recorder span
        // that produced them (record_fsync runs inside `storage.fsync`).
        fsync_ns.enable_exemplars();
        let _ = self.stats.fsync_ns.set(fsync_ns);
    }
}

impl Drop for StorageEngine {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.lock().take() {
            *self.compactor_shared.stop.lock() = true;
            self.compactor_shared.wake.notify_all();
            let _ = handle.thread.join();
        }
        // Close = durability point: a cleanly dropped store survives
        // machine crashes too, not just process kills.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dio-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn doc(i: u64) -> Vec<u8> {
        format!("{{\"n\":{i}}}").into_bytes()
    }

    #[test]
    fn open_write_reopen_roundtrip() {
        let root = tmp_root("roundtrip");
        let config = StorageConfig::tiny_for_tests();
        {
            let (engine, loaded) = StorageEngine::open(&root, config.clone()).unwrap();
            assert!(loaded.is_empty());
            engine.append_puts("dio-a", (0..50).map(|i| (i, doc(i))).collect()).unwrap();
            engine.append_puts("dio-b", vec![(0, doc(99))]).unwrap();
            engine.append_delete("dio-a", 7).unwrap();
        }
        let (engine, loaded) = StorageEngine::open(&root, config).unwrap();
        assert_eq!(loaded.len(), 2);
        let a = &loaded["dio-a"];
        assert_eq!(a.len(), 49, "one doc tombstoned");
        assert!(a.iter().all(|(id, _)| *id != 7));
        // Sorted by id == original ingest order.
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(loaded["dio-b"], vec![(0, doc(99))]);
        engine.verify().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|i| route("dio-x", i, 8)).collect();
        assert!(hits.len() >= 4, "64 keys land on at least half the shards: {hits:?}");
        assert_eq!(route("dio-x", 3, 8), route("dio-x", 3, 8));
    }

    #[test]
    fn drop_index_erases_across_shards() {
        let root = tmp_root("dropidx");
        let config = StorageConfig::tiny_for_tests();
        {
            let (engine, _) = StorageEngine::open(&root, config.clone()).unwrap();
            engine.append_puts("gone", (0..40).map(|i| (i, doc(i))).collect()).unwrap();
            engine.append_puts("kept", (0..10).map(|i| (i, doc(i))).collect()).unwrap();
            engine.drop_index("gone").unwrap();
        }
        let (engine, loaded) = StorageEngine::open(&root, config).unwrap();
        assert!(!loaded.contains_key("gone"));
        assert_eq!(loaded["kept"].len(), 10);
        engine.verify().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_shrinks_and_preserves() {
        let root = tmp_root("compact");
        let config = StorageConfig::tiny_for_tests();
        let (engine, _) = StorageEngine::open(&root, config.clone()).unwrap();
        // Overwrite the same 20 keys many times: most frames are garbage.
        for round in 0..50u64 {
            engine
                .append_puts("dio-a", (0..20).map(|i| (i, doc(round * 100 + i))).collect())
                .unwrap();
        }
        let before = engine.report();
        engine.compact_now().unwrap();
        let after = engine.report();
        assert!(after.compactions > 0);
        assert!(
            after.totals.sealed_bytes + after.totals.active_bytes
                < before.totals.sealed_bytes + before.totals.active_bytes,
            "compaction reclaims space: {before:?} -> {after:?}"
        );
        engine.verify().unwrap();
        drop(engine);

        let (engine, loaded) = StorageEngine::open(&root, config).unwrap();
        let a = &loaded["dio-a"];
        assert_eq!(a.len(), 20);
        for (id, value) in a {
            assert_eq!(value, &doc(49 * 100 + id), "latest round survives");
        }
        engine.verify().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_pins_shard_count() {
        let root = tmp_root("manifest");
        {
            let (engine, _) =
                StorageEngine::open(&root, StorageConfig { shards: 3, ..Default::default() })
                    .unwrap();
            assert_eq!(engine.shard_count(), 3);
        }
        let (engine, _) =
            StorageEngine::open(&root, StorageConfig { shards: 16, ..Default::default() }).unwrap();
        assert_eq!(engine.shard_count(), 3, "manifest wins over config on reopen");
        let _ = std::fs::remove_dir_all(&root);
    }
}
