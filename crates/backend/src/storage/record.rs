//! On-disk record framing for segment files.
//!
//! Every mutation of the store — a document write, a per-document
//! tombstone, or a whole-index drop barrier — is one framed record
//! (DESIGN.md §11.1):
//!
//! ```text
//! [crc: u32 LE]          checksum of every following byte of the frame
//! [seqno: u64 LE]        shard-local mutation sequence number
//! [flags: u8]            bit0 = tombstone, bit1 = drop-index barrier
//! [index_len: u16 LE]    length of the index (session) name
//! [doc_id: u64 LE]       document id within the index
//! [value_len: u32 LE]    length of the JSON document body
//! [index_name: bytes]
//! [value: bytes]
//! ```
//!
//! The CRC covers the whole frame after itself, so a torn tail — a crash
//! mid-`write` — fails verification no matter which byte the kill landed
//! on, and recovery truncates the segment at the last whole record.

use super::crc::{crc32, Crc32};

/// Fixed-size portion of a frame (everything before the two variable
/// fields).
pub const HEADER_LEN: usize = 4 + 8 + 1 + 2 + 8 + 4;

/// Flag bit: the record deletes `doc_id` rather than writing it.
pub const FLAG_TOMBSTONE: u8 = 0b0000_0001;
/// Flag bit: the record drops every older record of `index` (a
/// whole-index delete barrier; `doc_id` and `value` are empty).
pub const FLAG_DROP_INDEX: u8 = 0b0000_0010;

/// A decoded record frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Shard-local mutation sequence number (newest wins).
    pub seqno: u64,
    /// Flag bits (`FLAG_TOMBSTONE`, `FLAG_DROP_INDEX`).
    pub flags: u8,
    /// The index (session) the record belongs to.
    pub index: String,
    /// Document id within the index.
    pub doc_id: u64,
    /// JSON document body (empty for tombstones and barriers).
    pub value: Vec<u8>,
}

impl Record {
    /// A document write.
    pub fn value(seqno: u64, index: &str, doc_id: u64, value: Vec<u8>) -> Self {
        Record { seqno, flags: 0, index: index.to_string(), doc_id, value }
    }

    /// A per-document tombstone.
    pub fn tombstone(seqno: u64, index: &str, doc_id: u64) -> Self {
        Record { seqno, flags: FLAG_TOMBSTONE, index: index.to_string(), doc_id, value: Vec::new() }
    }

    /// A whole-index drop barrier.
    pub fn drop_index(seqno: u64, index: &str) -> Self {
        Record {
            seqno,
            flags: FLAG_DROP_INDEX,
            index: index.to_string(),
            doc_id: 0,
            value: Vec::new(),
        }
    }

    /// Whether this record is a per-document tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.flags & FLAG_TOMBSTONE != 0
    }

    /// Whether this record is a whole-index drop barrier.
    pub fn is_drop_index(&self) -> bool {
        self.flags & FLAG_DROP_INDEX != 0
    }

    /// Total encoded length of the frame in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.index.len() + self.value.len()
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]); // crc placeholder
        out.extend_from_slice(&self.seqno.to_le_bytes());
        out.push(self.flags);
        out.extend_from_slice(&(self.index.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.doc_id.to_le_bytes());
        out.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        out.extend_from_slice(self.index.as_bytes());
        out.extend_from_slice(&self.value);
        let crc = crc32(&out[start + 4..]);
        out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
    }
}

/// Why decoding stopped at a given offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a full frame claims — a torn tail.
    Truncated,
    /// The frame is complete but its checksum does not match.
    BadCrc,
    /// A length field is implausible (corrupt header).
    BadHeader,
}

fn read_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Upper bound on a single document body; a `value_len` beyond this is
/// treated as header corruption rather than a gigantic allocation.
pub const MAX_VALUE_LEN: u32 = 1 << 30;

/// Decodes one frame from the front of `buf`, returning the record and
/// its total encoded length.
pub fn decode(buf: &[u8]) -> Result<(Record, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let crc = read_u32(&buf[0..4]);
    let seqno = read_u64(&buf[4..12]);
    let flags = buf[12];
    let index_len = read_u16(&buf[13..15]) as usize;
    let doc_id = read_u64(&buf[15..23]);
    let value_len = read_u32(&buf[23..27]);
    if value_len > MAX_VALUE_LEN || flags & !(FLAG_TOMBSTONE | FLAG_DROP_INDEX) != 0 {
        return Err(DecodeError::BadHeader);
    }
    let total = HEADER_LEN + index_len + value_len as usize;
    if buf.len() < total {
        return Err(DecodeError::Truncated);
    }
    let mut check = Crc32::new();
    check.update(&buf[4..total]);
    if check.finish() != crc {
        return Err(DecodeError::BadCrc);
    }
    let index = match std::str::from_utf8(&buf[HEADER_LEN..HEADER_LEN + index_len]) {
        Ok(s) => s.to_string(),
        Err(_) => return Err(DecodeError::BadHeader),
    };
    let value = buf[HEADER_LEN + index_len..total].to_vec();
    Ok((Record { seqno, flags, index, doc_id, value }, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rec = Record::value(7, "dio-s1", 42, br#"{"syscall":"read"}"#.to_vec());
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (back, len) = decode(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn tombstone_and_barrier_roundtrip() {
        for rec in [Record::tombstone(1, "x", 3), Record::drop_index(2, "x")] {
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, _) = decode(&buf).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn every_partial_prefix_is_truncated_or_bad() {
        let rec = Record::value(9, "dio-s1", 1, b"{\"a\":1}".to_vec());
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        for cut in 0..buf.len() {
            match decode(&buf[..cut]) {
                Err(DecodeError::Truncated) | Err(DecodeError::BadHeader) => {}
                other => panic!("prefix of {cut} bytes decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn any_flipped_byte_fails_crc() {
        let rec = Record::value(9, "dio-s1", 1, b"{\"a\":1}".to_vec());
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }
}
