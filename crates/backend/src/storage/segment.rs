//! Append-only segment files.
//!
//! A shard directory holds a generation-numbered sequence of segment
//! files (`seg-<gen>.log`). Exactly one — the highest generation — is
//! *active* and appended to; older segments are sealed and immutable
//! (each with a sidecar hint file, see [`super::hint`]). Appends go
//! through a single `write(2)` per batch, so once [`SegmentWriter::append`]
//! returns, the batch survives a process kill (machine-crash durability
//! additionally needs [`SegmentWriter::sync`], wired to the engine's
//! flush policy).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use super::crash::{self, CrashSite};
use super::record::{decode, DecodeError, Record};

/// Name of a segment log file for `gen`.
pub fn log_name(gen: u64) -> String {
    format!("seg-{gen:010}.log")
}

/// Name of the hint sidecar for `gen`.
pub fn hint_name(gen: u64) -> String {
    format!("seg-{gen:010}.hint")
}

/// Name of an uncommitted merge output for `gen` (renamed to
/// [`log_name`] only once fully written).
pub fn merge_tmp_name(gen: u64) -> String {
    format!("merge-{gen:010}.tmp")
}

/// Parses `seg-<gen>.log` back to its generation.
pub fn parse_log_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// Lists segment generations in a shard directory, ascending.
pub fn list_generations(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_log_name) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Deletes stale `merge-*.tmp` files left by a crash mid-compaction.
pub fn remove_stale_merge_tmps(dir: &Path) -> std::io::Result<usize> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("merge-") && name.ends_with(".tmp") {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The open, appendable tail segment of a shard.
#[derive(Debug)]
pub struct SegmentWriter {
    gen: u64,
    file: File,
    len: u64,
    path: PathBuf,
}

impl SegmentWriter {
    /// Creates a fresh active segment for `gen`.
    pub fn create(dir: &Path, gen: u64) -> std::io::Result<Self> {
        let path = dir.join(log_name(gen));
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        Ok(SegmentWriter { gen, file, len: 0, path })
    }

    /// Reopens an existing segment for append at `valid_len` (the length
    /// recovery validated; anything beyond was already truncated).
    pub fn reopen(dir: &Path, gen: u64, valid_len: u64) -> std::io::Result<Self> {
        let path = dir.join(log_name(gen));
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(SegmentWriter { gen, file, len: valid_len, path })
    }

    /// The segment's generation number.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Bytes appended so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an encoded batch of frames, returning the offset of its
    /// first byte. One `write(2)` per call: when this returns, the batch
    /// is in the kernel page cache and survives a process kill.
    pub fn append(&mut self, encoded: &[u8]) -> std::io::Result<u64> {
        if let Some(split) = crash::armed_split(CrashSite::Append, encoded.len()) {
            // Crash injection: land the torn prefix on disk, then die.
            self.file.write_all(&encoded[..split]).expect("crash-injection prefix write");
            let _ = self.file.sync_data();
            crash::abort_now();
        }
        let offset = self.len;
        self.file.write_all(encoded)?;
        self.len += encoded.len() as u64;
        Ok(offset)
    }

    /// `fdatasync(2)` — machine-crash durability for everything appended.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One record recovered by [`scan`], with its frame location.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// The decoded record.
    pub record: Record,
    /// Byte offset of the frame within the segment.
    pub offset: u64,
    /// Total frame length in bytes.
    pub len: u32,
}

/// Outcome of scanning a segment log.
#[derive(Debug)]
pub struct ScanResult {
    /// Every whole, checksum-valid record in file order.
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix of the file.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did (`None` = clean EOF).
    pub torn: Option<DecodeError>,
}

/// Reads a segment log, decoding frames until EOF or the first torn /
/// corrupt frame. The caller decides whether to truncate at
/// `valid_len` (active segments) or report corruption (sealed ones —
/// though recovery treats both the same way: truncate and count).
pub fn scan(path: &Path) -> std::io::Result<ScanResult> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn = None;
    while pos < buf.len() {
        match decode(&buf[pos..]) {
            Ok((record, len)) => {
                records.push(ScannedRecord { record, offset: pos as u64, len: len as u32 });
                pos += len;
            }
            Err(e) => {
                torn = Some(e);
                break;
            }
        }
    }
    Ok(ScanResult { records, valid_len: pos as u64, torn })
}

/// Truncates the log at `valid_len`, discarding a torn tail.
pub fn truncate(path: &Path, valid_len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()
}

/// Reads one record's frame bytes at a known location (keydir lookup).
pub fn read_at(path: &Path, offset: u64, len: u32) -> std::io::Result<Record> {
    use std::io::{Seek, SeekFrom};
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len as usize];
    file.read_exact(&mut buf)?;
    decode(&buf)
        .map(|(r, _)| r)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dio-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn encode_one(rec: &Record) -> Vec<u8> {
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        buf
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        let r1 = Record::value(1, "a", 0, b"{\"x\":1}".to_vec());
        let r2 = Record::tombstone(2, "a", 0);
        let off1 = w.append(&encode_one(&r1)).unwrap();
        let off2 = w.append(&encode_one(&r2)).unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, r1.encoded_len() as u64);

        let scanned = scan(w.path()).unwrap();
        assert!(scanned.torn.is_none());
        assert_eq!(scanned.records.len(), 2);
        assert_eq!(scanned.records[0].record, r1);
        assert_eq!(scanned.records[1].record, r2);
        assert_eq!(scanned.valid_len, w.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let dir = tmp_dir("torn");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        let r1 = Record::value(1, "a", 0, b"{\"x\":1}".to_vec());
        w.append(&encode_one(&r1)).unwrap();
        let whole = w.len();
        // A torn second record: only half its bytes made it.
        let r2 = Record::value(2, "a", 1, b"{\"x\":2}".to_vec());
        let enc = encode_one(&r2);
        w.append(&enc[..enc.len() / 2]).unwrap();

        let path = w.path().to_path_buf();
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.valid_len, whole);
        assert!(scanned.torn.is_some());
        truncate(&path, scanned.valid_len).unwrap();
        let again = scan(&path).unwrap();
        assert!(again.torn.is_none());
        assert_eq!(again.records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_at_fetches_single_record() {
        let dir = tmp_dir("readat");
        let mut w = SegmentWriter::create(&dir, 3).unwrap();
        let r1 = Record::value(1, "idx", 7, b"{\"v\":\"a\"}".to_vec());
        let r2 = Record::value(2, "idx", 8, b"{\"v\":\"b\"}".to_vec());
        w.append(&encode_one(&r1)).unwrap();
        let off = w.append(&encode_one(&r2)).unwrap();
        let got = read_at(w.path(), off, r2.encoded_len() as u32).unwrap();
        assert_eq!(got, r2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_listing_and_names() {
        let dir = tmp_dir("gens");
        SegmentWriter::create(&dir, 2).unwrap();
        SegmentWriter::create(&dir, 10).unwrap();
        std::fs::write(dir.join("merge-0000000005.tmp"), b"junk").unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![2, 10]);
        assert_eq!(remove_stale_merge_tmps(&dir).unwrap(), 1);
        assert_eq!(parse_log_name(&log_name(42)), Some(42));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
