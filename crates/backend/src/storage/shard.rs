//! One storage shard: an independent bitcask instance.
//!
//! A shard owns a directory of segment files, an active
//! [`SegmentWriter`], a [`KeyDir`], and its own mutex — the unit of
//! write concurrency. The router in [`super`] spreads (index, doc id)
//! keys over shards, so eight writer threads land on eight different
//! locks and files instead of contending on one.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use parking_lot::Mutex;

use dio_telemetry::span::monotonic_ns;
use dio_telemetry::trace;

use super::crash::{self, CrashSite};
use super::hint::{self, HintEntry};
use super::keydir::{Displaced, KeyDir, Slot};
use super::record::Record;
use super::segment::{self, ScannedRecord, SegmentWriter};
use super::{EngineStats, StorageConfig};

/// One logical mutation routed to a shard.
#[derive(Debug)]
pub enum Op {
    /// Write `doc_id` of `index` with a serialized JSON body.
    Put {
        /// Target index.
        index: String,
        /// Document id within the index.
        doc_id: u64,
        /// Serialized JSON body.
        value: Vec<u8>,
    },
    /// Delete `doc_id` of `index`.
    Delete {
        /// Target index.
        index: String,
        /// Document id within the index.
        doc_id: u64,
    },
    /// Drop every document of `index`.
    DropIndex {
        /// Target index.
        index: String,
    },
}

/// Bookkeeping for one sealed (immutable) segment.
#[derive(Debug, Clone, Copy, Default)]
struct SealedInfo {
    len: u64,
}

struct ShardInner {
    writer: SegmentWriter,
    keydir: KeyDir,
    next_seqno: u64,
    next_gen: u64,
    /// Sealed generations and their lengths.
    sealed: BTreeMap<u64, SealedInfo>,
    /// Dead (superseded) bytes per generation, active included.
    dead_by_gen: HashMap<u64, u64>,
    /// Keydir entries of the active segment, accumulated so sealing can
    /// write the hint file without re-scanning the log.
    active_hints: Vec<HintEntry>,
}

impl ShardInner {
    fn account(&mut self, displaced: Option<Displaced>) {
        if let Some(d) = displaced {
            *self.dead_by_gen.entry(d.gen).or_insert(0) += d.bytes;
        }
    }

    fn sealed_bytes(&self) -> u64 {
        self.sealed.values().map(|s| s.len).sum()
    }

    fn sealed_dead_bytes(&self) -> u64 {
        self.sealed.keys().map(|gen| self.dead_by_gen.get(gen).copied().unwrap_or(0)).sum()
    }
}

/// A live document recovered at open time.
#[derive(Debug)]
pub struct LiveDoc {
    /// Index (session) name.
    pub index: String,
    /// Document id within the index.
    pub doc_id: u64,
    /// Serialized JSON body.
    pub value: Vec<u8>,
}

/// One independent bitcask instance (see module docs).
pub struct Shard {
    id: usize,
    dir: PathBuf,
    inner: Mutex<ShardInner>,
    /// Serializes compactions (they overlap with appends, never with
    /// each other).
    compact_gate: Mutex<()>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").field("id", &self.id).field("dir", &self.dir).finish()
    }
}

fn apply_scanned(keydir: &mut KeyDir, gen: u64, rec: &ScannedRecord) -> (Vec<Displaced>, u64) {
    let slot = Slot { gen, offset: rec.offset, frame_len: rec.len, seqno: rec.record.seqno };
    let mut own_dead = 0;
    let displaced = if rec.record.is_drop_index() {
        // The barrier record itself is pure metadata: dead weight in its
        // own segment from birth.
        own_dead += rec.len as u64;
        keydir.apply_drop_index(&rec.record.index, rec.record.seqno)
    } else if rec.record.is_tombstone() {
        own_dead += rec.len as u64;
        keydir
            .apply_tombstone(&rec.record.index, rec.record.doc_id, rec.record.seqno)
            .into_iter()
            .collect()
    } else {
        keydir.apply_put(&rec.record.index, rec.record.doc_id, slot).into_iter().collect()
    };
    (displaced, own_dead)
}

fn apply_hint_entry(keydir: &mut KeyDir, gen: u64, e: &HintEntry) -> (Vec<Displaced>, u64) {
    let rec = ScannedRecord {
        record: Record {
            seqno: e.seqno,
            flags: e.flags,
            index: e.index.clone(),
            doc_id: e.doc_id,
            value: Vec::new(),
        },
        offset: e.offset,
        len: e.frame_len,
    };
    apply_scanned(keydir, gen, &rec)
}

/// One `fdatasync` of the active segment, traced as a `storage.fsync`
/// span and counted into the engine's fsync stats.
fn synced_write(
    writer: &mut SegmentWriter,
    stats: &EngineStats,
    shard: usize,
) -> std::io::Result<()> {
    let mut fsync_span = trace::span("storage", "storage.fsync");
    fsync_span.attr("shard", shard);
    fsync_span.attr("gen", writer.gen());
    let t0 = monotonic_ns();
    writer.sync()?;
    stats.record_fsync(monotonic_ns().saturating_sub(t0));
    Ok(())
}

impl Shard {
    /// Opens (or creates) the shard under `dir`, replaying segments into
    /// the keydir and returning every live document. The recovery work
    /// is recorded as a `recovery.shard` span under `parent` (the
    /// engine's `storage.open` span) with torn-tail / hint-rebuild
    /// attrs, so counters and causal spans describe the same repairs.
    pub fn open(
        dir: PathBuf,
        id: usize,
        stats: &EngineStats,
        parent: trace::SpanCtx,
    ) -> std::io::Result<(Self, Vec<LiveDoc>)> {
        let mut recovery_span = trace::span_child_of(Some(parent), "storage", "recovery.shard");
        recovery_span.attr("shard", id);
        let mut torn_truncated = 0u64;
        let mut hints_rebuilt = 0u64;
        std::fs::create_dir_all(&dir)?;
        segment::remove_stale_merge_tmps(&dir)?;
        let gens = segment::list_generations(&dir)?;
        let mut keydir = KeyDir::new();
        let mut dead_by_gen: HashMap<u64, u64> = HashMap::new();
        let mut sealed = BTreeMap::new();
        let mut max_seqno = 0u64;
        let mut active_hints = Vec::new();
        let account =
            |dead_by_gen: &mut HashMap<u64, u64>, displaced: Vec<Displaced>, own: (u64, u64)| {
                for d in displaced {
                    *dead_by_gen.entry(d.gen).or_insert(0) += d.bytes;
                }
                if own.1 > 0 {
                    *dead_by_gen.entry(own.0).or_insert(0) += own.1;
                }
            };

        let active_gen = gens.last().copied();
        for &gen in &gens {
            let log_path = dir.join(segment::log_name(gen));
            let hint_path = dir.join(segment::hint_name(gen));
            let log_len = std::fs::metadata(&log_path)?.len();
            let is_active = Some(gen) == active_gen;
            let hint_entries = if is_active { None } else { hint::read(&hint_path, log_len) };
            match hint_entries {
                Some(entries) => {
                    for e in &entries {
                        max_seqno = max_seqno.max(e.seqno);
                        let (displaced, own_dead) = apply_hint_entry(&mut keydir, gen, e);
                        account(&mut dead_by_gen, displaced, (gen, own_dead));
                    }
                    sealed.insert(gen, SealedInfo { len: log_len });
                }
                None => {
                    // Missing/torn/stale hint, or the active segment:
                    // scan the log, truncating a torn tail.
                    let scanned = segment::scan(&log_path)?;
                    if scanned.torn.is_some() {
                        segment::truncate(&log_path, scanned.valid_len)?;
                        stats.recovery_truncated.add(1);
                        torn_truncated += 1;
                    }
                    let entries: Vec<HintEntry> =
                        scanned.records.iter().map(HintEntry::from_scanned).collect();
                    for rec in &scanned.records {
                        max_seqno = max_seqno.max(rec.record.seqno);
                        let (displaced, own_dead) = apply_scanned(&mut keydir, gen, rec);
                        account(&mut dead_by_gen, displaced, (gen, own_dead));
                    }
                    if is_active {
                        active_hints = entries;
                    } else {
                        // Rewrite the hint so the next open is fast.
                        hint::write(&hint_path, &entries, scanned.valid_len)?;
                        stats.hints_rewritten.add(1);
                        hints_rebuilt += 1;
                        sealed.insert(gen, SealedInfo { len: scanned.valid_len });
                    }
                }
            }
        }

        // Load every live document, reading each segment at most once.
        let mut by_gen: BTreeMap<u64, Vec<(String, u64, Slot)>> = BTreeMap::new();
        for (index, doc_id, slot) in keydir.live() {
            by_gen.entry(slot.gen).or_default().push((index.to_string(), doc_id, slot));
        }
        let mut docs = Vec::with_capacity(keydir.live_len());
        for (gen, mut slots) in by_gen {
            slots.sort_by_key(|(_, _, s)| s.offset);
            let bytes = std::fs::read(dir.join(segment::log_name(gen)))?;
            for (index, doc_id, slot) in slots {
                let start = slot.offset as usize;
                let end = start + slot.frame_len as usize;
                let (record, _) = super::record::decode(&bytes[start..end]).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("shard {id} gen {gen} offset {start}: {e:?}"),
                    )
                })?;
                docs.push(LiveDoc { index, doc_id, value: record.value });
            }
        }

        keydir.prune_shadows();
        let (writer, next_gen) = match active_gen {
            Some(gen) => {
                let valid_len = std::fs::metadata(dir.join(segment::log_name(gen)))?.len();
                (SegmentWriter::reopen(&dir, gen, valid_len)?, gen + 1)
            }
            None => (SegmentWriter::create(&dir, 1)?, 2),
        };
        let inner = ShardInner {
            writer,
            keydir,
            next_seqno: max_seqno + 1,
            next_gen,
            sealed,
            dead_by_gen,
            active_hints,
        };
        recovery_span.attr("segments", gens.len());
        recovery_span.attr("live_keys", inner.keydir.live_len());
        recovery_span.attr("torn_truncated", torn_truncated);
        recovery_span.attr("hints_rebuilt", hints_rebuilt);
        drop(recovery_span);
        Ok((Shard { id, dir, inner: Mutex::new(inner), compact_gate: Mutex::new(()) }, docs))
    }

    /// Appends a batch of mutations. When this returns, every op is on
    /// disk (page cache): the caller may acknowledge the batch. Returns
    /// whether the shard now wants compaction.
    pub fn append_batch(
        &self,
        ops: Vec<Op>,
        config: &StorageConfig,
        stats: &EngineStats,
    ) -> std::io::Result<bool> {
        let mut append_span = trace::span("storage", "storage.append");
        append_span.attr("shard", self.id);
        append_span.attr("records", ops.len());
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let gen = inner.writer.gen();
        let mut buf = Vec::new();
        let mut staged: Vec<HintEntry> = Vec::with_capacity(ops.len());
        for op in ops {
            let seqno = inner.next_seqno;
            inner.next_seqno += 1;
            let record = match op {
                Op::Put { index, doc_id, value } => {
                    Record { seqno, flags: 0, index, doc_id, value }
                }
                Op::Delete { index, doc_id } => Record::tombstone(seqno, &index, doc_id),
                Op::DropIndex { index } => Record::drop_index(seqno, &index),
            };
            let offset = inner.writer.len() + buf.len() as u64;
            let frame_len = record.encoded_len() as u32;
            record.encode_into(&mut buf);
            staged.push(HintEntry {
                seqno,
                flags: record.flags,
                index: record.index,
                doc_id: record.doc_id,
                frame_len,
                offset,
            });
        }
        append_span.attr("bytes", buf.len());
        inner.writer.append(&buf)?;
        if config.sync_every_batch {
            synced_write(&mut inner.writer, stats, self.id)?;
        }
        stats.bytes_appended.add(buf.len() as u64);
        stats.records_appended.add(staged.len() as u64);

        for entry in staged {
            let slot =
                Slot { gen, offset: entry.offset, frame_len: entry.frame_len, seqno: entry.seqno };
            if entry.flags & super::record::FLAG_DROP_INDEX != 0 {
                *inner.dead_by_gen.entry(gen).or_insert(0) += entry.frame_len as u64;
                for d in inner.keydir.apply_drop_index(&entry.index, entry.seqno) {
                    *inner.dead_by_gen.entry(d.gen).or_insert(0) += d.bytes;
                }
            } else if entry.flags & super::record::FLAG_TOMBSTONE != 0 {
                *inner.dead_by_gen.entry(gen).or_insert(0) += entry.frame_len as u64;
                let displaced =
                    inner.keydir.apply_tombstone(&entry.index, entry.doc_id, entry.seqno);
                inner.account(displaced);
            } else {
                let displaced = inner.keydir.apply_put(&entry.index, entry.doc_id, slot);
                inner.account(displaced);
            }
            inner.active_hints.push(entry);
        }

        if inner.writer.len() >= config.max_segment_bytes {
            Self::seal_active(inner, stats, self.id)?;
        }
        Ok(self.wants_compaction(inner, config))
    }

    /// Seals the active segment in place (sync + hint + bookkeeping)
    /// without rotating — the caller installs the replacement writer.
    fn seal_current(
        inner: &mut ShardInner,
        stats: &EngineStats,
        shard: usize,
    ) -> std::io::Result<()> {
        let mut seal_span = trace::span("storage", "storage.seal");
        seal_span.attr("shard", shard);
        seal_span.attr("gen", inner.writer.gen());
        seal_span.attr("bytes", inner.writer.len());
        synced_write(&mut inner.writer, stats, shard)?;
        let gen = inner.writer.gen();
        let len = inner.writer.len();
        let dir = inner.writer.path().parent().expect("segment has parent dir").to_path_buf();
        {
            let mut hint_span = trace::span("storage", "storage.hint");
            hint_span.attr("entries", inner.active_hints.len());
            hint::write(&dir.join(segment::hint_name(gen)), &inner.active_hints, len)?;
        }
        inner.sealed.insert(gen, SealedInfo { len });
        inner.active_hints.clear();
        stats.segments_sealed.add(1);
        Ok(())
    }

    /// Seals the active segment and opens a fresh one.
    fn seal_active(
        inner: &mut ShardInner,
        stats: &EngineStats,
        shard: usize,
    ) -> std::io::Result<()> {
        Self::seal_current(inner, stats, shard)?;
        let dir = inner.writer.path().parent().expect("segment has parent dir").to_path_buf();
        let next = inner.next_gen;
        inner.next_gen += 1;
        inner.writer = SegmentWriter::create(&dir, next)?;
        Ok(())
    }

    fn wants_compaction(&self, inner: &ShardInner, config: &StorageConfig) -> bool {
        let sealed_bytes = inner.sealed_bytes();
        if sealed_bytes < config.compact_min_sealed_bytes || inner.sealed.len() < 2 {
            return false;
        }
        inner.sealed_dead_bytes() as f64 >= sealed_bytes as f64 * config.compact_min_dead_ratio
    }

    /// Whether background compaction would currently help.
    pub fn needs_compaction(&self, config: &StorageConfig) -> bool {
        let inner = self.inner.lock();
        self.wants_compaction(&inner, config)
    }

    /// Flushes the active segment to durable storage.
    pub fn sync(&self, stats: &EngineStats) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        synced_write(&mut inner.writer, stats, self.id)
    }

    /// Merges every sealed segment into one, dropping superseded records,
    /// tombstones, and barriers (full-merge semantics: anything outside
    /// the inputs is strictly newer, so shadow records need not survive).
    ///
    /// Appends proceed concurrently — the shard lock is held only to
    /// rotate at the start and to install the result at the end.
    /// Crash-safe: output is written to `merge-*.tmp`, fsynced, renamed,
    /// and only then are inputs deleted oldest-first, so at every kill
    /// point the union of surviving files replays to the same store.
    pub fn compact(&self, stats: &EngineStats) -> std::io::Result<()> {
        let _gate = self.compact_gate.lock();
        // The whole merge is one storage.compact span with a child per
        // phase, so the compaction timeline can be read off the flight
        // recorder (and a stall attributed to the phase that caused it).
        let mut compact_span = trace::span("storage", "storage.compact");
        compact_span.attr("shard", self.id);
        // Phase 1 (locked): allocate the output generation *below* a
        // fresh active segment, and snapshot the input set.
        let rotate_span = trace::span("storage", "compact.rotate");
        let (output_gen, inputs) = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            if inner.sealed.is_empty() && inner.writer.is_empty() {
                return Ok(());
            }
            // Seal the current active so it participates in the merge;
            // the new active's gen is above the output's. An *empty*
            // active can't be sealed (a zero-length sealed segment is
            // pure cruft), so its file is removed once the replacement
            // exists — a crash in between just leaves an empty segment
            // for the next open to scan.
            let empty_active = if inner.writer.is_empty() {
                Some(inner.writer.path().to_path_buf())
            } else {
                Self::seal_current(inner, stats, self.id)?;
                None
            };
            let output_gen = inner.next_gen;
            inner.next_gen += 1;
            let active_gen = inner.next_gen;
            inner.next_gen += 1;
            let dir = self.dir.clone();
            inner.writer = SegmentWriter::create(&dir, active_gen)?;
            if let Some(path) = empty_active {
                std::fs::remove_file(path)?;
            }
            let inputs: Vec<u64> = inner.sealed.keys().copied().collect();
            (output_gen, inputs)
        };
        drop(rotate_span);
        if inputs.is_empty() {
            return Ok(());
        }
        compact_span.attr("inputs", inputs.len());

        // Phase 2 (unlocked): replay the immutable inputs and keep only
        // records that are the newest for their key *within the inputs*
        // and not shadowed by a tombstone or barrier.
        let mut merge_span = trace::span("storage", "compact.merge");
        let mut merge_dir = KeyDir::new();
        let mut scans: HashMap<u64, Vec<ScannedRecord>> = HashMap::new();
        for &gen in &inputs {
            let scanned = segment::scan(&self.dir.join(segment::log_name(gen)))?;
            for rec in &scanned.records {
                apply_scanned(&mut merge_dir, gen, rec);
            }
            scans.insert(gen, scanned.records);
        }
        let mut keep: Vec<(u64, ScannedRecord)> = Vec::new();
        for (&gen, records) in &scans {
            for rec in records {
                if rec.record.flags == 0
                    && merge_dir.get(&rec.record.index, rec.record.doc_id).is_some_and(|s| {
                        s.gen == gen && s.offset == rec.offset && s.seqno == rec.record.seqno
                    })
                {
                    keep.push((gen, rec.clone()));
                }
            }
        }
        // Stable output order: by original seqno.
        keep.sort_by_key(|(_, rec)| rec.record.seqno);
        merge_span.attr("kept", keep.len());

        // Phase 3 (unlocked): write the output to a tmp file, hint it,
        // then atomically promote it to a real segment.
        let tmp_path = self.dir.join(segment::merge_tmp_name(output_gen));
        let mut out = std::fs::File::create(&tmp_path)?;
        let mut out_len = 0u64;
        let mut out_slots: Vec<(String, u64, Slot)> = Vec::with_capacity(keep.len());
        let mut out_hints: Vec<HintEntry> = Vec::with_capacity(keep.len());
        let mut buf = Vec::new();
        for (_, rec) in &keep {
            buf.clear();
            rec.record.encode_into(&mut buf);
            if let Some(split) = crash::armed_split(CrashSite::Compact, buf.len()) {
                use std::io::Write as _;
                out.write_all(&buf[..split]).expect("crash-injection prefix write");
                let _ = out.sync_data();
                crash::abort_now();
            }
            use std::io::Write as _;
            out.write_all(&buf)?;
            let slot = Slot {
                gen: output_gen,
                offset: out_len,
                frame_len: buf.len() as u32,
                seqno: rec.record.seqno,
            };
            out_slots.push((rec.record.index.clone(), rec.record.doc_id, slot));
            out_hints.push(HintEntry {
                seqno: rec.record.seqno,
                flags: rec.record.flags,
                index: rec.record.index.clone(),
                doc_id: rec.record.doc_id,
                frame_len: slot.frame_len,
                offset: slot.offset,
            });
            out_len += buf.len() as u64;
        }
        let t0 = monotonic_ns();
        out.sync_data()?;
        stats.record_fsync(monotonic_ns().saturating_sub(t0));
        drop(out);
        merge_span.attr("out_bytes", out_len);
        drop(merge_span);
        {
            let mut hint_span = trace::span("storage", "compact.hint");
            hint_span.attr("entries", out_hints.len());
            hint::write(&self.dir.join(segment::hint_name(output_gen)), &out_hints, out_len)?;
        }
        {
            let _rename_span = trace::span("storage", "compact.rename");
            std::fs::rename(&tmp_path, self.dir.join(segment::log_name(output_gen)))?;
        }

        // Phase 4 (locked): repoint still-current keydir entries at the
        // output and swap the segment bookkeeping.
        {
            let _repoint_span = trace::span("storage", "compact.repoint");
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let mut out_dead = 0u64;
            for (index, doc_id, slot) in out_slots {
                // Repoint keys that did not advance mid-merge; frames of
                // keys that did are garbage in the output from birth.
                if !inner.keydir.repoint(&index, doc_id, slot) {
                    out_dead += slot.frame_len as u64;
                }
            }
            for gen in &inputs {
                inner.sealed.remove(gen);
                inner.dead_by_gen.remove(gen);
            }
            inner.sealed.insert(output_gen, SealedInfo { len: out_len });
            if out_dead > 0 {
                inner.dead_by_gen.insert(output_gen, out_dead);
            }
        }

        // Phase 5 (unlocked): delete inputs oldest-first, so a crash
        // mid-deletion can never leave an old value without the newer
        // record that shadowed it.
        {
            let mut delete_span = trace::span("storage", "compact.delete");
            delete_span.attr("inputs", inputs.len());
            for &gen in &inputs {
                std::fs::remove_file(self.dir.join(segment::log_name(gen)))?;
                let _ = std::fs::remove_file(self.dir.join(segment::hint_name(gen)));
            }
        }
        compact_span.attr("out_bytes", out_len);
        stats.compactions.add(1);
        stats.compacted_bytes.add(out_len);
        Ok(())
    }

    /// Verifies shard invariants for the crash harness: every keydir slot
    /// must resolve to a checksum-valid record with matching key and
    /// seqno, every segment must replay cleanly end-to-end, and the
    /// active segment must be the highest generation on disk.
    pub fn verify(&self) -> Result<ShardReport, String> {
        let inner = self.inner.lock();
        let gens = segment::list_generations(&self.dir)
            .map_err(|e| format!("shard {}: list: {e}", self.id))?;
        let active_gen = inner.writer.gen();
        if gens.last().copied() != Some(active_gen) {
            return Err(format!(
                "shard {}: active gen {} is not the max on disk ({:?})",
                self.id, active_gen, gens
            ));
        }
        let mut segments = 0usize;
        for &gen in &gens {
            let scanned = segment::scan(&self.dir.join(segment::log_name(gen)))
                .map_err(|e| format!("shard {} gen {gen}: scan: {e}", self.id))?;
            if scanned.torn.is_some() {
                return Err(format!(
                    "shard {} gen {gen}: torn record at offset {} after recovery",
                    self.id, scanned.valid_len
                ));
            }
            if gen == active_gen && scanned.valid_len != inner.writer.len() {
                return Err(format!(
                    "shard {} gen {gen}: writer believes {} bytes, disk has {}",
                    self.id,
                    inner.writer.len(),
                    scanned.valid_len
                ));
            }
            segments += 1;
        }
        let mut live_keys = 0usize;
        for (index, doc_id, slot) in inner.keydir.live() {
            let rec = segment::read_at(
                &self.dir.join(segment::log_name(slot.gen)),
                slot.offset,
                slot.frame_len,
            )
            .map_err(|e| {
                format!("shard {}: keydir slot {index}/{doc_id} unreadable: {e}", self.id)
            })?;
            if rec.index != index || rec.doc_id != doc_id || rec.seqno != slot.seqno {
                return Err(format!(
                    "shard {}: keydir slot {index}/{doc_id} resolves to {}/{} seq {}",
                    self.id, rec.index, rec.doc_id, rec.seqno
                ));
            }
            live_keys += 1;
        }
        Ok(ShardReport {
            segments,
            live_keys,
            sealed_bytes: inner.sealed_bytes(),
            dead_bytes: inner.dead_by_gen.values().sum(),
            active_bytes: inner.writer.len(),
        })
    }

    /// Point-in-time shard statistics.
    pub fn stats(&self) -> ShardReport {
        let inner = self.inner.lock();
        ShardReport {
            segments: inner.sealed.len() + 1,
            live_keys: inner.keydir.live_len(),
            sealed_bytes: inner.sealed_bytes(),
            dead_bytes: inner.dead_by_gen.values().sum(),
            active_bytes: inner.writer.len(),
        }
    }
}

/// Per-shard snapshot returned by [`Shard::stats`] / [`Shard::verify`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardReport {
    /// Segment files (active included).
    pub segments: usize,
    /// Live keydir entries.
    pub live_keys: usize,
    /// Bytes in sealed segments.
    pub sealed_bytes: u64,
    /// Superseded bytes across all segments.
    pub dead_bytes: u64,
    /// Bytes in the active segment.
    pub active_bytes: u64,
}

impl ShardReport {
    /// Folds another report into this one (for engine-level totals).
    pub fn merge(&mut self, other: &ShardReport) {
        self.segments += other.segments;
        self.live_keys += other.live_keys;
        self.sealed_bytes += other.sealed_bytes;
        self.dead_bytes += other.dead_bytes;
        self.active_bytes += other.active_bytes;
    }
}
