//! The multi-index document store (the Elasticsearch cluster stand-in).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde_json::Value;

use dio_telemetry::span::{monotonic_ns, Stage, StageStamps};
use dio_telemetry::{Counter, Histogram, MetricsRegistry};

use crate::index::Index;

/// Telemetry handles updated on the store's ingest and query paths once
/// [`DocStore::bind_telemetry`] is called.
#[derive(Debug)]
struct StoreTelemetry {
    bulk_ns: Arc<Histogram>,
    bulk_docs: Arc<Counter>,
    query_ns: Arc<Histogram>,
}

/// A store of named indices, one per tracing session by DIO convention
/// (`dio-<session>`).
///
/// Cloning shares the underlying store, as multiple tracer/visualizer
/// components talk to the same backend.
///
/// # Examples
///
/// ```
/// use dio_backend::DocStore;
/// use serde_json::json;
///
/// let store = DocStore::new();
/// store.index("dio-session1").index_doc(json!({"syscall": "read"}));
/// assert_eq!(store.index_names(), vec!["dio-session1".to_string()]);
/// ```
#[derive(Clone, Default)]
pub struct DocStore {
    indices: Arc<RwLock<BTreeMap<String, Arc<Index>>>>,
    telemetry: Arc<OnceLock<StoreTelemetry>>,
}

impl std::fmt::Debug for DocStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocStore").field("indices", &self.index_names()).finish()
    }
}

impl DocStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the store's metrics (`backend.bulk.ns` / `backend.bulk.docs`
    /// and `backend.query.ns`) with `registry`. Existing and future indices
    /// record their search latency into the shared query histogram. Binding
    /// twice is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.telemetry.set(StoreTelemetry {
            bulk_ns: registry.histogram("backend.bulk.ns"),
            bulk_docs: registry.counter("backend.bulk.docs"),
            query_ns: registry.histogram("backend.query.ns"),
        });
        if let Some(t) = self.telemetry.get() {
            for idx in self.indices.read().values() {
                idx.bind_query_histogram(Arc::clone(&t.query_ns));
            }
        }
    }

    /// Returns the index named `name`, creating it if absent.
    pub fn index(&self, name: &str) -> Arc<Index> {
        if let Some(idx) = self.indices.read().get(name) {
            return Arc::clone(idx);
        }
        let mut indices = self.indices.write();
        let idx = Arc::clone(
            indices.entry(name.to_string()).or_insert_with(|| Arc::new(Index::new(name))),
        );
        if let Some(t) = self.telemetry.get() {
            idx.bind_query_histogram(Arc::clone(&t.query_ns));
        }
        idx
    }

    /// Returns the index named `name` if it exists.
    pub fn get_index(&self, name: &str) -> Option<Arc<Index>> {
        self.indices.read().get(name).cloned()
    }

    /// Opens a continuous query on `name` (creating the index if needed)
    /// with the default queue depth. See [`Index::subscribe`].
    pub fn subscribe(&self, name: &str) -> crate::Subscription {
        self.subscribe_with_capacity(name, crate::DEFAULT_SUBSCRIPTION_CAPACITY)
    }

    /// [`DocStore::subscribe`] with an explicit bounded queue depth (in
    /// batches).
    pub fn subscribe_with_capacity(&self, name: &str, capacity: usize) -> crate::Subscription {
        self.index(name).subscribe(capacity)
    }

    /// Deletes an index, returning whether it existed.
    pub fn delete_index(&self, name: &str) -> bool {
        self.indices.write().remove(name).is_some()
    }

    /// Names of all indices, sorted.
    pub fn index_names(&self) -> Vec<String> {
        self.indices.read().keys().cloned().collect()
    }

    /// Bulk-indexes documents into `name` (creating the index if needed).
    pub fn bulk(&self, name: &str, docs: Vec<Value>) -> Vec<u64> {
        let timer = self.telemetry.get().map(|t| {
            t.bulk_docs.add(docs.len() as u64);
            t.bulk_ns.start_timer()
        });
        let ids = self.index(name).bulk(docs);
        drop(timer);
        ids
    }

    /// [`DocStore::bulk`] for span-traced batches: after the backend
    /// acknowledges the bulk request, every document's [`StageStamps`]
    /// record is stamped [`Stage::BulkIndex`] (one clock read for the
    /// batch — the whole bulk is acknowledged at once, like a single
    /// Elasticsearch `_bulk` response).
    pub fn bulk_spans(&self, name: &str, docs: Vec<Value>, spans: &mut [StageStamps]) -> Vec<u64> {
        let ids = self.bulk(name, docs);
        let now = monotonic_ns();
        for stamps in spans.iter_mut() {
            stamps.stamp(Stage::BulkIndex, now);
        }
        ids
    }

    /// Total documents across all indices.
    pub fn total_docs(&self) -> usize {
        self.indices.read().values().map(|i| i.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn get_or_create_semantics() {
        let store = DocStore::new();
        assert!(store.get_index("a").is_none());
        let a = store.index("a");
        assert!(Arc::ptr_eq(&a, &store.index("a")));
        assert!(store.get_index("a").is_some());
    }

    #[test]
    fn clones_share_state() {
        let store = DocStore::new();
        let clone = store.clone();
        clone.bulk("x", vec![json!({"v": 1}), json!({"v": 2})]);
        assert_eq!(store.total_docs(), 2);
        assert_eq!(store.index("x").len(), 2);
    }

    #[test]
    fn delete_index() {
        let store = DocStore::new();
        store.index("gone");
        assert!(store.delete_index("gone"));
        assert!(!store.delete_index("gone"));
        assert!(store.index_names().is_empty());
    }

    #[test]
    fn bulk_spans_stamps_bulk_index_on_ack() {
        let store = DocStore::new();
        let mut spans = vec![StageStamps::new(), StageStamps::new()];
        spans[0].stamp(Stage::KernelDispatch, 10);
        let ids = store.bulk_spans("dio-s1", vec![json!({"a": 1}), json!({"a": 2})], &mut spans);
        assert_eq!(ids.len(), 2);
        let first = spans[0].get(Stage::BulkIndex).expect("stamped");
        let second = spans[1].get(Stage::BulkIndex).expect("stamped");
        assert_eq!(first, second, "one acknowledgement time for the whole bulk");
    }

    #[test]
    fn sessions_are_isolated() {
        let store = DocStore::new();
        store.bulk("dio-s1", vec![json!({"syscall": "read"})]);
        store.bulk("dio-s2", vec![json!({"syscall": "write"})]);
        assert_eq!(store.index("dio-s1").len(), 1);
        assert_eq!(store.index("dio-s2").len(), 1);
        assert_eq!(store.index_names(), vec!["dio-s1".to_string(), "dio-s2".to_string()]);
    }
}
