//! The multi-index document store (the Elasticsearch cluster stand-in).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde_json::Value;

use dio_telemetry::span::{monotonic_ns, Stage, StageStamps};
use dio_telemetry::{trace, Counter, Histogram, MetricsRegistry};

use crate::index::Index;
use crate::storage::{StorageConfig, StorageEngine, StorageReport};

/// Telemetry handles updated on the store's ingest and query paths once
/// [`DocStore::bind_telemetry`] is called.
#[derive(Debug)]
struct StoreTelemetry {
    bulk_ns: Arc<Histogram>,
    bulk_docs: Arc<Counter>,
    query_ns: Arc<Histogram>,
}

/// A store of named indices, one per tracing session by DIO convention
/// (`dio-<session>`).
///
/// Cloning shares the underlying store, as multiple tracer/visualizer
/// components talk to the same backend.
///
/// # Examples
///
/// ```
/// use dio_backend::DocStore;
/// use serde_json::json;
///
/// let store = DocStore::new();
/// store.index("dio-session1").index_doc(json!({"syscall": "read"}));
/// assert_eq!(store.index_names(), vec!["dio-session1".to_string()]);
/// ```
#[derive(Clone, Default)]
pub struct DocStore {
    indices: Arc<RwLock<BTreeMap<String, Arc<Index>>>>,
    telemetry: Arc<OnceLock<StoreTelemetry>>,
    /// Present when the store was [`DocStore::open`]ed on disk; `None`
    /// for the in-memory default (unit tests, short-lived sessions).
    persist: Option<Arc<StorageEngine>>,
}

impl std::fmt::Debug for DocStore {
    /// Non-blocking by design: `Debug` is called from logging and panic
    /// paths that may already interleave with writers, so it must never
    /// queue behind the indices lock (a second acquisition on a path
    /// that holds it — or a writer waiting in between — would deadlock).
    /// It takes the read lock at most once, via `try_read`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("DocStore");
        match self.indices.try_read() {
            Some(guard) => s.field("indices", &guard.keys().collect::<Vec<_>>()),
            None => s.field("indices", &"<locked>"),
        };
        s.field("persistent", &self.persist.is_some()).finish()
    }
}

impl DocStore {
    /// Creates an empty in-memory store (contents vanish at drop).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (creating if needed) a persistent store rooted at `path`,
    /// replaying any existing segments — see DESIGN.md §11. Every index
    /// write is acknowledged only after it is on disk; reopening the
    /// same path recovers every acknowledged document, truncating torn
    /// tail records (counted in `backend.recovery.truncated`).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(path, StorageConfig::default())
    }

    /// [`DocStore::open`] with explicit [`StorageConfig`] tuning.
    pub fn open_with(path: impl AsRef<Path>, config: StorageConfig) -> std::io::Result<Self> {
        let (engine, loaded) = StorageEngine::open(path.as_ref(), config)?;
        let mut indices = BTreeMap::new();
        for (name, docs) in loaded {
            let index = Index::from_persisted(&name, Arc::clone(&engine), docs);
            indices.insert(name, Arc::new(index));
        }
        Ok(DocStore {
            indices: Arc::new(RwLock::new(indices)),
            telemetry: Arc::new(OnceLock::new()),
            persist: Some(engine),
        })
    }

    /// Whether the store persists to disk.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// The storage engine behind a persistent store (`None` in-memory).
    /// Exposes maintenance and verification entry points for tests,
    /// benches, and the crash harness.
    pub fn storage(&self) -> Option<&Arc<StorageEngine>> {
        self.persist.as_ref()
    }

    /// `fdatasync`s all shards of a persistent store (a durability
    /// point; the tracer calls this when a session closes). No-op
    /// in-memory.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.persist {
            Some(engine) => engine.flush(),
            None => Ok(()),
        }
    }

    /// Synchronously compacts all shards of a persistent store. No-op
    /// in-memory.
    pub fn compact_now(&self) -> std::io::Result<()> {
        match &self.persist {
            Some(engine) => engine.compact_now(),
            None => Ok(()),
        }
    }

    /// Storage statistics of a persistent store (`None` in-memory).
    pub fn storage_report(&self) -> Option<StorageReport> {
        self.persist.as_ref().map(|e| e.report())
    }

    /// Registers the store's metrics (`backend.bulk.ns` / `backend.bulk.docs`
    /// and `backend.query.ns`) with `registry`. Existing and future indices
    /// record their search latency into the shared query histogram. Binding
    /// twice is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.telemetry.set(StoreTelemetry {
            bulk_ns: registry.histogram("backend.bulk.ns"),
            bulk_docs: registry.counter("backend.bulk.docs"),
            query_ns: registry.histogram("backend.query.ns"),
        });
        if let Some(t) = self.telemetry.get() {
            for idx in self.indices.read().values() {
                idx.bind_query_histogram(Arc::clone(&t.query_ns));
            }
        }
        if let Some(engine) = &self.persist {
            engine.bind_telemetry(registry);
        }
    }

    /// Returns the index named `name`, creating it if absent.
    pub fn index(&self, name: &str) -> Arc<Index> {
        if let Some(idx) = self.indices.read().get(name) {
            return Arc::clone(idx);
        }
        let mut indices = self.indices.write();
        let idx = Arc::clone(indices.entry(name.to_string()).or_insert_with(|| {
            Arc::new(match &self.persist {
                Some(engine) => Index::new_persistent(name, Arc::clone(engine)),
                None => Index::new(name),
            })
        }));
        if let Some(t) = self.telemetry.get() {
            idx.bind_query_histogram(Arc::clone(&t.query_ns));
        }
        idx
    }

    /// Returns the index named `name` if it exists.
    pub fn get_index(&self, name: &str) -> Option<Arc<Index>> {
        self.indices.read().get(name).cloned()
    }

    /// Opens a continuous query on `name` (creating the index if needed)
    /// with the default queue depth. See [`Index::subscribe`].
    pub fn subscribe(&self, name: &str) -> crate::Subscription {
        self.subscribe_with_capacity(name, crate::DEFAULT_SUBSCRIPTION_CAPACITY)
    }

    /// [`DocStore::subscribe`] with an explicit bounded queue depth (in
    /// batches).
    pub fn subscribe_with_capacity(&self, name: &str, capacity: usize) -> crate::Subscription {
        self.index(name).subscribe(capacity)
    }

    /// Deletes an index, returning whether it existed. On a persistent
    /// store a drop barrier is appended to every shard first, so the
    /// deletion itself survives a crash.
    pub fn delete_index(&self, name: &str) -> bool {
        let existed = self.indices.write().remove(name).is_some();
        if existed {
            if let Some(engine) = &self.persist {
                engine.drop_index(name).expect("dio-backend: persistent index drop failed");
            }
        }
        existed
    }

    /// Names of all indices, sorted. One read-lock acquisition; callers
    /// formatting the store should prefer `{:?}` (non-blocking) over
    /// composing this with other locked accessors.
    pub fn index_names(&self) -> Vec<String> {
        self.indices.read().keys().cloned().collect()
    }

    /// Bulk-indexes documents into `name` (creating the index if needed).
    pub fn bulk(&self, name: &str, docs: Vec<Value>) -> Vec<u64> {
        let mut bulk_span = trace::span("backend", "backend.bulk");
        bulk_span.attr("docs", docs.len());
        bulk_span.attr("index", trace::fnv64(name));
        let timer = self.telemetry.get().map(|t| {
            t.bulk_docs.add(docs.len() as u64);
            t.bulk_ns.start_timer()
        });
        let ids = self.index(name).bulk(docs);
        drop(timer);
        ids
    }

    /// [`DocStore::bulk`] for span-traced batches: after the backend
    /// acknowledges the bulk request, every document's [`StageStamps`]
    /// record is stamped [`Stage::BulkIndex`] (one clock read for the
    /// batch — the whole bulk is acknowledged at once, like a single
    /// Elasticsearch `_bulk` response).
    pub fn bulk_spans(&self, name: &str, docs: Vec<Value>, spans: &mut [StageStamps]) -> Vec<u64> {
        let ids = self.bulk(name, docs);
        let now = monotonic_ns();
        for stamps in spans.iter_mut() {
            stamps.stamp(Stage::BulkIndex, now);
        }
        ids
    }

    /// Total documents across all indices.
    pub fn total_docs(&self) -> usize {
        self.indices.read().values().map(|i| i.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn get_or_create_semantics() {
        let store = DocStore::new();
        assert!(store.get_index("a").is_none());
        let a = store.index("a");
        assert!(Arc::ptr_eq(&a, &store.index("a")));
        assert!(store.get_index("a").is_some());
    }

    #[test]
    fn clones_share_state() {
        let store = DocStore::new();
        let clone = store.clone();
        clone.bulk("x", vec![json!({"v": 1}), json!({"v": 2})]);
        assert_eq!(store.total_docs(), 2);
        assert_eq!(store.index("x").len(), 2);
    }

    #[test]
    fn delete_index() {
        let store = DocStore::new();
        store.index("gone");
        assert!(store.delete_index("gone"));
        assert!(!store.delete_index("gone"));
        assert!(store.index_names().is_empty());
    }

    #[test]
    fn bulk_spans_stamps_bulk_index_on_ack() {
        let store = DocStore::new();
        let mut spans = vec![StageStamps::new(), StageStamps::new()];
        spans[0].stamp(Stage::KernelDispatch, 10);
        let ids = store.bulk_spans("dio-s1", vec![json!({"a": 1}), json!({"a": 2})], &mut spans);
        assert_eq!(ids.len(), 2);
        let first = spans[0].get(Stage::BulkIndex).expect("stamped");
        let second = spans[1].get(Stage::BulkIndex).expect("stamped");
        assert_eq!(first, second, "one acknowledgement time for the whole bulk");
    }

    #[test]
    fn debug_does_not_deadlock_under_a_held_write_lock() {
        // Regression guard for the old Debug impl, which re-acquired the
        // indices read lock via `index_names()` while already formatting —
        // with a writer queued in between, that self-deadlocked. The new
        // impl must complete (with a placeholder) even while another
        // thread holds the write guard.
        let store = DocStore::new();
        store.index("dio-held");
        let guard = store.indices.write();
        let clone = store.clone();
        let handle = std::thread::spawn(move || format!("{clone:?}"));
        let rendered = handle.join().expect("Debug must not deadlock");
        assert!(rendered.contains("<locked>"), "got: {rendered}");
        drop(guard);
        let rendered = format!("{store:?}");
        assert!(rendered.contains("dio-held"), "got: {rendered}");
    }

    #[test]
    fn persistent_store_roundtrips_across_reopen() {
        let dir = std::env::temp_dir().join(format!("dio-store-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
            assert!(store.is_persistent());
            store.bulk("dio-s1", vec![json!({"syscall": "read"}), json!({"syscall": "write"})]);
            store.bulk("dio-s2", vec![json!({"syscall": "openat"})]);
            store.index("dio-s1").delete(1);
            store.flush().unwrap();
        }
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        assert_eq!(store.index_names(), vec!["dio-s1".to_string(), "dio-s2".to_string()]);
        assert_eq!(store.index("dio-s1").len(), 1);
        assert_eq!(store.index("dio-s2").len(), 1);
        let resp = store
            .index("dio-s1")
            .search(&crate::SearchRequest::new(crate::Query::term("syscall", "read")));
        assert_eq!(resp.total, 1);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_are_isolated() {
        let store = DocStore::new();
        store.bulk("dio-s1", vec![json!({"syscall": "read"})]);
        store.bulk("dio-s2", vec![json!({"syscall": "write"})]);
        assert_eq!(store.index("dio-s1").len(), 1);
        assert_eq!(store.index("dio-s2").len(), 1);
        assert_eq!(store.index_names(), vec!["dio-s1".to_string(), "dio-s2".to_string()]);
    }
}
