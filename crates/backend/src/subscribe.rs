//! Continuous queries: push-based subscriptions to an index's ingest.
//!
//! A [`Subscription`] receives every batch accepted by [`Index::bulk`] /
//! [`Index::index_doc`] *after* it was created — the push analogue of
//! Elasticsearch's `_changes`-style polling, built for the live diagnosis
//! engine so detectors consume events as bulk batches land instead of
//! re-querying finished indices.
//!
//! Delivery never blocks the writer: each subscriber owns a bounded queue
//! of batches, and a full queue **drops the batch for that subscriber**
//! (counted in [`Subscription::missed_batches`]) rather than stalling the
//! ingest path. Consumers are expected to treat misses as a degradation
//! signal (the diagnosis engine switches to sampled evaluation).
//!
//! [`Index::bulk`]: crate::Index::bulk
//! [`Index::index_doc`]: crate::Index::index_doc

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde_json::Value;

/// Default bounded queue depth (in batches) for [`crate::DocStore::subscribe`].
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 64;

/// Shared state between an index and one subscriber.
#[derive(Debug)]
pub(crate) struct SubQueue {
    batches: Mutex<VecDeque<Vec<Value>>>,
    capacity: usize,
    missed: AtomicU64,
    alive: AtomicBool,
    /// Set by the index side when it shuts down (store close/reopen,
    /// `delete_index`): no further batches will ever arrive.
    closed: AtomicBool,
}

impl SubQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        SubQueue {
            batches: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            missed: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            closed: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Non-blocking delivery: drops (and counts) the batch when full.
    pub(crate) fn offer(&self, batch: &[Value]) {
        let mut q = self.batches.lock();
        if q.len() >= self.capacity {
            drop(q);
            self.missed.fetch_add(1, Ordering::Relaxed);
        } else {
            q.push_back(batch.to_vec());
        }
    }
}

/// Consumer handle of a continuous query (see the module docs).
///
/// Dropping the subscription detaches it: the index stops cloning batches
/// for it on the next delivery.
#[derive(Debug)]
pub struct Subscription {
    index: String,
    queue: Arc<SubQueue>,
}

impl Subscription {
    pub(crate) fn new(index: String, queue: Arc<SubQueue>) -> Self {
        Subscription { index, queue }
    }

    /// Name of the subscribed index.
    pub fn index_name(&self) -> &str {
        &self.index
    }

    /// Pops the oldest pending batch, if any.
    pub fn try_recv(&self) -> Option<Vec<Value>> {
        self.queue.batches.lock().pop_front()
    }

    /// Waits up to `timeout` for a batch (polling; granularity ~1ms).
    ///
    /// On a **closed** subscription (see [`Subscription::is_closed`])
    /// this still drains queued batches, but returns `None` immediately
    /// once the queue is empty instead of sleeping out the timeout — a
    /// consumer looping on `recv_timeout` terminates deterministically
    /// when its index shuts down.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Vec<Value>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(batch) = self.try_recv() {
                return Some(batch);
            }
            // Check closed *after* the drain attempt: batches delivered
            // before the close are never lost.
            if self.is_closed() || Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Whether the index side shut down (store close/reopen or
    /// `delete_index`). Queued batches remain drainable; nothing new
    /// will ever arrive, and [`Subscription::missed_batches`] is final.
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::Acquire)
    }

    /// Pops every pending batch.
    pub fn drain(&self) -> Vec<Vec<Value>> {
        self.queue.batches.lock().drain(..).collect()
    }

    /// Batches currently queued (a backpressure signal: compare against
    /// [`Subscription::capacity`]).
    pub fn backlog(&self) -> usize {
        self.queue.batches.lock().len()
    }

    /// Bounded queue depth in batches.
    pub fn capacity(&self) -> usize {
        self.queue.capacity
    }

    /// Batches dropped because this subscriber's queue was full.
    pub fn missed_batches(&self) -> u64 {
        self.queue.missed.load(Ordering::Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.queue.alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Index;
    use serde_json::json;

    #[test]
    fn subscription_sees_batches_indexed_after_creation() {
        let idx = Index::new("t");
        idx.bulk(vec![json!({"n": 0})]); // before subscribe: not delivered
        let sub = idx.subscribe(8);
        idx.bulk(vec![json!({"n": 1}), json!({"n": 2})]);
        idx.index_doc(json!({"n": 3}));
        let batches = sub.drain();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[1][0]["n"], 3);
        assert_eq!(sub.missed_batches(), 0);
        // The documents are also stored normally.
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn full_queue_drops_batches_instead_of_blocking() {
        let idx = Index::new("t");
        let sub = idx.subscribe(2);
        for n in 0..5 {
            idx.bulk(vec![json!({"n": n})]);
        }
        assert_eq!(sub.backlog(), 2, "queue capped at capacity");
        assert_eq!(sub.missed_batches(), 3);
        // Ingest was never stalled: all docs landed.
        assert_eq!(idx.len(), 5);
        // Draining frees space for new deliveries.
        sub.drain();
        idx.bulk(vec![json!({"n": 9})]);
        assert_eq!(sub.try_recv().unwrap()[0]["n"], 9);
    }

    #[test]
    fn dropped_subscription_detaches() {
        let idx = Index::new("t");
        let sub = idx.subscribe(8);
        idx.bulk(vec![json!({"n": 1})]);
        drop(sub);
        idx.bulk(vec![json!({"n": 2})]);
        assert_eq!(idx.subscriber_count(), 0, "dead subscriber pruned on delivery");
    }

    #[test]
    fn multiple_subscribers_each_get_every_batch() {
        let idx = Index::new("t");
        let a = idx.subscribe(8);
        let b = idx.subscribe(8);
        idx.bulk(vec![json!({"n": 1})]);
        assert_eq!(a.try_recv().unwrap()[0]["n"], 1);
        assert_eq!(b.try_recv().unwrap()[0]["n"], 1);
    }

    #[test]
    fn recv_timeout_returns_queued_batch_and_times_out_when_empty() {
        let idx = Index::new("t");
        let sub = idx.subscribe(8);
        idx.bulk(vec![json!({"n": 1})]);
        assert!(sub.recv_timeout(Duration::from_millis(50)).is_some());
        assert!(sub.recv_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn no_subscribers_means_no_cloning_path() {
        // Purely behavioral: bulk on an unsubscribed index works as before.
        let idx = Index::new("t");
        let ids = idx.bulk(vec![json!({"n": 1}), json!({"n": 2})]);
        assert_eq!(ids.len(), 2);
        assert_eq!(idx.subscriber_count(), 0);
    }
}
