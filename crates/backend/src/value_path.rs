//! Dotted-path access and flattening over JSON documents.

use serde_json::Value;

/// Resolves a dotted field path (`"args.count"`) inside a document.
///
/// # Examples
///
/// ```
/// use serde_json::json;
/// let doc = json!({"args": {"count": 26}});
/// assert_eq!(dio_backend::get_path(&doc, "args.count"), Some(&json!(26)));
/// assert_eq!(dio_backend::get_path(&doc, "missing"), None);
/// ```
pub fn get_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for part in path.split('.') {
        cur = cur.as_object()?.get(part)?;
    }
    Some(cur)
}

/// Numeric view of a JSON value (integers and floats unified as `f64`).
pub fn as_number(value: &Value) -> Option<f64> {
    value.as_f64()
}

/// Keyword view of a JSON value (strings verbatim; booleans as
/// `"true"`/`"false"`).
pub fn as_keyword(value: &Value) -> Option<String> {
    match value {
        Value::String(s) => Some(s.clone()),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// Calls `f` with every `(dotted_path, scalar)` leaf in the document.
/// Arrays contribute each element under the same path.
pub fn for_each_leaf<'a>(doc: &'a Value, f: &mut impl FnMut(&str, &'a Value)) {
    fn walk<'a>(prefix: &mut String, value: &'a Value, f: &mut impl FnMut(&str, &'a Value)) {
        match value {
            Value::Object(map) => {
                for (k, v) in map {
                    let len = prefix.len();
                    if !prefix.is_empty() {
                        prefix.push('.');
                    }
                    prefix.push_str(k);
                    walk(prefix, v, f);
                    prefix.truncate(len);
                }
            }
            Value::Array(items) => {
                for item in items {
                    walk(prefix, item, f);
                }
            }
            Value::Null => {}
            scalar => f(prefix, scalar),
        }
    }
    let mut prefix = String::new();
    walk(&mut prefix, doc, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn nested_path_access() {
        let doc = json!({"a": {"b": {"c": 1}}, "x": 2});
        assert_eq!(get_path(&doc, "a.b.c"), Some(&json!(1)));
        assert_eq!(get_path(&doc, "x"), Some(&json!(2)));
        assert_eq!(get_path(&doc, "a.b.missing"), None);
        assert_eq!(get_path(&doc, "x.y"), None);
    }

    #[test]
    fn keyword_and_number_views() {
        assert_eq!(as_keyword(&json!("hi")), Some("hi".to_string()));
        assert_eq!(as_keyword(&json!(true)), Some("true".to_string()));
        assert_eq!(as_keyword(&json!(1)), None);
        assert_eq!(as_number(&json!(2.5)), Some(2.5));
        assert_eq!(as_number(&json!(-3)), Some(-3.0));
        assert_eq!(as_number(&json!("x")), None);
    }

    #[test]
    fn leaf_walk_flattens() {
        let doc = json!({"a": 1, "b": {"c": "x", "d": [2, 3]}, "n": null});
        let mut seen = Vec::new();
        for_each_leaf(&doc, &mut |p, v| seen.push((p.to_string(), v.clone())));
        assert!(seen.contains(&("a".to_string(), json!(1))));
        assert!(seen.contains(&("b.c".to_string(), json!("x"))));
        assert!(seen.contains(&("b.d".to_string(), json!(2))));
        assert!(seen.contains(&("b.d".to_string(), json!(3))));
        assert_eq!(seen.len(), 4, "nulls are not indexed");
    }
}
