//! The Table III capability matrix: DIO vs other syscall tracers.

/// How a tool's analysis pipeline is integrated with its tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integration {
    /// No integrated pipeline: the user wires analysis up manually.
    None,
    /// Traced data stored first, analyzed later.
    Offline,
    /// Events parsed and forwarded to the pipeline as they are captured.
    Inline,
}

impl std::fmt::Display for Integration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Integration::None => "-",
            Integration::Offline => "O",
            Integration::Inline => "I",
        };
        f.write_str(s)
    }
}

/// Level of support for one of the paper's use cases (§III-B / §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCaseSupport {
    /// Cannot even trace the required information.
    No,
    /// Traces the information but offers no analysis to diagnose it ("T").
    TraceOnly,
    /// Traces and provides the analysis ("TA").
    TraceAndAnalyze,
}

impl std::fmt::Display for UseCaseSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UseCaseSupport::No => "-",
            UseCaseSupport::TraceOnly => "T",
            UseCaseSupport::TraceAndAnalyze => "TA",
        };
        f.write_str(s)
    }
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct ToolCapabilities {
    /// Tool name.
    pub name: &'static str,
    /// Captures basic syscall info (type, args, return, pids, times).
    pub syscall_info: bool,
    /// Captures file offsets (DIO-only, per the paper).
    pub f_offset: bool,
    /// Captures file types.
    pub f_type: bool,
    /// Captures process names.
    pub proc_name: bool,
    /// Kernel-side filtering at the tracing phase.
    pub filters: bool,
    /// Entry/exit aggregated into one event in kernel space.
    pub aggregates_entry_exit: bool,
    /// Analysis-pipeline integration.
    pub integration: Integration,
    /// Customizable analysis over the full captured data.
    pub customizable: bool,
    /// Ships predefined visualizations.
    pub predefined_vis: bool,
    /// §III-B (Fluent Bit data loss) diagnosability.
    pub use_case_data_loss: UseCaseSupport,
    /// §III-C (RocksDB contention) diagnosability.
    pub use_case_contention: UseCaseSupport,
}

/// The Table III rows, in paper order, as encoded from §IV's comparison.
pub fn capability_matrix() -> Vec<ToolCapabilities> {
    use Integration::{Inline, None as NoPipe, Offline};
    use UseCaseSupport::{No, TraceAndAnalyze, TraceOnly};
    vec![
        ToolCapabilities {
            name: "strace",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: false,
            filters: true,
            aggregates_entry_exit: false,
            integration: NoPipe,
            customizable: false,
            predefined_vis: false,
            use_case_data_loss: No,
            use_case_contention: No,
        },
        ToolCapabilities {
            name: "Sysdig",
            syscall_info: true,
            f_offset: false,
            f_type: true,
            proc_name: true,
            filters: true,
            aggregates_entry_exit: false,
            integration: NoPipe,
            customizable: false,
            predefined_vis: false,
            use_case_data_loss: No,
            use_case_contention: TraceOnly,
        },
        ToolCapabilities {
            name: "Re-Animator",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: false,
            filters: false,
            aggregates_entry_exit: false,
            integration: NoPipe,
            customizable: false,
            predefined_vis: false,
            use_case_data_loss: No,
            use_case_contention: No,
        },
        ToolCapabilities {
            name: "Tracee",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: true,
            filters: true,
            aggregates_entry_exit: true,
            integration: NoPipe,
            customizable: false,
            predefined_vis: false,
            use_case_data_loss: No,
            use_case_contention: TraceOnly,
        },
        ToolCapabilities {
            name: "CaT",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: true,
            filters: true,
            aggregates_entry_exit: true,
            integration: Offline,
            customizable: false,
            predefined_vis: false,
            use_case_data_loss: No,
            use_case_contention: TraceOnly,
        },
        ToolCapabilities {
            name: "IOscope",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: false,
            filters: false,
            aggregates_entry_exit: false,
            integration: Offline,
            customizable: false,
            predefined_vis: true,
            use_case_data_loss: No,
            use_case_contention: No,
        },
        ToolCapabilities {
            name: "LongLine",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: true,
            filters: false,
            aggregates_entry_exit: false,
            integration: Inline,
            customizable: false,
            predefined_vis: true,
            use_case_data_loss: No,
            use_case_contention: TraceOnly,
        },
        ToolCapabilities {
            name: "Daoud et al.",
            syscall_info: true,
            f_offset: false,
            f_type: false,
            proc_name: false,
            filters: false,
            aggregates_entry_exit: false,
            integration: Offline,
            customizable: true,
            predefined_vis: true,
            use_case_data_loss: No,
            use_case_contention: TraceOnly,
        },
        ToolCapabilities {
            name: "DIO",
            syscall_info: true,
            f_offset: true,
            f_type: true,
            proc_name: true,
            filters: true,
            aggregates_entry_exit: true,
            integration: Inline,
            customizable: true,
            predefined_vis: true,
            use_case_data_loss: TraceAndAnalyze,
            use_case_contention: TraceAndAnalyze,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dio() -> ToolCapabilities {
        capability_matrix().into_iter().find(|t| t.name == "DIO").unwrap()
    }

    #[test]
    fn dio_is_the_only_tool_with_offsets() {
        let with_offsets: Vec<_> =
            capability_matrix().into_iter().filter(|t| t.f_offset).map(|t| t.name).collect();
        assert_eq!(with_offsets, vec!["DIO"], "§IV: DIO is the only tool collecting file offsets");
    }

    #[test]
    fn only_three_tools_aggregate_in_kernel() {
        let agg: Vec<_> = capability_matrix()
            .into_iter()
            .filter(|t| t.aggregates_entry_exit)
            .map(|t| t.name)
            .collect();
        assert_eq!(agg, vec!["Tracee", "CaT", "DIO"]);
    }

    #[test]
    fn only_dio_and_longline_are_inline() {
        let inline: Vec<_> = capability_matrix()
            .into_iter()
            .filter(|t| t.integration == Integration::Inline)
            .map(|t| t.name)
            .collect();
        assert_eq!(inline, vec!["LongLine", "DIO"]);
    }

    #[test]
    fn only_dio_diagnoses_both_use_cases() {
        let both: Vec<_> = capability_matrix()
            .into_iter()
            .filter(|t| {
                t.use_case_data_loss == UseCaseSupport::TraceAndAnalyze
                    && t.use_case_contention == UseCaseSupport::TraceAndAnalyze
            })
            .map(|t| t.name)
            .collect();
        assert_eq!(both, vec!["DIO"]);
        assert_eq!(dio().use_case_data_loss.to_string(), "TA");
    }

    #[test]
    fn filtering_tools_match_section_iv() {
        let filt: Vec<_> =
            capability_matrix().into_iter().filter(|t| t.filters).map(|t| t.name).collect();
        assert_eq!(filt, vec!["strace", "Sysdig", "Tracee", "CaT", "DIO"]);
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Integration::Offline.to_string(), "O");
        assert_eq!(Integration::Inline.to_string(), "I");
        assert_eq!(UseCaseSupport::No.to_string(), "-");
    }
}
