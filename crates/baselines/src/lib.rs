#![warn(missing_docs)]

//! Baseline tracers for the paper's comparisons.
//!
//! Table II compares DIO against *strace* (ptrace-based, blocking,
//! highest overhead) and *Sysdig* (eBPF-based, cheapest, but reporting
//! the least information). [`StraceTracer`] and [`SysdigTracer`] model
//! both mechanisms faithfully enough to regenerate the table's ordering,
//! and [`capability_matrix`] encodes the qualitative Table III.

mod capabilities;
mod strace;
mod sysdig;

pub use capabilities::{capability_matrix, Integration, ToolCapabilities, UseCaseSupport};
pub use strace::{StraceConfig, StraceTracer};
pub use sysdig::{SysdigConfig, SysdigEvent, SysdigTracer};
