//! An strace-style baseline tracer.
//!
//! strace uses ptrace: the traced thread is **stopped twice per syscall**
//! (entry and exit), each stop costing a pair of context switches into the
//! single-threaded tracer, which serializes all traced threads. This is
//! the mechanism the paper cites for strace's 1.71× slowdown ("the trap
//! mechanism used to intercept syscalls and the context switching done by
//! strace impose considerable overhead" §III-D). The baseline reproduces
//! both effects: a per-stop busy cost and a global tracer lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dio_kernel::{EnterEvent, ExitEvent, KernelInspect, SyscallProbe};
use dio_syscall::SyscallSet;

/// Configuration of the ptrace cost model.
#[derive(Debug, Clone, Copy)]
pub struct StraceConfig {
    /// Cost of one ptrace stop (two context switches + tracer wakeup), in
    /// nanoseconds. Applied at entry *and* exit, under the tracer lock.
    pub stop_cost_ns: u64,
    /// Keep formatted output lines in memory (real strace writes them to
    /// stderr/file; disable to measure pure interception cost).
    pub record_lines: bool,
}

impl Default for StraceConfig {
    fn default() -> Self {
        StraceConfig { stop_cost_ns: 6_000, record_lines: true }
    }
}

/// The strace-like probe. Attach to a kernel's tracepoints; collected
/// lines are available via [`StraceTracer::lines`].
///
/// Unlike DIO, strace never drops events — it blocks the application
/// instead, trading throughput for completeness.
pub struct StraceTracer {
    config: StraceConfig,
    /// The single-threaded tracer: all stops serialize here.
    tracer: Mutex<TracerState>,
    events: AtomicU64,
}

#[derive(Default)]
struct TracerState {
    lines: Vec<String>,
    pending: std::collections::HashMap<dio_syscall::Tid, String>,
}

impl std::fmt::Debug for StraceTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StraceTracer").field("events", &self.events()).finish()
    }
}

fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

impl StraceTracer {
    /// Creates a tracer with the given cost model.
    pub fn new(config: StraceConfig) -> Arc<Self> {
        Arc::new(StraceTracer {
            config,
            tracer: Mutex::new(TracerState::default()),
            events: AtomicU64::new(0),
        })
    }

    /// Completed (entry+exit) events observed.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// The formatted trace lines (strace's output file).
    pub fn lines(&self) -> Vec<String> {
        self.tracer.lock().lines.clone()
    }
}

impl SyscallProbe for StraceTracer {
    fn kinds(&self) -> SyscallSet {
        SyscallSet::all()
    }

    fn on_enter(&self, _view: &dyn KernelInspect, event: &EnterEvent<'_>) {
        // ptrace stop #1: the thread blocks until the tracer handled it.
        let mut tracer = self.tracer.lock();
        spin_ns(self.config.stop_cost_ns);
        if self.config.record_lines {
            let args: Vec<String> = event.args.iter().map(ToString::to_string).collect();
            tracer.pending.insert(
                event.tid,
                format!("[pid {}] {}({})", event.tid, event.kind, args.join(", ")),
            );
        }
    }

    fn on_exit(&self, _view: &dyn KernelInspect, event: &ExitEvent) {
        // ptrace stop #2.
        let mut tracer = self.tracer.lock();
        spin_ns(self.config.stop_cost_ns);
        self.events.fetch_add(1, Ordering::Relaxed);
        if self.config.record_lines {
            if let Some(prefix) = tracer.pending.remove(&event.tid) {
                let line = format!("{prefix} = {}", event.ret);
                tracer.lines.push(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::{DiskProfile, Kernel};

    #[test]
    fn records_formatted_lines() {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let tracer = StraceTracer::new(StraceConfig { stop_cost_ns: 0, record_lines: true });
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.creat("/f", 0o644).unwrap();
        t.write(fd, b"abc").unwrap();
        t.close(fd).unwrap();
        let lines = tracer.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("creat"), "{lines:?}");
        assert!(lines[0].ends_with("= 3"));
        assert!(lines[1].contains("write"));
        assert!(lines[1].ends_with("= 3"));
        assert_eq!(tracer.events(), 3);
    }

    #[test]
    fn never_drops_events() {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let tracer = StraceTracer::new(StraceConfig { stop_cost_ns: 0, record_lines: true });
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        for i in 0..500 {
            t.creat(&format!("/f{i}"), 0o644).unwrap();
        }
        assert_eq!(tracer.events(), 500);
        assert_eq!(tracer.lines().len(), 500);
    }

    #[test]
    fn stop_cost_slows_the_traced_thread() {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = k.spawn_process("app").spawn_thread("app");
        let clock = k.clock().clone();
        // Untraced baseline.
        let t0 = clock.now_ns();
        for i in 0..50 {
            t.creat(&format!("/a{i}"), 0o644).unwrap();
        }
        let untraced = clock.now_ns() - t0;
        // Traced with a 20 µs stop cost (x2 per syscall).
        let tracer = StraceTracer::new(StraceConfig { stop_cost_ns: 20_000, record_lines: false });
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t1 = clock.now_ns();
        for i in 0..50 {
            t.creat(&format!("/b{i}"), 0o644).unwrap();
        }
        let traced = clock.now_ns() - t1;
        assert!(
            traced > untraced + 50 * 2 * 15_000,
            "traced={traced} untraced={untraced}: stops must add ≥30 µs per syscall"
        );
    }

    #[test]
    fn failed_syscalls_reported_with_errno() {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let tracer = StraceTracer::new(StraceConfig { stop_cost_ns: 0, record_lines: true });
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        let _ = t.unlink("/does-not-exist");
        let lines = tracer.lines();
        assert!(lines[0].ends_with("= -2"), "{lines:?}");
    }
}
