//! A Sysdig-style baseline tracer.
//!
//! Sysdig is also eBPF-based and non-blocking, but (per the paper's
//! comparison) it does **less in-kernel work** than DIO — no entry/exit
//! aggregation, no offset/file-tag enrichment — so its overhead is lower
//! (1.04× vs DIO's 1.37× in Table II). The flip side measured in §III-D:
//! it resolves file paths for far fewer events (45% unresolved vs ≤5%),
//! because fd→name resolution relies on a bounded thread/fd state table
//! maintained from the events it happens to capture.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dio_ebpf::{RingBuffer, RingStats};
use dio_kernel::{EnterEvent, ExitEvent, KernelInspect, SyscallProbe};
use dio_syscall::{Pid, SyscallKind, SyscallSet, Tid};

/// Configuration of the Sysdig cost/fidelity model.
#[derive(Debug, Clone, Copy)]
pub struct SysdigConfig {
    /// In-kernel cost per tracepoint fire (small: argument copy only).
    pub probe_cost_ns: u64,
    /// Capacity of the fd→name state table. Sysdig's real table is
    /// bounded and misses descriptors opened before the capture or evicted
    /// under churn; this drives the 45% unresolved-path figure.
    pub fd_table_capacity: usize,
    /// Ring-buffer slots per CPU (Sysdig defaults to smaller buffers than
    /// the paper configures for DIO).
    pub ring_slots_per_cpu: usize,
}

impl Default for SysdigConfig {
    fn default() -> Self {
        SysdigConfig { probe_cost_ns: 250, fd_table_capacity: 20, ring_slots_per_cpu: 2 * 1024 }
    }
}

/// One captured Sysdig event (entry and exit are *separate* events — no
/// kernel-side aggregation, per Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysdigEvent {
    /// Timestamp (ns).
    pub time_ns: u64,
    /// Direction: `>` enter, `<` exit (sysdig notation).
    pub enter: bool,
    /// Thread id.
    pub tid: Tid,
    /// Thread name.
    pub comm: String,
    /// Syscall name.
    pub syscall: SyscallKind,
    /// Return value (exit events only).
    pub ret: Option<i64>,
    /// Resolved file name, when the state table had the descriptor.
    pub fd_name: Option<String>,
    /// Whether the event referenced an fd at all.
    pub has_fd: bool,
}

fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// The Sysdig-like probe.
pub struct SysdigTracer {
    config: SysdigConfig,
    ring: RingBuffer<SysdigEvent>,
    /// Bounded fd→name table, learned from open events seen during the
    /// capture (FIFO eviction).
    fd_table: Mutex<FdTable>,
    /// Paths seen at `sys_enter` of open-family calls, per thread.
    pending_open: Mutex<HashMap<Tid, String>>,
    resolved: AtomicU64,
    unresolved: AtomicU64,
}

#[derive(Default)]
struct FdTable {
    map: HashMap<(Pid, i32), String>,
    order: std::collections::VecDeque<(Pid, i32)>,
}

impl std::fmt::Debug for SysdigTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SysdigTracer").field("ring", &self.ring.stats()).finish()
    }
}

impl SysdigTracer {
    /// Creates a tracer with `num_cpus` per-CPU buffers.
    pub fn new(config: SysdigConfig, num_cpus: u32) -> Arc<Self> {
        Arc::new(SysdigTracer {
            ring: RingBuffer::with_slots(num_cpus, config.ring_slots_per_cpu),
            config,
            fd_table: Mutex::new(FdTable::default()),
            pending_open: Mutex::new(HashMap::new()),
            resolved: AtomicU64::new(0),
            unresolved: AtomicU64::new(0),
        })
    }

    /// Drains captured events.
    pub fn drain(&self, max: usize) -> Vec<SysdigEvent> {
        self.ring.drain_all(max)
    }

    /// Ring-buffer counters.
    pub fn ring_stats(&self) -> RingStats {
        self.ring.stats()
    }

    /// Fraction of fd-bearing events whose path could not be resolved —
    /// the §III-D comparison metric (45% for Sysdig in the paper).
    pub fn unresolved_path_rate(&self) -> f64 {
        let r = self.resolved.load(Ordering::Relaxed);
        let u = self.unresolved.load(Ordering::Relaxed);
        if r + u == 0 {
            0.0
        } else {
            u as f64 / (r + u) as f64
        }
    }

    fn learn_fd(&self, pid: Pid, fd: i32, path: String) {
        let mut table = self.fd_table.lock();
        if table.map.len() >= self.config.fd_table_capacity && !table.map.contains_key(&(pid, fd)) {
            if let Some(evicted) = table.order.pop_front() {
                table.map.remove(&evicted);
            }
        }
        if table.map.insert((pid, fd), path).is_none() {
            table.order.push_back((pid, fd));
        }
    }

    fn resolve_fd(&self, pid: Pid, fd: i32) -> Option<String> {
        self.fd_table.lock().map.get(&(pid, fd)).cloned()
    }
}

impl SyscallProbe for SysdigTracer {
    fn kinds(&self) -> SyscallSet {
        SyscallSet::all()
    }

    fn on_enter(&self, _view: &dyn KernelInspect, event: &EnterEvent<'_>) {
        spin_ns(self.config.probe_cost_ns);
        let fd_name = if let Some(fd) = event.fd {
            let name = self.resolve_fd(event.pid, fd);
            if name.is_some() {
                self.resolved.fetch_add(1, Ordering::Relaxed);
            } else {
                self.unresolved.fetch_add(1, Ordering::Relaxed);
            }
            name
        } else {
            None
        };
        if matches!(event.kind, SyscallKind::Open | SyscallKind::Openat | SyscallKind::Creat) {
            if let Some(path) = event.path {
                self.pending_open.lock().insert(event.tid, path.to_string());
            }
        }
        self.ring.try_push(
            event.cpu,
            SysdigEvent {
                time_ns: event.time_ns,
                enter: true,
                tid: event.tid,
                comm: event.comm.to_string(),
                syscall: event.kind,
                ret: None,
                fd_name,
                has_fd: event.fd.is_some(),
            },
        );
    }

    fn on_exit(&self, _view: &dyn KernelInspect, event: &ExitEvent) {
        spin_ns(self.config.probe_cost_ns);
        let accepted = self.ring.try_push(
            event.cpu,
            SysdigEvent {
                time_ns: event.time_ns,
                enter: false,
                tid: event.tid,
                comm: String::new(),
                syscall: event.kind,
                ret: Some(event.ret),
                fd_name: None,
                has_fd: false,
            },
        );
        if matches!(event.kind, SyscallKind::Open | SyscallKind::Openat | SyscallKind::Creat) {
            if let Some(path) = self.pending_open.lock().remove(&event.tid) {
                // Sysdig reconstructs fd state from the events it captured:
                // if the open event was dropped at the buffer, the fd stays
                // unknown — the mechanism behind the paper's 45% figure.
                if event.ret >= 0 && accepted {
                    self.learn_fd(event.pid, event.ret as i32, path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::{DiskProfile, Kernel, OpenFlags};

    fn kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    #[test]
    fn emits_separate_enter_and_exit_events() {
        let k = kernel();
        let tracer = SysdigTracer::new(
            SysdigConfig { probe_cost_ns: 0, ..Default::default() },
            k.num_cpus(),
        );
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/f", 0o644).unwrap();
        let events = tracer.drain(10);
        assert_eq!(events.len(), 2, "no kernel-side aggregation");
        assert!(events.iter().any(|e| e.enter));
        assert!(events.iter().any(|e| !e.enter && e.ret == Some(3)));
    }

    #[test]
    fn resolves_fds_learned_from_captured_opens() {
        let k = kernel();
        let tracer = SysdigTracer::new(
            SysdigConfig { probe_cost_ns: 0, ..Default::default() },
            k.num_cpus(),
        );
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/known.txt", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"x").unwrap();
        let events = tracer.drain(100);
        let write_enter =
            events.iter().find(|e| e.enter && e.syscall == SyscallKind::Write).unwrap();
        assert_eq!(write_enter.fd_name.as_deref(), Some("/known.txt"));
        assert_eq!(tracer.unresolved_path_rate(), 0.0);
    }

    #[test]
    fn misses_fds_opened_before_attach() {
        let k = kernel();
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/early.txt", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        // Attach only now.
        let tracer = SysdigTracer::new(
            SysdigConfig { probe_cost_ns: 0, ..Default::default() },
            k.num_cpus(),
        );
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        t.write(fd, b"x").unwrap();
        let events = tracer.drain(100);
        let write_enter =
            events.iter().find(|e| e.enter && e.syscall == SyscallKind::Write).unwrap();
        assert_eq!(write_enter.fd_name, None);
        assert!(tracer.unresolved_path_rate() > 0.0);
    }

    #[test]
    fn bounded_fd_table_evicts_under_churn() {
        let k = kernel();
        let config = SysdigConfig { probe_cost_ns: 0, fd_table_capacity: 4, ..Default::default() };
        let tracer = SysdigTracer::new(config, k.num_cpus());
        k.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        // Open 16 files, keep them open, then touch the first one again.
        let mut fds = Vec::new();
        for i in 0..16 {
            fds.push(
                t.openat(&format!("/churn{i}"), OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap(),
            );
        }
        t.write(fds[0], b"x").unwrap();
        let events = tracer.drain(1000);
        let write_enter =
            events.iter().find(|e| e.enter && e.syscall == SyscallKind::Write).unwrap();
        assert_eq!(write_enter.fd_name, None, "entry for fd[0] was evicted");
        assert!(tracer.unresolved_path_rate() > 0.0);
    }
}
