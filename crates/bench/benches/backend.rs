//! Backend microbenchmarks: bulk ingestion vs batch size (the paper's
//! batching rationale), query latency, aggregations, and the file-path
//! correlation primitive.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dio_backend::{Aggregation, Index, Query, SearchRequest};
use serde_json::json;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(15)
}

fn event_doc(i: u64) -> serde_json::Value {
    let syscall = ["read", "write", "openat", "close"][(i % 4) as usize];
    json!({
        "session": "bench",
        "syscall": syscall,
        "class": "data",
        "pid": 1000 + (i % 4),
        "tid": 2000 + (i % 16),
        "proc_name": if i.is_multiple_of(3) { "db_bench" } else { "rocksdb:low0" },
        "time": 1_679_000_000_000_000_000u64 + i * 1_000,
        "ret_val": (i % 4096) as i64,
        "offset": i * 512,
        "file_tag": format!("7340032|{}|99", i % 64),
        "args": {"fd": 3, "count": 4096},
    })
}

fn bench_bulk_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_ingest");
    for batch in [1usize, 100, 1000] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || (Index::new("bench"), (0..batch as u64).map(event_doc).collect::<Vec<_>>()),
                |(index, docs)| index.bulk(docs),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn loaded_index(n: u64) -> Index {
    let index = Index::new("bench");
    index.bulk((0..n).map(event_doc).collect());
    index.refresh();
    index
}

fn bench_refresh(c: &mut Criterion) {
    // The deferred-indexing cost paid off the tracing path.
    c.bench_function("refresh_10k_docs", |b| {
        b.iter_batched(
            || {
                let index = Index::new("bench");
                index.bulk((0..10_000).map(event_doc).collect());
                index
            },
            |index| index.refresh(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_queries(c: &mut Criterion) {
    let index = loaded_index(20_000);
    let mut group = c.benchmark_group("query_20k_docs");
    group.bench_function("term", |b| {
        b.iter(|| index.count(&Query::term("syscall", "read")));
    });
    group.bench_function("range", |b| {
        b.iter(|| index.count(&Query::range("ret_val").gte(1000.0).lt(2000.0).build()));
    });
    group.bench_function("bool_composite", |b| {
        let q = Query::bool_query()
            .must(Query::term("proc_name", "db_bench"))
            .must(Query::term("syscall", "write"))
            .must_not(Query::term("ret_val", 0))
            .build();
        b.iter(|| index.count(&q));
    });
    group.finish();
}

fn bench_aggregations(c: &mut Criterion) {
    let index = loaded_index(20_000);
    let mut group = c.benchmark_group("agg_20k_docs");
    group.bench_function("terms_by_thread", |b| {
        let req = SearchRequest::match_all().size(0).agg("t", Aggregation::terms("proc_name", 32));
        b.iter(|| index.search(&req));
    });
    group.bench_function("fig4_date_histogram_x_terms", |b| {
        let req = SearchRequest::match_all().size(0).agg(
            "t",
            Aggregation::date_histogram("time", 1_000_000)
                .sub("threads", Aggregation::terms("proc_name", 32)),
        );
        b.iter(|| index.search(&req));
    });
    group.bench_function("percentiles_latency", |b| {
        let req = SearchRequest::match_all()
            .size(0)
            .agg("p", Aggregation::percentiles("ret_val", [50.0, 99.0]));
        b.iter(|| index.search(&req));
    });
    group.finish();
}

fn bench_path_correlation(c: &mut Criterion) {
    c.bench_function("path_correlation_5k_events", |b| {
        b.iter_batched(
            || {
                let index = Index::new("bench");
                let mut docs = Vec::new();
                for tag in 0..32u64 {
                    docs.push(json!({
                        "syscall": "openat",
                        "file_tag": format!("1|{tag}|9"),
                        "file_path": format!("/f{tag}"),
                    }));
                }
                for i in 0..5_000u64 {
                    docs.push(json!({
                        "syscall": "read",
                        "file_tag": format!("1|{}|9", i % 32),
                    }));
                }
                index.bulk(docs);
                index
            },
            |index| dio_correlate::correlate_paths(&index),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bulk_ingest, bench_refresh, bench_queries, bench_aggregations,
        bench_path_correlation
}
criterion_main!(benches);
