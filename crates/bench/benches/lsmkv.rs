//! LSM-store microbenchmarks on an instant disk: the substrate's own
//! costs, separated from the disk model.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dio_kernel::{DiskProfile, Kernel, Process};
use dio_lsmkv::{sstable, Db, LsmOptions};

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(15)
}

fn setup_db() -> (Kernel, Process, Arc<Db>) {
    let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
    let process = kernel.spawn_process("kv");
    let opts = LsmOptions { wal_sync_every: 0, ..LsmOptions::new("/db") };
    let db = Arc::new(Db::open(&process, opts).unwrap());
    (kernel, process, db)
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_put");
    group.throughput(Throughput::Elements(1));
    group.bench_function("400B_values", |b| {
        let (_k, process, db) = setup_db();
        let t = process.spawn_thread("client");
        let value = vec![7u8; 400];
        let mut i = 0u64;
        b.iter(|| {
            db.put(&t, format!("key{:012}", i % 100_000).as_bytes(), &value).unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_get");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hot_memtable", |b| {
        let (_k, process, db) = setup_db();
        let t = process.spawn_thread("client");
        for i in 0..500u64 {
            db.put(&t, format!("key{i:06}").as_bytes(), &[1u8; 100]).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            db.get(&t, format!("key{:06}", i % 500).as_bytes()).unwrap();
            i += 1;
        });
    });
    group.bench_function("from_sstables", |b| {
        let (_k, process, db) = setup_db();
        let t = process.spawn_thread("client");
        for i in 0..2_000u64 {
            db.put(&t, format!("key{i:06}").as_bytes(), &[1u8; 100]).unwrap();
        }
        db.flush_now(&t).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            db.get(&t, format!("key{:06}", (i * 137) % 2_000).as_bytes()).unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_sstable(c: &mut Criterion) {
    let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
        (0..2_000u64).map(|i| (format!("key{i:08}").into_bytes(), Some(vec![3u8; 200]))).collect();
    let mut group = c.benchmark_group("sstable");
    group.bench_function("write_2k_entries", |b| {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = kernel.spawn_process("sst").spawn_thread("sst");
        let mut n = 0u32;
        b.iter_batched(
            || {
                n += 1;
                format!("/t{n}.sst")
            },
            |path| sstable::write_sst(&t, &path, &entries, 10).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("point_get", |b| {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = kernel.spawn_process("sst").spawn_thread("sst");
        sstable::write_sst(&t, "/read.sst", &entries, 10).unwrap();
        let reader = sstable::SstReader::open(&t, "/read.sst").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key{:08}", (i * 613) % 2_000);
            reader.get(&t, key.as_bytes()).unwrap();
            i += 1;
        });
    });
    group.bench_function("bloom_negative_lookup", |b| {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = kernel.spawn_process("sst").spawn_thread("sst");
        sstable::write_sst(&t, "/bloom.sst", &entries, 10).unwrap();
        let reader = sstable::SstReader::open(&t, "/bloom.sst").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("absent{i}");
            reader.get(&t, key.as_bytes()).unwrap();
            i += 1;
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_put, bench_get, bench_sstable
}
criterion_main!(benches);
