//! Microbenchmarks of the per-CPU ring buffer — the kernel→user transport
//! whose sizing §III-D studies.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dio_ebpf::RingBuffer;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20)
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_push");
    group.throughput(Throughput::Elements(1));
    for slots in [1024usize, 65_536] {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            let ring: RingBuffer<u64> = RingBuffer::with_slots(4, slots);
            let mut i = 0u64;
            b.iter(|| {
                // Keep the buffer from saturating: drain every slot-full.
                if i % slots as u64 == slots as u64 - 1 {
                    ring.drain_all(usize::MAX);
                }
                ring.try_push((i % 4) as u32, i);
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_push_when_full(c: &mut Criterion) {
    // The overflow path must stay cheap: it runs inside the traced
    // application's syscall when the consumer lags.
    c.bench_function("ring_push_overflow", |b| {
        let ring: RingBuffer<u64> = RingBuffer::with_slots(1, 16);
        for i in 0..16 {
            ring.try_push(0, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            ring.try_push(0, i);
            i += 1;
        });
    });
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_drain_batch");
    for batch in [64usize, 1024] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let ring: RingBuffer<u64> = RingBuffer::with_slots(4, batch * 2);
            b.iter_batched(
                || {
                    for i in 0..batch as u64 {
                        ring.try_push((i % 4) as u32, i);
                    }
                },
                |()| ring.drain_all(batch),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_push, bench_push_when_full, bench_drain
}
criterion_main!(benches);
