//! Ablation benches for the tracer's design choices: per-syscall cost
//! untraced vs traced, with and without enrichment, and the in-kernel
//! filter evaluation cost (§II-B).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dio_ebpf::{FilterSpec, ProgramConfig, RingBuffer, RingConfig, TracerProgram};
use dio_kernel::{DiskProfile, Kernel, OpenFlags, SyscallProbe, ThreadCtx};
use dio_syscall::{Pid, SyscallKind};

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20)
}

fn instant_kernel() -> (Kernel, ThreadCtx, i32) {
    let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
    let t = kernel.spawn_process("bench").spawn_thread("bench");
    let fd = t.openat("/bench.dat", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
    t.write(fd, &[0u8; 8192]).unwrap();
    (kernel, t, fd)
}

fn attach_dio(kernel: &Kernel, config: ProgramConfig) -> Arc<TracerProgram> {
    let ring =
        Arc::new(RingBuffer::new(kernel.num_cpus(), RingConfig::with_bytes_per_cpu(8 << 20)));
    let prog = TracerProgram::new(config, ring).expect("verified filter");
    kernel.tracepoints().attach(Arc::clone(&prog) as Arc<dyn SyscallProbe>);
    prog
}

/// One pread64 per iteration; a drain keeps the ring from overflowing.
fn bench_syscall(
    c: &mut Criterion,
    name: &str,
    setup: impl Fn(&Kernel) -> Option<Arc<TracerProgram>>,
) {
    c.bench_function(name, |b| {
        let (kernel, t, fd) = instant_kernel();
        let prog = setup(&kernel);
        let mut buf = [0u8; 256];
        let mut i = 0u64;
        b.iter(|| {
            t.pread64(fd, &mut buf, (i % 16) * 256).unwrap();
            i += 1;
            if i.is_multiple_of(1024) {
                if let Some(p) = &prog {
                    p.ring().drain_all(usize::MAX);
                }
            }
        });
    });
}

fn bench_untraced(c: &mut Criterion) {
    bench_syscall(c, "syscall_untraced", |_| None);
}

fn bench_traced_enriched(c: &mut Criterion) {
    bench_syscall(c, "syscall_dio_enriched", |k| Some(attach_dio(k, ProgramConfig::default())));
}

fn bench_traced_no_enrich(c: &mut Criterion) {
    bench_syscall(c, "syscall_dio_no_enrich", |k| {
        Some(attach_dio(k, ProgramConfig { enrich: false, ..ProgramConfig::default() }))
    });
}

fn bench_traced_filtered_out(c: &mut Criterion) {
    // The filtered-out path: tracepoint enabled for another kind only,
    // so the pread costs exactly the untraced path (tracepoint disabled).
    bench_syscall(c, "syscall_dio_other_kind_filtered", |k| {
        Some(attach_dio(
            k,
            ProgramConfig {
                filter: FilterSpec::new().syscalls([SyscallKind::Mkdir]),
                ..ProgramConfig::default()
            },
        ))
    });
}

fn bench_filter_eval(c: &mut Criterion) {
    // Pure filter admission cost on a synthetic event.
    struct NullView;
    impl dio_kernel::KernelInspect for NullView {
        fn fd_info(&self, _: Pid, _: i32) -> Option<dio_kernel::FdInfo> {
            None
        }
        fn process_name(&self, _: Pid) -> Option<String> {
            None
        }
    }
    let filter = FilterSpec::new()
        .syscalls([SyscallKind::Read, SyscallKind::Write])
        .pids([Pid(7)])
        .path_prefix("/watched");
    let args = [dio_syscall::Arg::new("fd", 3i64)];
    let event = dio_kernel::EnterEvent {
        kind: SyscallKind::Read,
        pid: Pid(7),
        tid: dio_syscall::Tid(7),
        comm: "bench",
        cpu: 0,
        time_ns: 0,
        args: &args,
        path: Some("/watched/file"),
        fd: None,
    };
    c.bench_function("filter_admit", |b| {
        b.iter(|| std::hint::black_box(filter.admits(&NullView, &event)));
    });
}

fn bench_event_serialization(c: &mut Criterion) {
    // The user-space consumer's per-event work: RawEvent -> JSON document.
    let (kernel, t, fd) = instant_kernel();
    let prog = attach_dio(&kernel, ProgramConfig::default());
    let mut buf = [0u8; 64];
    t.pread64(fd, &mut buf, 0).unwrap();
    let raw = prog.ring().drain_all(1).pop().expect("one event");
    c.bench_function("event_to_document", |b| {
        b.iter(|| std::hint::black_box(raw.clone().into_event("bench").to_document()));
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_untraced, bench_traced_enriched, bench_traced_no_enrich,
        bench_traced_filtered_out, bench_filter_eval, bench_event_serialization
}
criterion_main!(benches);
