//! Ingest-throughput baseline for the persistent backend
//! (`results/BENCH_ingest.json`).
//!
//! Eight writer threads, each bulk-indexing into its own session index
//! (the tracer's concurrency shape: one index per traced session), over
//! four configurations:
//!
//! * `memory`          — the default in-memory [`DocStore`];
//! * `docstore_shard1` / `docstore_shard8` — the full persistent path
//!   (JSON serialization + inverted indexes + storage engine);
//! * `engine_shard1` / `engine_shard8` — the storage engine alone, with
//!   pre-serialized bodies, isolating what sharding buys: with one
//!   shard every thread serializes on a single mutex and segment file,
//!   with eight they append in parallel.
//!
//! The headline claim this artifact pins: the sharded engine sustains
//! **≥ 4×** the single-lock engine's ingest rate at 8 writer threads.
//! Sharding buys *parallelism*, so the gate scales with the cores the
//! machine actually has: on a ≥ 8-way box the full 4× is enforced; on
//! smaller boxes the floor drops to half the available parallelism
//! (a single-core runner can only show the convoy-overhead win, not a
//! wall-clock one — the JSON records `available_parallelism` so the
//! artifact is interpretable either way).

use std::sync::Arc;
use std::time::Instant;

use dio_backend::{DocStore, StorageConfig, StorageEngine};
use dio_bench::{format_duration_ns, write_json_result, write_result};
use dio_profile::{DfgMiner, ProfileConfig};
use dio_viz::Table;

const THREADS: usize = 8;

#[derive(Clone, Copy)]
struct Load {
    batches: usize,
    docs_per_batch: usize,
}

impl Load {
    fn total_docs(&self) -> usize {
        THREADS * self.batches * self.docs_per_batch
    }
}

fn body(thread: usize, batch: usize, k: usize) -> serde_json::Value {
    serde_json::json!({
        "syscall": "write",
        "proc_name": format!("writer{thread}"),
        "seq": batch * 1000 + k,
        "payload": "x".repeat(96),
    })
}

fn persist_config(shards: usize) -> StorageConfig {
    StorageConfig {
        shards,
        // Maintenance off and large segments: measure the append path,
        // not rotation/merge scheduling.
        auto_compact: false,
        ..StorageConfig::default()
    }
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dio-bench-ingest-{tag}-{}", std::process::id()))
}

/// One blocking GET against the bench's introspection server; the body
/// is drained and discarded (the point is the scrape's cost, not its
/// content).
fn scrape_once(addr: std::net::SocketAddr, path: &str) -> std::io::Result<usize> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")?;
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink)?;
    Ok(sink.len())
}

/// A fully event-shaped body (time axis, latency, pid/tid, file tag):
/// what the tracer's consumer actually ships, so the DFG miner does the
/// same per-doc work it does in a profiled session.
fn event_body(thread: usize, batch: usize, k: usize) -> serde_json::Value {
    let seq = (batch * 1000 + k) as u64;
    serde_json::json!({
        "syscall": if k % 8 == 7 { "fsync" } else { "write" },
        "time": seq * 1_000,
        "latency_ns": 700 + (k as u64 % 64) * 10,
        "pid": 100 + thread as u64,
        "tid": 100 + thread as u64,
        "proc_name": format!("writer{thread}"),
        "ret_val": 96,
        "file_tag": format!("8:1|{thread}|7"),
        "payload": "x".repeat(96),
    })
}

/// Full-path ingest of event-shaped docs, each session thread running
/// its own [`DfgMiner`] over every batch before it is bulk-indexed (the
/// exact shape a profiled tracer session runs: one miner per session,
/// observing on the consumer path). Returns (docs/sec, transitions
/// mined across all sessions).
fn run_docstore_events(store: &DocStore, profiled: bool, load: Load) -> (f64, u64) {
    let start = Instant::now();
    let transitions = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            let transitions = &transitions;
            scope.spawn(move || {
                let miner = profiled.then(|| DfgMiner::new(ProfileConfig::default()));
                let index = format!("dio-ing{t}");
                for b in 0..load.batches {
                    let docs: Vec<_> =
                        (0..load.docs_per_batch).map(|k| event_body(t, b, k)).collect();
                    if let Some(miner) = &miner {
                        miner.observe_batch(&docs);
                    }
                    store.bulk(&index, docs);
                }
                if let Some(miner) = &miner {
                    miner.finish();
                    transitions.fetch_add(
                        miner.snapshot().transitions,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            });
        }
    });
    (load.total_docs() as f64 / start.elapsed().as_secs_f64(), transitions.into_inner())
}

/// Full-path ingest through a [`DocStore`]: docs/sec over `load`.
fn run_docstore(store: &DocStore, load: Load) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = store.clone();
            scope.spawn(move || {
                let index = format!("dio-ing{t}");
                for b in 0..load.batches {
                    let docs = (0..load.docs_per_batch).map(|k| body(t, b, k)).collect();
                    store.bulk(&index, docs);
                }
            });
        }
    });
    load.total_docs() as f64 / start.elapsed().as_secs_f64()
}

/// Per-thread batches of (doc id, serialized body) pairs.
type PreparedBatches = Vec<Vec<Vec<(u64, Vec<u8>)>>>;

/// Engine-only ingest with pre-serialized bodies: docs/sec over `load`.
fn run_engine(engine: &Arc<StorageEngine>, load: Load) -> f64 {
    // Serialize outside the timed region: the engine's job starts at
    // bytes, and the JSON cost is identical in every mode anyway.
    let prepared: PreparedBatches = (0..THREADS)
        .map(|t| {
            (0..load.batches)
                .map(|b| {
                    (0..load.docs_per_batch)
                        .map(|k| {
                            let id = (b * load.docs_per_batch + k) as u64;
                            let bytes = serde_json::to_string(&body(t, b, k))
                                .expect("serialize")
                                .into_bytes();
                            (id, bytes)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, batches) in prepared.into_iter().enumerate() {
            let engine = Arc::clone(engine);
            scope.spawn(move || {
                let index = format!("dio-ing{t}");
                for batch in batches {
                    engine.append_puts(&index, batch).expect("append");
                }
            });
        }
    });
    load.total_docs() as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let load = if dio_bench::smoke_mode() {
        Load { batches: 10, docs_per_batch: 20 }
    } else {
        Load { batches: 150, docs_per_batch: 100 }
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The wall-clock speedup a single lock can lose to sharding is
    // bounded by how many appends can truly run at once.
    let speedup_target = if cores >= 8 { 4.0 } else { (cores as f64 / 2.0).max(1.0) };

    let run_start = Instant::now();
    let mut rows = Vec::new();
    let mut metrics = serde_json::Map::new();
    let mut record = |name: &str, docs_per_sec: f64, rows: &mut Vec<Vec<String>>| {
        eprintln!("  {name}: {docs_per_sec:.0} docs/s");
        rows.push(vec![name.to_string(), format!("{docs_per_sec:.0}")]);
        metrics.insert(format!("{name}_docs_per_sec"), serde_json::json!(docs_per_sec));
    };

    let memory = run_docstore(&DocStore::new(), load);
    record("memory", memory, &mut rows);

    let mut docstore_rates = Vec::new();
    for shards in [1usize, 8] {
        let dir = bench_dir(&format!("docstore{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DocStore::open_with(&dir, persist_config(shards)).expect("open store");
        let rate = run_docstore(&store, load);
        record(&format!("docstore_shard{shards}"), rate, &mut rows);
        docstore_rates.push(rate);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut engine_rates = Vec::new();
    let mut storage_report = None;
    for shards in [1usize, 8] {
        let dir = bench_dir(&format!("engine{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        let (engine, _) = StorageEngine::open(&dir, persist_config(shards)).expect("open engine");
        let rate = run_engine(&engine, load);
        record(&format!("engine_shard{shards}"), rate, &mut rows);
        engine_rates.push(rate);
        if shards == 8 {
            storage_report = Some(engine.report());
        }
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Storage-engine work done by the sharded run, so a throughput
    // regression can be attributed (more fsyncs? more seals?) from the
    // artifact alone.
    if let Some(report) = &storage_report {
        metrics.insert("storage_fsyncs".into(), serde_json::json!(report.fsyncs));
        metrics.insert("storage_bytes_appended".into(), serde_json::json!(report.bytes_appended));
        metrics.insert("storage_segments_sealed".into(), serde_json::json!(report.segments_sealed));
        metrics.insert("storage_compactions".into(), serde_json::json!(report.compactions));
        metrics.insert("storage_compacted_bytes".into(), serde_json::json!(report.compacted_bytes));
        metrics.insert("storage_dead_ratio".into(), serde_json::json!(report.dead_ratio()));
    }

    // Flight-recorder overhead on the hottest path: the sharded engine
    // run with span recording on vs off (best of `reps` to damp noise).
    // The recorder is always-on by design; this pins the cost of that
    // choice. `DIO_ENFORCE_FLIGHTREC_OVERHEAD=1` turns the <5% claim
    // into a hard gate (the CI overhead job sets it).
    let reps = if dio_bench::smoke_mode() { 1 } else { 3 };
    let best_rate = |enabled: bool, tag: &str| -> f64 {
        dio_telemetry::trace::recorder().set_enabled(enabled);
        let mut best = 0.0f64;
        for rep in 0..reps {
            let dir = bench_dir(&format!("flightrec-{tag}{rep}"));
            let _ = std::fs::remove_dir_all(&dir);
            let (engine, _) = StorageEngine::open(&dir, persist_config(8)).expect("open engine");
            best = best.max(run_engine(&engine, load));
            drop(engine);
            let _ = std::fs::remove_dir_all(&dir);
        }
        best
    };
    let rate_recording = best_rate(true, "on");
    let rate_disabled = best_rate(false, "off");
    dio_telemetry::trace::recorder().set_enabled(true);
    let flightrec_overhead_pct =
        ((rate_disabled - rate_recording) / rate_disabled * 100.0).max(0.0);
    eprintln!(
        "  flight recorder overhead: {flightrec_overhead_pct:.2}% \
         ({rate_recording:.0} recording vs {rate_disabled:.0} disabled docs/s)"
    );
    metrics.insert("flightrec_overhead_pct".into(), serde_json::json!(flightrec_overhead_pct));
    metrics.insert("flightrec_on_docs_per_sec".into(), serde_json::json!(rate_recording));
    metrics.insert("flightrec_off_docs_per_sec".into(), serde_json::json!(rate_disabled));

    // Scrape-under-load: the same full-path DocStore ingest with the
    // introspection server answering a tight /metrics + /api/storage
    // polling loop, vs unobserved (best of `reps`, like the recorder
    // gate above). `DIO_ENFORCE_SERVE_OVERHEAD=1` turns the <5% claim
    // into a hard gate (the CI serve-smoke job sets it).
    let serve_rate = |scraped: bool, tag: &str| -> f64 {
        let mut best = 0.0f64;
        for rep in 0..reps {
            let dir = bench_dir(&format!("serve-{tag}{rep}"));
            let _ = std::fs::remove_dir_all(&dir);
            let store = DocStore::open_with(&dir, persist_config(8)).expect("open store");
            let registry = Arc::new(dio_telemetry::MetricsRegistry::new());
            store.bind_telemetry(&registry);
            let state = dio_serve::ServeState {
                session: "bench-serve".to_string(),
                registry,
                backend: Arc::new(store.clone()),
                index_name: "dio-ing0".to_string(),
                telemetry_index: "dio-telemetry-bench-serve".to_string(),
                engine: None,
                profiler: None,
            };
            let server = dio_serve::serve("127.0.0.1:0", state).expect("bind server");
            let addr = server.addr();
            let stop_scraping = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let scraper = scraped.then(|| {
                let stop = Arc::clone(&stop_scraping);
                std::thread::spawn(move || {
                    let mut scrapes = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        for path in ["/metrics", "/api/storage"] {
                            let _ = scrape_once(addr, path);
                        }
                        scrapes += 1;
                    }
                    scrapes
                })
            });
            best = best.max(run_docstore(&store, load));
            stop_scraping.store(true, std::sync::atomic::Ordering::Release);
            if let Some(s) = scraper {
                let scrapes = s.join().expect("scraper ok");
                assert!(scrapes > 0, "scraper must have completed at least one round");
            }
            drop(server);
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }
        best
    };
    let rate_scraped = serve_rate(true, "on");
    let rate_unserved = serve_rate(false, "off");
    let serve_overhead_pct = ((rate_unserved - rate_scraped) / rate_unserved * 100.0).max(0.0);
    eprintln!(
        "  scrape-under-load overhead: {serve_overhead_pct:.2}% \
         ({rate_scraped:.0} scraped vs {rate_unserved:.0} unobserved docs/s)"
    );
    metrics.insert("serve_overhead_pct".into(), serde_json::json!(serve_overhead_pct));
    metrics.insert("serve_scraped_docs_per_sec".into(), serde_json::json!(rate_scraped));
    metrics.insert("serve_unobserved_docs_per_sec".into(), serde_json::json!(rate_unserved));

    // DFG mining overhead on the full ingest path: the same event-shaped
    // docs with each session thread's DfgMiner observing every batch
    // before it is indexed (the profiled-session shape: one miner per
    // session) vs sailing past the miner (best of `reps`, like the gates
    // above). `DIO_ENFORCE_DFG_OVERHEAD=1` turns the <5% claim into a
    // hard gate (the CI dfg job sets it).
    let dfg_rate = |profiled: bool, tag: &str| -> f64 {
        let mut best = 0.0f64;
        for rep in 0..reps {
            let dir = bench_dir(&format!("dfg-{tag}{rep}"));
            let _ = std::fs::remove_dir_all(&dir);
            let store = DocStore::open_with(&dir, persist_config(8)).expect("open store");
            let (rate, transitions) = run_docstore_events(&store, profiled, load);
            best = best.max(rate);
            if profiled {
                assert!(
                    transitions > 0,
                    "the profiled run must actually mine transitions, \
                     else the overhead number is vacuous"
                );
            }
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }
        best
    };
    let rate_profiled = dfg_rate(true, "on");
    let rate_unprofiled = dfg_rate(false, "off");
    let dfg_overhead_pct = ((rate_unprofiled - rate_profiled) / rate_unprofiled * 100.0).max(0.0);
    eprintln!(
        "  DFG mining overhead: {dfg_overhead_pct:.2}% \
         ({rate_profiled:.0} profiled vs {rate_unprofiled:.0} unprofiled docs/s)"
    );
    metrics.insert("dfg_overhead_pct".into(), serde_json::json!(dfg_overhead_pct));
    metrics.insert("dfg_on_docs_per_sec".into(), serde_json::json!(rate_profiled));
    metrics.insert("dfg_off_docs_per_sec".into(), serde_json::json!(rate_unprofiled));

    let engine_speedup = engine_rates[1] / engine_rates[0];
    let docstore_speedup = docstore_rates[1] / docstore_rates[0];
    let persist_overhead = docstore_rates[1] / memory;
    metrics.insert("engine_shard_speedup".into(), serde_json::json!(engine_speedup));
    metrics.insert("docstore_shard_speedup".into(), serde_json::json!(docstore_speedup));
    metrics.insert("persistent_vs_memory".into(), serde_json::json!(persist_overhead));
    metrics.insert("available_parallelism".into(), serde_json::json!(cores));
    metrics.insert("speedup_target".into(), serde_json::json!(speedup_target));

    let table = Table::from_rows(["mode", "docs/sec"], rows);
    let mut out = String::from("Ingest throughput, 8 writer threads x 1 session index each\n\n");
    out.push_str(&table.to_ascii());
    out.push_str(&format!(
        "\nengine sharding speedup (8 shards vs 1): {engine_speedup:.1}x \
         (target: >= {speedup_target:.1}x at {cores} cores; 4x on >= 8 cores)\n\
         full-path sharding speedup:              {docstore_speedup:.1}x\n\
         persistent vs in-memory full path:       {:.0}% of memory rate\n\
         flight recorder overhead (engine path):  {flightrec_overhead_pct:.2}%\n\
         scrape-under-load overhead (full path):  {serve_overhead_pct:.2}%\n\
         DFG mining overhead (full path):         {dfg_overhead_pct:.2}%\n\
         wall time: {}\n",
        persist_overhead * 100.0,
        format_duration_ns(run_start.elapsed().as_nanos() as u64)
    ));
    println!("{out}");
    write_result("BENCH_ingest.txt", &out);
    write_json_result(
        "BENCH_ingest.json",
        "bench_ingest",
        serde_json::json!({
            "threads": THREADS,
            "batches_per_thread": load.batches,
            "docs_per_batch": load.docs_per_batch,
            "payload_bytes": 96,
        }),
        serde_json::Value::Object(metrics),
    );

    if !dio_bench::smoke_mode() {
        assert!(
            engine_speedup >= speedup_target,
            "sharded engine must sustain >= {speedup_target:.1}x the single-lock ingest \
             rate at {THREADS} writer threads on {cores} cores, got {engine_speedup:.2}x \
             ({:.0} vs {:.0} docs/s)",
            engine_rates[1],
            engine_rates[0],
        );
        assert!(
            docstore_speedup > 1.0,
            "sharding must help the full path too, got {docstore_speedup:.2}x"
        );
    }
    if std::env::var("DIO_ENFORCE_FLIGHTREC_OVERHEAD").is_ok_and(|v| v == "1") {
        assert!(
            flightrec_overhead_pct < 5.0,
            "always-on flight recorder must cost < 5% engine ingest throughput, \
             measured {flightrec_overhead_pct:.2}% \
             ({rate_recording:.0} recording vs {rate_disabled:.0} disabled docs/s)"
        );
    }
    if std::env::var("DIO_ENFORCE_SERVE_OVERHEAD").is_ok_and(|v| v == "1") {
        assert!(
            serve_overhead_pct < 5.0,
            "a sustained /metrics scrape must cost < 5% full-path ingest throughput, \
             measured {serve_overhead_pct:.2}% \
             ({rate_scraped:.0} scraped vs {rate_unserved:.0} unobserved docs/s)"
        );
    }
    if std::env::var("DIO_ENFORCE_DFG_OVERHEAD").is_ok_and(|v| v == "1") {
        assert!(
            dfg_overhead_pct < 5.0,
            "streaming DFG mining must cost < 5% full-path ingest throughput, \
             measured {dfg_overhead_pct:.2}% \
             ({rate_profiled:.0} profiled vs {rate_unprofiled:.0} unprofiled docs/s)"
        );
    }
}
