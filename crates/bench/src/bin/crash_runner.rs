//! Crash-injection child process for the recovery test harness.
//!
//! Opens a persistent [`DocStore`] and replays the deterministic
//! workload of [`dio_bench::crash_schedule`], reporting progress over
//! stdout (`S <n>` before each step, `A <n>` once the store
//! acknowledged it, `DONE` if the whole schedule completes). The parent
//! test arms a kill point via `DIO_CRASH_POINT=<site>:<countdown>:<split>`
//! (see `dio_backend::storage::crash`), so somewhere mid-schedule this
//! process aborts with a torn write on disk — that is the point.
//!
//! Every line is explicitly flushed: `abort()` discards userspace
//! buffers, exactly like the crash it simulates, and an acknowledgement
//! that never reached the parent is treated as limbo (which is sound —
//! the write *is* durable, the parent just can't assert it).

use std::io::Write as _;

use dio_backend::DocStore;
use dio_bench::crash_schedule as cs;

fn say(line: &str) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{line}").expect("write stdout");
    out.flush().expect("flush stdout");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: crash_runner <store-dir> <seed> <steps>";
    let dir = args.next().expect(usage);
    let seed: u64 = args.next().expect(usage).parse().expect("seed is a u64");
    let steps: usize = args.next().expect(usage).parse().expect("steps is a usize");

    let sched = cs::schedule(seed, steps);
    let store = DocStore::open_with(&dir, cs::crash_config()).expect("open store");

    for (n, step) in sched.iter().enumerate() {
        say(&format!("S {n}"));
        match step {
            cs::Step::Put { index, docs } => {
                let bodies = docs.iter().map(|(_, b)| b.clone()).collect();
                let ids = store.bulk(index, bodies);
                let predicted: Vec<u64> = docs.iter().map(|(id, _)| *id).collect();
                assert_eq!(ids, predicted, "id assignment must match the schedule");
            }
            cs::Step::Delete { index, doc_id } => {
                assert!(store.index(index).delete(*doc_id), "victim {index}/{doc_id} existed");
            }
            cs::Step::Compact => store.compact_now().expect("compact"),
            cs::Step::Flush => store.flush().expect("flush"),
        }
        say(&format!("A {n}"));
    }
    say("DONE");
}
