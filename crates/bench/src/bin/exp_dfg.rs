//! exp_dfg — streaming directly-follows-graph mining over the two
//! case-study workloads.
//!
//! Replays the Fig. 2 Fluent Bit data-loss scenario and the Fig. 3
//! RocksDB contention run with the DFG profiler riding the tracer, then
//! exports the mined graphs (DOT artifacts + machine-readable JSON) and
//! checks the causal story end to end: both workloads' alerts must carry
//! critical-edge attribution blocks naming a transition between
//! data-path syscalls, and the mined graphs must reflect each workload's
//! signature access pattern.

use dio_core::{
    to_dot, to_json, DfgSnapshot, DiagnoseConfig, Dio, ProfileConfig, SyscallKind, TracerConfig,
};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

use dio_bench::rocksdb_run::{run_rocksdb, RocksdbRunConfig, TracingSetup};

/// Same phase gap exp_fig2 uses on the simulated time axis.
const GAP_NS: u64 = 20_000_000;

/// Every attributed critical edge must connect two syscalls the traced
/// workload actually issues — i.e. both endpoints parse as tracepoint
/// names, not placeholder strings.
fn assert_traced_edge(attribution: &serde_json::Value) -> String {
    let edge = attribution["edge"].as_str().expect("attribution names an edge").to_string();
    let (from, to) = edge.split_once("->").expect("edge is a transition");
    assert!(from.parse::<SyscallKind>().is_ok(), "edge source {from} is a traced syscall");
    assert!(to.parse::<SyscallKind>().is_ok(), "edge target {to} is a traced syscall");
    assert!(
        attribution["transitions"].as_u64().unwrap_or(0) > 0,
        "attribution backed by observed transitions: {attribution}"
    );
    edge
}

/// One graph's headline numbers for the JSON result.
fn graph_metrics(dfg: &DfgSnapshot) -> serde_json::Value {
    let busiest = dfg.global.edges.iter().max_by_key(|e| e.count);
    serde_json::json!({
        "events": dfg.events,
        "transitions": dfg.transitions,
        "nodes": dfg.global.nodes.len(),
        "edges": dfg.global.edges.len(),
        "evicted_edges": dfg.global.evicted_edges,
        "phase_shifts": dfg.phase_shifts,
        "process_graphs": dfg.processes.len(),
        "file_tag_graphs": dfg.tags.len(),
        "busiest_edge": busiest.map(|e| e.label()),
        "busiest_edge_count": busiest.map(|e| e.count),
    })
}

fn main() {
    // ---------------------------------------- Fig. 2: data-loss workload
    let dio = Dio::new();
    let session = dio.trace(
        TracerConfig::new("dfg-fig2")
            .diagnose(DiagnoseConfig::default())
            .profile(ProfileConfig::default()),
    );
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", GAP_NS)
        .expect("scenario replays cleanly");
    let fig2 = session.stop();
    let fig2_dfg = fig2.trace.dfg.expect("profiling enabled");
    assert!(fig2_dfg.transitions > 0, "fig2 run must mine transitions");
    assert!(!fig2_dfg.global.edges.is_empty(), "fig2 run must mine edges");

    // The buggy tailer's verdicts carry attribution naming a transition
    // between the workload's data-path syscalls.
    let attributed: Vec<(&str, String)> = fig2
        .trace
        .alerts
        .iter()
        .filter_map(|a| a.attribution.as_ref().map(|attr| (a.detector, assert_traced_edge(attr))))
        .collect();
    assert!(!attributed.is_empty(), "fig2 data-loss alerts must be attributed");

    // The per-file-tag graphs separate the two /app.log generations the
    // paper's file-tag design distinguishes.
    assert_eq!(
        fig2_dfg.tags.len(),
        2,
        "two file-tag generations mined, got {:?}",
        fig2_dfg.tags.keys()
    );

    // --------------------------------------- Fig. 3: contention workload
    let base = if dio_bench::smoke_mode() {
        RocksdbRunConfig::smoke()
    } else {
        // The DFG story doesn't need the full Fig. 3 duration; a third of
        // the ops still drives compaction contention and keeps exp_dfg fast.
        RocksdbRunConfig { ops_per_thread: 4_000, ..RocksdbRunConfig::default() }
    };
    let config = RocksdbRunConfig { diagnose: true, profile: true, ..base };
    let result = run_rocksdb(TracingSetup::Dio, &config);
    let (summary, _backend) = result.dio.expect("dio outputs");
    let fig3_dfg = summary.dfg.expect("profiling enabled");
    assert!(fig3_dfg.transitions > 0, "fig3 run must mine transitions");
    let fig3_attributed: Vec<(&str, String)> = summary
        .alerts
        .iter()
        .filter_map(|a| a.attribution.as_ref().map(|attr| (a.detector, assert_traced_edge(attr))))
        .collect();
    if !dio_bench::smoke_mode() {
        assert!(
            !fig3_attributed.is_empty(),
            "fig3 contention alerts must be attributed, alerts: {:?}",
            summary.alerts
        );
    }

    // ------------------------------------------------- exported artifacts
    let fig2_dot = to_dot(&fig2_dfg.global, "fig2 fluentbit data loss");
    let fig3_dot = to_dot(&fig3_dfg.global, "fig3 rocksdb contention");
    dio_bench::write_result("exp_dfg_fig2.dot", &fig2_dot);
    dio_bench::write_result("exp_dfg_fig3.dot", &fig3_dot);

    let mut out = String::from("EXP DFG: directly-follows graphs of the case-study workloads\n\n");
    out.push_str(&format!(
        "fig2 (fluentbit v1.4.0): {} events, {} transitions, {} edges, {} file-tag graphs\n",
        fig2_dfg.events,
        fig2_dfg.transitions,
        fig2_dfg.global.edges.len(),
        fig2_dfg.tags.len(),
    ));
    for (detector, edge) in &attributed {
        out.push_str(&format!("  alert {detector} attributed to critical edge {edge}\n"));
    }
    out.push_str(&format!(
        "\nfig3 (rocksdb ycsb-a): {} events, {} transitions, {} edges, {} process graphs\n",
        fig3_dfg.events,
        fig3_dfg.transitions,
        fig3_dfg.global.edges.len(),
        fig3_dfg.processes.len(),
    ));
    for (detector, edge) in &fig3_attributed {
        out.push_str(&format!("  alert {detector} attributed to critical edge {edge}\n"));
    }
    out.push('\n');
    out.push_str(&dio_viz::render_dfg_panel(&to_json(&fig2_dfg)));
    println!("{out}");
    dio_bench::write_result("exp_dfg.txt", &out);

    dio_bench::write_json_result(
        "exp_dfg.json",
        "exp_dfg",
        serde_json::json!({
            "fig2_workload": "fluentbit_issue_1875_v1_4_0",
            "fig2_gap_ns": GAP_NS,
            "fig3": config.params_json(),
        }),
        serde_json::json!({
            "fig2": graph_metrics(&fig2_dfg),
            "fig2_attributed_alerts": attributed.len(),
            "fig2_critical_edges": attributed.iter().map(|(_, e)| e).collect::<Vec<_>>(),
            "fig3": graph_metrics(&fig3_dfg),
            "fig3_attributed_alerts": fig3_attributed.len(),
            "fig3_critical_edges": fig3_attributed.iter().map(|(_, e)| e).collect::<Vec<_>>(),
        }),
    );
    println!(
        "\nDFG mining reproduced both case studies: {} fig2 + {} fig3 attributed alerts.",
        attributed.len(),
        fig3_attributed.len()
    );
}
