//! §III-D "I/O events handling" — ring-buffer discards and path-resolution
//! quality.
//!
//! Two measurements:
//!
//! 1. **Discard rate vs ring-buffer size.** The paper configures 256 MiB
//!    per CPU and still discards 3.5% of 549 M events on the I/O-intensive
//!    RocksDB run. The reproduction sweeps the (scaled) buffer size and
//!    shows the same regime: small buffers discard heavily, adequate ones
//!    a few percent, large ones nothing.
//! 2. **Unresolved file paths, DIO vs Sysdig.** Paper: DIO fails to
//!    resolve paths for ≤5% of events; Sysdig for ~45%.

use dio_bench::rocksdb_run::{data_path_syscalls, run_rocksdb, RocksdbRunConfig, TracingSetup};
use dio_bench::{write_json_result, write_result};
use dio_core::correlate_paths;
use dio_ebpf::{RingConfig, RingStats};
use dio_kernel::Kernel;
use dio_lsmkv::{Db, LsmOptions};
use dio_tracer::{Tracer, TracerConfig};
use dio_viz::Table;

/// Runs the workload with a DIO tracer whose consumer is throttled, so the
/// per-CPU buffers actually fill (the paper's consumers lag behind a 549 M
/// event stream; the scaled run needs an artificially slow consumer to
/// reach the same regime).
fn run_with_ring(slots_per_cpu: usize, config: &RocksdbRunConfig) -> (u64, u64, f64, RingStats) {
    let kernel =
        Kernel::builder().num_cpus(4).root_disk(dio_bench::rocksdb_run::contended_disk()).build();
    let process = kernel.spawn_process("db_bench");
    let db = std::sync::Arc::new(
        Db::open(&process, LsmOptions::benchmark_profile("/db")).expect("open store"),
    );
    let bench = dio_dbbench::BenchConfig {
        workload: dio_dbbench::YcsbWorkload::A,
        client_threads: config.client_threads,
        records: config.records,
        value_size: config.value_size,
        ops_per_thread: config.ops_per_thread,
        max_duration: None,
        window_ns: config.window_ns,
        key_dist: dio_dbbench::KeyDistribution::Zipfian { theta: 0.99 },
        seed: config.seed,
        scan_limit: 50,
    };
    dio_dbbench::load_phase(&db, &process, &bench, 4).expect("load");

    let backend = dio_backend::DocStore::new();
    // The paper's consumers lag behind a 549M-event stream; the scaled run
    // paces the consumer (small drains, 4 ms polls) to reach the regime
    // where bursts overflow the per-CPU buffers.
    let tracer_config = TracerConfig::new("discard")
        .syscalls(data_path_syscalls())
        .ring(RingConfig { bytes_per_cpu: (slots_per_cpu as u64) * 512, est_event_bytes: 512 })
        .drain_batch(64)
        .poll_interval(std::time::Duration::from_millis(20));
    let tracer = Tracer::attach(tracer_config, &kernel, backend.clone());
    dio_dbbench::run(&db, &process, &bench);
    let closer = process.spawn_thread("closer");
    db.shutdown(&closer).expect("shutdown");
    let ring_stats = tracer.ring_stats();
    let summary = tracer.stop();
    let report = correlate_paths(&backend.index("dio-discard"));
    (summary.events_stored, summary.events_dropped, report.unresolved_rate(), ring_stats)
}

fn main() {
    let config = if dio_bench::smoke_mode() {
        RocksdbRunConfig::smoke()
    } else {
        RocksdbRunConfig { ops_per_thread: 3_000, ..RocksdbRunConfig::default() }
    };

    // --- 1. discard-rate sweep ---
    let sweep: &[(usize, &str)] = &[
        (1 << 8, "128 KiB/cpu"),
        (1 << 10, "0.5 MiB/cpu"),
        (1 << 12, "2 MiB/cpu"),
        (1 << 15, "16 MiB/cpu"),
    ];
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    let mut sweep_stats: Vec<RingStats> = Vec::new();
    for &(slots, label) in sweep {
        let (stored, dropped, _, ring_stats) = run_with_ring(slots, &config);
        let rate = dropped as f64 / (stored + dropped).max(1) as f64;
        rates.push(rate);
        eprintln!(
            "  ring {label}: stored={stored} dropped={dropped} ({:.2}%) skew={:.2}pp",
            rate * 100.0,
            ring_stats.drop_skew() * 100.0
        );
        rows.push(vec![
            label.to_string(),
            stored.to_string(),
            dropped.to_string(),
            format!("{:.2}%", rate * 100.0),
            format!("{:.1}pp", ring_stats.drop_skew() * 100.0),
        ]);
        sweep_stats.push(ring_stats);
    }
    let sweep_table = Table::from_rows(
        ["ring buffer", "events stored", "events dropped", "discard rate", "per-CPU skew"],
        rows,
    );

    // Per-CPU breakdown of the most drop-prone configuration: drops are NOT
    // uniform across CPUs — the CPU hosting the busiest producer threads
    // overflows its buffer first.
    let worst = &sweep_stats[0];
    let per_cpu_table = Table::from_rows(
        ["cpu", "pushed", "dropped", "drop rate", "occupancy HWM"],
        worst
            .per_cpu
            .iter()
            .map(|c| {
                vec![
                    c.cpu.to_string(),
                    c.pushed.to_string(),
                    c.dropped.to_string(),
                    format!("{:.2}%", c.drop_rate() * 100.0),
                    c.occupancy_hwm.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- 2. unresolved paths: DIO vs sysdig ---
    let dio_result = run_rocksdb(TracingSetup::Dio, &config);
    let (_, backend) = dio_result.dio.expect("dio outputs");
    let dio_unresolved = correlate_paths(&backend.index("dio-rocksdb")).unresolved_rate();
    let sysdig_result = run_rocksdb(TracingSetup::Sysdig, &config);
    let sysdig_unresolved = sysdig_result.sysdig_unresolved.expect("sysdig metric");

    let mut out = String::from("SECTION III-D: I/O events handling\n\n");
    out.push_str("Discard rate vs per-CPU ring-buffer size (throttled consumer):\n");
    out.push_str(&sweep_table.to_ascii());
    out.push_str("\npaper: 3.5% of 549M syscalls discarded at 256 MiB/CPU on the 5-hour run\n");
    out.push_str(&format!(
        "measured: discard rate falls from {:.1}% to {:.1}% as the buffer grows\n\n",
        rates[0] * 100.0,
        rates.last().unwrap() * 100.0
    ));
    out.push_str(&format!("Per-CPU drops at the smallest ring ({}):\n", sweep[0].1));
    out.push_str(&per_cpu_table.to_ascii());
    out.push_str(&format!(
        "drop skew (max - min per-CPU drop rate): {:.1}pp\n\n",
        worst.drop_skew() * 100.0
    ));
    out.push_str("Unresolved file paths after correlation:\n");
    out.push_str(&format!("  DIO    : {:.1}% of events (paper: <= 5%)\n", dio_unresolved * 100.0));
    out.push_str(&format!(
        "  sysdig : {:.1}% of fd-bearing events (paper: 45%)\n",
        sysdig_unresolved * 100.0
    ));
    println!("{out}");
    write_result("discard_rates.txt", &out);
    let mut params = config.params_json();
    params["sweep_slots_per_cpu"] =
        serde_json::json!(sweep.iter().map(|&(s, _)| s).collect::<Vec<_>>());
    write_json_result(
        "discard_rates.json",
        "exp_discard",
        params,
        serde_json::json!({
            "discard_rates": rates.clone(),
            "sweep": sweep
                .iter()
                .zip(&sweep_stats)
                .map(|(&(slots, _), s)| {
                    serde_json::json!({
                        "slots_per_cpu": slots,
                        "pushed": s.pushed,
                        "dropped": s.dropped,
                        "drop_rate": s.drop_rate(),
                        "drop_skew": s.drop_skew(),
                        "occupancy_hwm": s.occupancy_hwm,
                        "per_cpu": s.per_cpu,
                    })
                })
                .collect::<Vec<_>>(),
            "dio_unresolved_rate": dio_unresolved,
            "sysdig_unresolved_rate": sysdig_unresolved,
        }),
    );

    if !dio_bench::smoke_mode() {
        assert!(
            rates.windows(2).all(|w| w[0] >= w[1]),
            "discard rate must not increase with buffer size: {rates:?}"
        );
        assert!(rates[0] > 0.01, "the smallest buffer must actually discard: {rates:?}");
        assert!(
            dio_unresolved <= 0.05,
            "DIO unresolved paths {:.3} must stay <= 5%",
            dio_unresolved
        );
        assert!(
            sysdig_unresolved > dio_unresolved + 0.10,
            "sysdig must resolve far fewer paths than DIO ({:.3} vs {:.3})",
            sysdig_unresolved,
            dio_unresolved
        );
    }
}
