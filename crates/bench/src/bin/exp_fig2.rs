//! Fig. 2 — the Fluent Bit data-loss case study (§III-B).
//!
//! Replays the issue #1875 script against the buggy (v1.4.0) and fixed
//! (v2.0.5) tail plugins, traced by DIO. Renders the Fig. 2a/2b tabular
//! visualizations from the backend, runs the automated stale-offset
//! analysis, and checks the trace exhibits exactly the paper's pattern.

use dio_core::{
    dashboards, detect_data_loss, render_alert_history, Alert, AlertKind, DiagnoseConfig, Dio,
    ProfileConfig, Query, SearchRequest, SortOrder, TracerConfig,
};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

/// Phase gap on the simulated time axis (the paper's table shows
/// multi-second gaps between client writes and tailer reads).
const GAP_NS: u64 = 20_000_000;

/// Polls the live engine until `pred` holds (or ~2 s elapse) — the
/// consumer thread taps events asynchronously, so the verdict needs a
/// moment to materialize *during* the trace.
fn await_live(engine: &dio_core::DiagnosisEngine, pred: impl Fn(&[Alert]) -> bool) -> Vec<Alert> {
    for _ in 0..1_000 {
        let alerts = engine.alerts();
        if pred(&alerts) {
            return alerts;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    engine.alerts()
}

fn is_data_loss(a: &Alert) -> bool {
    matches!(a.kind, AlertKind::DataLoss | AlertKind::StaleOffsetResume)
}

fn run_version(version: FluentBitVersion, fig: &str) -> (String, serde_json::Value, Vec<Alert>) {
    let dio = Dio::new();
    let session_name = format!("fluentbit-{fig}");
    // The paper filters on the two applications' processes; our kernel
    // only runs those two, so the full syscall set is equivalent. The
    // streaming diagnosis engine rides along to raise the Fig. 2a verdict
    // live, while the trace is still running; the DFG profiler rides
    // along too, so that verdict names its critical syscall transition.
    let session = dio.trace(
        TracerConfig::new(&session_name)
            .diagnose(DiagnoseConfig::default())
            .profile(ProfileConfig::default()),
    );
    let outcome = run_issue_1875(dio.kernel(), version, "/app.log", GAP_NS)
        .expect("scenario replays cleanly");

    // Live verdict, BEFORE tracer teardown: the buggy version must raise a
    // data-loss alert while the session is still attached; the fixed one
    // must stay quiet (we wait for its validated offset-0 restart instead,
    // proving the detector did inspect the same reads).
    let engine = session.diagnosis().expect("diagnosis enabled");
    let live_alerts = match version {
        FluentBitVersion::V1_4_0 => await_live(&engine, |a| a.iter().any(is_data_loss)),
        FluentBitVersion::V2_0_5 => await_live(&engine, |_| engine.validated_restarts() >= 1),
    };
    let live_data_loss = live_alerts.iter().filter(|a| is_data_loss(a)).count();
    match version {
        FluentBitVersion::V1_4_0 => {
            assert!(
                live_data_loss >= 1,
                "v1.4.0 must raise a live data-loss alert before teardown, got {live_alerts:?}"
            );
            // Every data-loss verdict must carry a DFG attribution block
            // naming the critical syscall transition of the alert window.
            for alert in live_alerts.iter().filter(|a| is_data_loss(a)) {
                let attribution =
                    alert.attribution.as_ref().expect("data-loss alert carries attribution");
                let edge = attribution["edge"].as_str().expect("attribution names an edge");
                assert!(edge.contains("->"), "edge is a transition: {edge}");
                assert!(
                    attribution["transitions"].as_u64().unwrap_or(0) > 0,
                    "attribution backed by observed transitions: {attribution}"
                );
            }
        }
        FluentBitVersion::V2_0_5 => {
            assert_eq!(live_data_loss, 0, "v2.0.5 must stay clean, got {live_alerts:?}");
            assert!(engine.validated_restarts() >= 1, "offset-0 restart must be validated");
        }
    }

    let report = session.stop();
    assert_eq!(
        report.trace.alerts.iter().filter(|a| is_data_loss(a)).count(),
        live_data_loss,
        "teardown must not add or lose data-loss verdicts"
    );

    let index = dio.session_index(&session_name).expect("session stored");
    // The Fig. 2 table shows the data-path syscalls of both processes.
    let query = Query::terms(
        "syscall",
        ["openat", "open", "creat", "write", "read", "lseek", "close", "unlink"],
    );
    let rendered = dashboards::syscall_table(query.clone()).render(&index);

    let mut out = format!(
        "FIG. 2{}: Fluent Bit {} — {}\n\n",
        fig,
        match version {
            FluentBitVersion::V1_4_0 => "v1.4.0",
            FluentBitVersion::V2_0_5 => "v2.0.5",
        },
        match version {
            FluentBitVersion::V1_4_0 => "erroneous access pattern (data loss)",
            FluentBitVersion::V2_0_5 => "correct access pattern (fixed)",
        }
    );
    out.push_str(&rendered);
    out.push_str(&format!(
        "\nclient wrote {} bytes; tailer consumed {} bytes; lost {} bytes\n",
        outcome.bytes_written,
        outcome.bytes_consumed,
        outcome.bytes_lost()
    ));
    out.push_str(&format!(
        "trace: {} events stored, {} dropped; paths resolved for all but {} events\n",
        report.trace.events_stored,
        report.trace.events_dropped,
        report.correlation.events_unresolved
    ));

    // Automated diagnosis.
    let incidents = detect_data_loss(&index);
    match version {
        FluentBitVersion::V1_4_0 => {
            assert_eq!(incidents.len(), 1, "the buggy version must be flagged");
            let inc = &incidents[0];
            out.push_str(&format!(
                "\nDATA-LOSS DETECTED: {} read {} from stale offset {} (prev generation {}), {} bytes lost\n",
                inc.reader,
                inc.path.as_deref().unwrap_or("?"),
                inc.stale_offset,
                inc.previous_generation,
                inc.bytes_at_risk
            ));
            assert_eq!(outcome.bytes_lost(), 16, "paper: the 16 new bytes are lost");
            assert_eq!(inc.stale_offset, 26, "paper: read resumes at offset 26");

            // Verify the exact Fig. 2a signature from the stored events:
            // the second generation's first read is at offset 26, ret 0.
            let second_gen_reads = index.search(
                &SearchRequest::new(
                    Query::bool_query()
                        .must(Query::term("syscall", "read"))
                        .must(Query::term("offset", 26))
                        .must(Query::term("ret_val", 0))
                        .build(),
                )
                .sort_by("time", SortOrder::Asc),
            );
            assert!(second_gen_reads.total >= 1, "read@26 returning 0 must appear in the trace");
        }
        FluentBitVersion::V2_0_5 => {
            assert!(incidents.is_empty(), "the fixed version must pass");
            out.push_str("\nNO DATA LOSS: fixed version reads the new file from offset 0\n");
            assert_eq!(outcome.bytes_lost(), 0);
            // Fig. 2b signature: a read at offset 0 returning the 16 bytes.
            let fresh_read = index.count(
                &Query::bool_query()
                    .must(Query::term("syscall", "read"))
                    .must(Query::term("offset", 0))
                    .must(Query::term("ret_val", 16))
                    .build(),
            );
            assert!(fresh_read >= 1, "read@0 returning 16 must appear in the trace");
        }
    }

    // Both generations share dev|ino but differ in first-access timestamp
    // (the file-tag design the paper highlights).
    let tags: std::collections::HashSet<String> = index
        .search(&SearchRequest::new(Query::exists("file_tag")).size(usize::MAX))
        .hits
        .iter()
        .filter_map(|h| h.source["file_tag"].as_str().map(str::to_string))
        .collect();
    let tags: Vec<dio_core::FileTag> = tags.iter().map(|t| t.parse().unwrap()).collect();
    assert_eq!(tags.len(), 2, "two file-tag generations, got {tags:?}");
    assert_eq!(tags[0].dev, tags[1].dev);
    assert_eq!(tags[0].ino, tags[1].ino, "inode number reused");
    assert_ne!(tags[0].first_access_ns, tags[1].first_access_ns);
    out.push_str(&format!(
        "file tags: generations {} and {} share dev|ino, differ in timestamp\n",
        tags[0], tags[1]
    ));

    // The live verdict must agree with the offline algorithm over the
    // stored trace.
    assert_eq!(
        live_data_loss >= 1,
        !incidents.is_empty(),
        "streaming and offline data-loss verdicts diverge"
    );
    out.push('\n');
    out.push_str(&render_alert_history(&report.trace.alerts));

    let diagnosis = report.trace.diagnosis.expect("engine stats in summary");
    let metrics = serde_json::json!({
        "bytes_written": outcome.bytes_written,
        "bytes_consumed": outcome.bytes_consumed,
        "bytes_lost": outcome.bytes_lost(),
        "events_stored": report.trace.events_stored,
        "events_dropped": report.trace.events_dropped,
        "events_unresolved": report.correlation.events_unresolved,
        "data_loss_incidents": incidents.len(),
        "stale_offset": incidents.first().map(|i| i.stale_offset),
        "file_tag_generations": tags.len(),
        "live_verdict": {
            "data_loss_detected": live_data_loss >= 1,
            "detected_before_teardown": true,
            "attributed_alerts":
                report.trace.alerts.iter().filter(|a| a.attribution.is_some()).count(),
            "alerts_raised": report.trace.alerts.len(),
            "validated_offset0_restarts": engine.validated_restarts(),
            "events_observed": diagnosis.observed,
            "events_evaluated": diagnosis.evaluated,
        },
    });
    (out, metrics, report.trace.alerts)
}

fn main() {
    let (fig2a, metrics_a, alerts_a) = run_version(FluentBitVersion::V1_4_0, "a");
    let (fig2b, metrics_b, alerts_b) = run_version(FluentBitVersion::V2_0_5, "b");
    let combined = format!("{fig2a}\n{}\n{fig2b}", "=".repeat(100));
    println!("{combined}");
    dio_bench::write_result("fig2_fluentbit.txt", &combined);
    dio_bench::write_json_result(
        "fig2_fluentbit.json",
        "exp_fig2",
        serde_json::json!({
            "workload": "fluentbit_issue_1875",
            "log_path": "/app.log",
            "gap_ns": GAP_NS,
        }),
        serde_json::json!({
            "v1_4_0": metrics_a,
            "v2_0_5": metrics_b,
        }),
    );
    dio_bench::write_json_result(
        "fig2_alerts.json",
        "exp_fig2",
        serde_json::json!({ "workload": "fluentbit_issue_1875" }),
        serde_json::json!({
            "v1_4_0": alerts_a.iter().map(Alert::to_document).collect::<Vec<_>>(),
            "v2_0_5": alerts_b.iter().map(Alert::to_document).collect::<Vec<_>>(),
        }),
    );
    println!(
        "\nFig. 2 reproduced: v1.4.0 loses 16 bytes at stale offset 26 (flagged live); v2.0.5 reads from 0."
    );
}
