//! Fig. 4 — syscalls issued by RocksDB over time, aggregated by thread
//! name, traced by DIO (§III-C).
//!
//! The same workload as Fig. 3, but observed through DIO configured to
//! capture only the data-path syscalls. The dashboard shows client
//! (`db_bench`) vs compaction (`rocksdb:lowX`) vs flush (`rocksdb:high0`)
//! activity per window, and the automated contention analysis flags the
//! intervals where many compaction threads submit I/O while client
//! syscalls dip — the paper's red boxes.

use dio_backend::Query;
use dio_bench::rocksdb_run::{run_rocksdb, RocksdbRunConfig, TracingSetup};
use dio_core::{detect_contention, ContentionConfig};
use dio_viz::dashboards;

fn main() {
    let config = if dio_bench::smoke_mode() {
        RocksdbRunConfig::smoke()
    } else {
        RocksdbRunConfig::default()
    };
    let result = run_rocksdb(TracingSetup::Dio, &config);
    let (summary, backend) = result.dio.expect("DIO outputs present");
    let index = backend.index("dio-rocksdb");

    let window_ns = config.window_ns;
    let dashboard = dashboards::syscalls_over_time(Query::MatchAll, window_ns);
    let rendered = dashboard.render(&index);

    // The paper flags intervals with >=5 active compaction threads; the
    // scaled run uses the same rule.
    let contention_cfg = ContentionConfig { window_ns, ..ContentionConfig::default() };
    let report = detect_contention(&index, &contention_cfg);

    let mut out =
        String::from("FIG. 4: syscalls issued by RocksDB over time, aggregated by thread name\n\n");
    out.push_str(&rendered);
    out.push_str(&format!(
        "\ntrace: {} events stored, {} dropped ({:.2}% discard), {} unresolved paths\n",
        summary.events_stored,
        summary.events_dropped,
        summary.drop_rate() * 100.0,
        0,
    ));
    out.push_str(&format!(
        "contention windows (>= {} active compaction threads): {} of {}\n",
        contention_cfg.background_threshold,
        report.contended_windows().count(),
        report.windows.len(),
    ));
    out.push_str(&format!(
        "client syscalls per window: calm avg {:.0}, contended avg {:.0} (degradation {:.2}x)\n",
        report.client_ops_calm,
        report.client_ops_contended,
        report.degradation_factor(),
    ));
    out.push_str("\npaper: when >=5 compaction threads submit I/O, db_bench syscalls decrease\n");
    out.push_str(&format!(
        "measured: contention detected = {} — client throughput drops {:.2}x in flagged windows\n",
        report.contention_detected(),
        report.degradation_factor(),
    ));

    // Per-window breakdown table (the machine-readable Fig. 4).
    let mut csv = String::from(
        "window_start_s,client_ops,background_ops,active_compaction_threads,contended\n",
    );
    let t0 = report.windows.first().map_or(0, |w| w.start_ns);
    for w in &report.windows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            (w.start_ns - t0) as f64 / 1e9,
            w.client_ops,
            w.background_ops,
            w.active_background_threads,
            w.contended
        ));
    }

    println!("{out}");
    dio_bench::write_result("fig4_syscalls_by_thread.txt", &out);
    dio_bench::write_result("fig4_syscalls_by_thread.csv", &csv);
    dio_bench::write_json_result(
        "fig4_syscalls_by_thread.json",
        "exp_fig4",
        config.params_json(),
        serde_json::json!({
            "events_stored": summary.events_stored,
            "events_dropped": summary.events_dropped,
            "drop_rate": summary.drop_rate(),
            "windows": report.windows.len(),
            "contended_windows": report.contended_windows().count(),
            "contention_detected": report.contention_detected(),
            "client_ops_calm": report.client_ops_calm,
            "client_ops_contended": report.client_ops_contended,
            "degradation_factor": report.degradation_factor(),
            "per_window": report.windows.iter().map(|w| serde_json::json!({
                "start_s": (w.start_ns - t0) as f64 / 1e9,
                "client_ops": w.client_ops,
                "background_ops": w.background_ops,
                "active_compaction_threads": w.active_background_threads,
                "contended": w.contended,
            })).collect::<Vec<_>>(),
        }),
    );

    if !dio_bench::smoke_mode() {
        assert!(summary.events_stored > 0);
        assert!(
            report.windows.iter().any(|w| w.active_background_threads >= 5),
            "expected windows with >=5 active compaction threads"
        );
        assert!(
            report.contention_detected(),
            "expected the Fig. 4 anti-correlation between compaction activity and client syscalls"
        );
    }
}
