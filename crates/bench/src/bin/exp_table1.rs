//! Table I — the 42 storage-related syscalls supported by DIO, by class.

use dio_syscall::{SyscallClass, SyscallKind};
use dio_viz::Table;

fn main() {
    let classes = [
        SyscallClass::Data,
        SyscallClass::Metadata,
        SyscallClass::ExtendedAttributes,
        SyscallClass::DirectoryManagement,
    ];
    let mut rows = Vec::new();
    for class in classes {
        let names: Vec<&str> =
            SyscallKind::ALL.iter().filter(|k| k.class() == class).map(|k| k.name()).collect();
        rows.push(vec![class.to_string(), names.len().to_string(), names.join(", ")]);
    }
    rows.push(vec!["TOTAL".to_string(), SyscallKind::ALL.len().to_string(), String::new()]);
    let table = Table::from_rows(["class", "count", "syscalls"], rows);

    let mut out = String::from("TABLE I: Syscalls supported by DIO\n\n");
    out.push_str(&table.to_ascii());
    out.push_str("\npaper: 42 supported storage-related syscalls\n");
    out.push_str(&format!("measured: {} syscalls in the catalog\n", SyscallKind::ALL.len()));
    println!("{out}");
    dio_bench::write_result("table1_syscalls.txt", &out);
    let mut by_class = serde_json::Map::new();
    for class in classes {
        let count = SyscallKind::ALL.iter().filter(|k| k.class() == class).count();
        by_class.insert(class.to_string(), serde_json::json!(count));
    }
    dio_bench::write_json_result(
        "table1_syscalls.json",
        "exp_table1",
        serde_json::json!({ "workload": "syscall_catalog" }),
        serde_json::json!({
            "total_syscalls": SyscallKind::ALL.len(),
            "by_class": serde_json::Value::Object(by_class),
        }),
    );
    assert_eq!(SyscallKind::ALL.len(), 42);
}
