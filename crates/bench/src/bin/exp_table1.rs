//! Table I — the 42 storage-related syscalls supported by DIO, by class.
//!
//! The per-class census comes from `dio-verify`'s catalog contract
//! ([`dio_verify::CLASS_CENSUS`]), and the artifact embeds the same
//! generated listing (`dio_verify::table1_markdown`) that `dio-verify
//! --write-docs` renders into DESIGN.md/README.md — one source of truth
//! across docs, lint, and experiment.

use dio_syscall::SyscallKind;
use dio_verify::{check_catalog_invariants, table1_markdown, CLASS_CENSUS};
use dio_viz::Table;

fn main() {
    let mut rows = Vec::new();
    for &(class, want) in CLASS_CENSUS {
        let names: Vec<&str> =
            SyscallKind::ALL.iter().filter(|k| k.class() == class).map(|k| k.name()).collect();
        assert_eq!(names.len(), want, "census drift for class {class}");
        rows.push(vec![class.to_string(), names.len().to_string(), names.join(", ")]);
    }
    rows.push(vec!["TOTAL".to_string(), SyscallKind::ALL.len().to_string(), String::new()]);
    let table = Table::from_rows(["class", "count", "syscalls"], rows);

    let mut out = String::from("TABLE I: Syscalls supported by DIO\n\n");
    out.push_str(&table.to_ascii());
    out.push_str("\npaper: 42 supported storage-related syscalls\n");
    out.push_str(&format!("measured: {} syscalls in the catalog\n", SyscallKind::ALL.len()));
    out.push_str("\n-- generated listing (dio-verify --write-docs) --\n\n");
    out.push_str(&table1_markdown());
    println!("{out}");
    dio_bench::write_result("table1_syscalls.txt", &out);
    let mut by_class = serde_json::Map::new();
    for &(class, count) in CLASS_CENSUS {
        by_class.insert(class.to_string(), serde_json::json!(count));
    }
    dio_bench::write_json_result(
        "table1_syscalls.json",
        "exp_table1",
        serde_json::json!({ "workload": "syscall_catalog" }),
        serde_json::json!({
            "total_syscalls": SyscallKind::ALL.len(),
            "by_class": serde_json::Value::Object(by_class),
        }),
    );
    assert_eq!(SyscallKind::ALL.len(), 42);
    let failures = check_catalog_invariants();
    assert!(failures.is_empty(), "catalog invariants violated: {failures:?}");
}
