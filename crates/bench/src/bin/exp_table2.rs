//! Table II — average execution time and standard deviation for 3
//! independent runs of the RocksDB workload under each tracer (§III-D).
//!
//! Paper: vanilla 3h48m (1.00×), sysdig 3h56m (1.04×), DIO 5h12m (1.37×),
//! strace 6h30m (1.71×). The reproduction checks the *ordering* and the
//! rough factor ranges, not absolute times (the substrate is scaled).
//!
//! Runs are interleaved round-robin (v,s,D,st, v,s,D,st, ...) after one
//! warmup, so machine drift hits every setup equally, and medians are
//! used against scheduler noise on small hosts.

use dio_bench::rocksdb_run::{run_rocksdb, RocksdbRunConfig, TracingSetup};
use dio_bench::{format_duration_ns, write_json_result, write_result};
use dio_viz::Table;

const RUNS: usize = 3;

fn main() {
    let config = if dio_bench::smoke_mode() {
        RocksdbRunConfig::smoke()
    } else {
        RocksdbRunConfig { ops_per_thread: 6_000, ..RocksdbRunConfig::default() }
    };

    // Warmup: populate allocator pools, caches, and lazy statics.
    let _ = run_rocksdb(TracingSetup::Vanilla, &RocksdbRunConfig::smoke());

    let mut times: Vec<Vec<f64>> = vec![Vec::new(); TracingSetup::ALL.len()];
    for run in 0..RUNS {
        for (i, setup) in TracingSetup::ALL.into_iter().enumerate() {
            let cfg = RocksdbRunConfig { seed: config.seed + run as u64, ..config.clone() };
            let result = run_rocksdb(setup, &cfg);
            times[i].push(result.report.elapsed_ns as f64);
            eprintln!(
                "  {} run {}: {} ({} syscalls)",
                setup.name(),
                run + 1,
                format_duration_ns(result.report.elapsed_ns),
                result.syscalls
            );
        }
    }

    let median = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let medians: Vec<f64> = times.iter().map(|t| median(t)).collect();
    let vanilla_median = medians[0];

    let table_rows: Vec<Vec<String>> = TracingSetup::ALL
        .into_iter()
        .enumerate()
        .map(|(i, setup)| {
            let mean = times[i].iter().sum::<f64>() / times[i].len() as f64;
            let var =
                times[i].iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times[i].len() as f64;
            vec![
                setup.name().to_string(),
                format_duration_ns(medians[i] as u64),
                format!("±{}", format_duration_ns(var.sqrt() as u64)),
                format!("{:.2}x", medians[i] / vanilla_median),
            ]
        })
        .collect();
    let table =
        Table::from_rows(["setup", "median execution time", "stddev", "overhead"], table_rows);

    let factors: Vec<f64> = medians.iter().map(|m| m / vanilla_median).collect();
    let ordering_holds = factors[1] < factors[2] && factors[2] < factors[3];
    let mut out =
        String::from("TABLE II: execution time for 3 interleaved runs of RocksDB per setup\n\n");
    out.push_str(&table.to_ascii());
    out.push_str("\npaper:    vanilla 1.00x | sysdig 1.04x | DIO 1.37x | strace 1.71x\n");
    out.push_str(&format!(
        "measured: vanilla 1.00x | sysdig {:.2}x | DIO {:.2}x | strace {:.2}x\n",
        factors[1], factors[2], factors[3],
    ));
    out.push_str(&format!(
        "ordering sysdig < DIO < strace holds: {}\n",
        if ordering_holds { "YES" } else { "NO" }
    ));
    println!("{out}");
    write_result("table2_overhead.txt", &out);
    let mut params = config.params_json();
    params["runs"] = serde_json::json!(RUNS);
    write_json_result(
        "table2_overhead.json",
        "exp_table2",
        params,
        serde_json::json!({
            "setups": TracingSetup::ALL.into_iter().map(|s| s.name()).collect::<Vec<_>>(),
            "median_ns": medians.clone(),
            "overhead_factors": factors.clone(),
            "ordering_sysdig_dio_strace_holds": ordering_holds,
            "times_ns": times.clone(),
        }),
    );

    if !dio_bench::smoke_mode() {
        assert!(ordering_holds, "Table II overhead ordering must hold: {factors:?}");
        assert!(
            (0.85..1.20).contains(&factors[1]),
            "sysdig factor {:.2} should sit near vanilla (paper: 1.04)",
            factors[1]
        );
        assert!(
            (1.10..2.2).contains(&factors[2]),
            "DIO factor {:.2} out of plausible range (paper: 1.37)",
            factors[2]
        );
        assert!(factors[3] > factors[2], "strace must cost more than DIO (paper: 1.71 vs 1.37)");
    }
}
