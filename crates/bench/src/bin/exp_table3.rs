//! Table III — qualitative comparison between DIO and other tracers.

use dio_baselines::capability_matrix;
use dio_viz::Table;

fn flag(b: bool) -> String {
    if b {
        "+".to_string()
    } else {
        "-".to_string()
    }
}

fn main() {
    let matrix = capability_matrix();
    let rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                flag(t.syscall_info),
                flag(t.f_offset),
                flag(t.f_type),
                flag(t.proc_name),
                flag(t.filters),
                flag(t.aggregates_entry_exit),
                t.integration.to_string(),
                flag(t.customizable),
                flag(t.predefined_vis),
                t.use_case_data_loss.to_string(),
                t.use_case_contention.to_string(),
            ]
        })
        .collect();
    let table = Table::from_rows(
        [
            "tool",
            "syscall info",
            "f_offset",
            "f_type",
            "proc_name",
            "filters",
            "entry+exit agg",
            "pipeline (O/I)",
            "customizable",
            "predef. vis",
            "§III-B",
            "§III-C",
        ],
        rows,
    );
    let mut out = String::from(
        "TABLE III: comparison between DIO and other solutions\n\
         (O = offline pipeline, I = inline; T = traces the needed info, TA = traces and analyzes)\n\n",
    );
    out.push_str(&table.to_ascii());
    out.push_str("\npaper claims encoded: DIO is the only tool collecting file offsets;\n");
    out.push_str("only Tracee/CaT/DIO aggregate entry+exit in kernel space; only DIO and\n");
    out.push_str("LongLine forward events inline; only DIO diagnoses both use cases (TA).\n");
    println!("{out}");
    dio_bench::write_result("table3_comparison.txt", &out);

    // Invariants from §IV.
    assert_eq!(matrix.iter().filter(|t| t.f_offset).count(), 1);
    assert!(matrix.iter().any(|t| t.name == "DIO" && t.f_offset));
}
