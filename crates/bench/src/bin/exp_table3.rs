//! Table III — qualitative comparison between DIO and other tracers.

use dio_baselines::capability_matrix;
use dio_viz::Table;

fn flag(b: bool) -> String {
    if b {
        "+".to_string()
    } else {
        "-".to_string()
    }
}

fn main() {
    let matrix = capability_matrix();
    let rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                flag(t.syscall_info),
                flag(t.f_offset),
                flag(t.f_type),
                flag(t.proc_name),
                flag(t.filters),
                flag(t.aggregates_entry_exit),
                t.integration.to_string(),
                flag(t.customizable),
                flag(t.predefined_vis),
                t.use_case_data_loss.to_string(),
                t.use_case_contention.to_string(),
            ]
        })
        .collect();
    let table = Table::from_rows(
        [
            "tool",
            "syscall info",
            "f_offset",
            "f_type",
            "proc_name",
            "filters",
            "entry+exit agg",
            "pipeline (O/I)",
            "customizable",
            "predef. vis",
            "§III-B",
            "§III-C",
        ],
        rows,
    );
    let mut out = String::from(
        "TABLE III: comparison between DIO and other solutions\n\
         (O = offline pipeline, I = inline; T = traces the needed info, TA = traces and analyzes)\n\n",
    );
    out.push_str(&table.to_ascii());
    out.push_str("\npaper claims encoded: DIO is the only tool collecting file offsets;\n");
    out.push_str("only Tracee/CaT/DIO aggregate entry+exit in kernel space; only DIO and\n");
    out.push_str("LongLine forward events inline; only DIO diagnoses both use cases (TA).\n");
    println!("{out}");
    dio_bench::write_result("table3_comparison.txt", &out);
    dio_bench::write_json_result(
        "table3_comparison.json",
        "exp_table3",
        serde_json::json!({ "workload": "capability_matrix" }),
        serde_json::json!({
            "tools": matrix.iter().map(|t| t.name).collect::<Vec<_>>(),
            "tools_with_f_offset": matrix.iter().filter(|t| t.f_offset).count(),
            "tools_with_entry_exit_agg":
                matrix.iter().filter(|t| t.aggregates_entry_exit).count(),
            "matrix": matrix.iter().map(|t| serde_json::json!({
                "tool": t.name,
                "syscall_info": t.syscall_info,
                "f_offset": t.f_offset,
                "f_type": t.f_type,
                "proc_name": t.proc_name,
                "filters": t.filters,
                "aggregates_entry_exit": t.aggregates_entry_exit,
                "integration": t.integration.to_string(),
                "customizable": t.customizable,
                "predefined_vis": t.predefined_vis,
                "use_case_data_loss": t.use_case_data_loss.to_string(),
                "use_case_contention": t.use_case_contention.to_string(),
            })).collect::<Vec<_>>(),
        }),
    );

    // Invariants from §IV.
    assert_eq!(matrix.iter().filter(|t| t.f_offset).count(), 1);
    assert!(matrix.iter().any(|t| t.name == "DIO" && t.f_offset));
}
