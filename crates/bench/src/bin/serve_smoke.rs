//! CI smoke pass for the live introspection server
//! (`results/SMOKE_serve_metrics.txt`, `results/SMOKE_serve_health.json`).
//!
//! Boots a diagnosed session with `dio-serve` attached (honouring
//! `DIO_SERVE_ADDR`, defaulting to an ephemeral port), connects an SSE
//! client, replays the Fig. 2 data-loss workload, and then walks every
//! endpoint like an operator would:
//!
//! * `/metrics` must pass the self-written OpenMetrics lint;
//! * the SSE stream must deliver at least one live `event: alert` frame;
//! * `/flightrec` must download valid Chrome Trace JSON, and at least
//!   one `trace_id` exemplar from the scrape must resolve to a span in
//!   that same dump;
//! * the JSON and ANSI views must reflect the workload.
//!
//! The scrape and the health payload land in `results/` as CI artifacts,
//! so a red run ships the evidence.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dio_core::{lint_openmetrics, DiagnoseConfig, Dio, DiskProfile, Kernel, TracerConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to dio-serve");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn expect_200(addr: SocketAddr, path: &str) -> String {
    let (status, body) = http_get(addr, path);
    assert_eq!(status, 200, "{path} must answer 200, got {status}: {body}");
    eprintln!("  GET {path} -> 200 ({} bytes)", body.len());
    body
}

fn main() {
    let dio = Dio::with_kernel(Kernel::builder().root_disk(DiskProfile::instant()).build());
    let mut session =
        dio.trace(TracerConfig::new("serve-smoke").diagnose(DiagnoseConfig::default()));
    // DIO_SERVE_ADDR (the CI job sets 127.0.0.1:0) already started the
    // server through the env bootstrap; otherwise attach one explicitly.
    let addr = match session.serve_addr() {
        Some(addr) => addr,
        None => session.serve("127.0.0.1:0").expect("bind introspection server"),
    };
    eprintln!("serve_smoke: introspection server on http://{addr}");

    // SSE client first, so the live alert has a subscriber to reach.
    let mut sse = TcpStream::connect(addr).expect("connect SSE");
    sse.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    write!(sse, "GET /api/alerts/stream HTTP/1.1\r\nHost: smoke\r\n\r\n").expect("send request");
    let mut buf = [0u8; 4096];
    let n = sse.read(&mut buf).expect("sse head");
    let mut sse_frames = String::from_utf8_lossy(&buf[..n]).to_string();
    assert!(sse_frames.contains("text/event-stream"), "SSE head: {sse_frames}");

    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 20_000_000)
        .expect("Fig. 2 scenario replays");
    for _ in 0..1_000 {
        if session.events_stored() >= 10 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // The buggy tailer's data loss must arrive live over the stream.
    while !sse_frames.contains("event: alert") {
        let n = sse.read(&mut buf).expect("alert frame before timeout");
        assert!(n > 0, "SSE stream closed before an alert arrived");
        sse_frames.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    eprintln!("  SSE delivered a live alert frame");

    let metrics = expect_200(addr, "/metrics");
    let lint = lint_openmetrics(&metrics);
    assert!(lint.is_empty(), "OpenMetrics lint violations: {lint:#?}");
    eprintln!("  /metrics lints clean ({} lines)", metrics.lines().count());

    let flightrec = expect_200(addr, "/flightrec");
    let dump: serde_json::Value =
        serde_json::from_str(&flightrec).expect("flightrec is valid Chrome JSON");
    assert!(dump.get("traceEvents").is_some(), "Chrome Trace Event envelope");
    let exemplar_id = metrics
        .lines()
        .filter(|l| l.contains("_bucket"))
        .find_map(|l| {
            let (_, rest) = l.split_once("trace_id=\"")?;
            rest.split_once('"').map(|(id, _)| id.to_string())
        })
        .expect("scrape must carry at least one trace_id exemplar");
    assert!(
        flightrec.contains(&format!("0x{exemplar_id}")),
        "exemplar trace_id {exemplar_id} must resolve into the flight-recorder dump"
    );
    eprintln!("  exemplar trace_id {exemplar_id} resolves into /flightrec");

    let health = expect_200(addr, "/api/health");
    serde_json::from_str::<serde_json::Value>(&health).expect("health is valid JSON");
    let top_json = expect_200(addr, "/api/top");
    let top: serde_json::Value = serde_json::from_str(&top_json).expect("top is valid JSON");
    assert!(top["total_ops"].as_u64().unwrap_or(0) > 0, "top must reflect the workload: {top}");
    let screen = expect_200(addr, "/top");
    assert!(screen.contains("dio top"), "ANSI top renders");
    expect_200(addr, "/dashboard");
    expect_200(addr, "/healthz");
    expect_200(addr, "/readyz");
    let (status, _) = http_get(addr, "/api/storage");
    assert_eq!(status, 404, "in-memory session has no storage report");

    dio_bench::write_result("SMOKE_serve_metrics.txt", &metrics);
    dio_bench::write_result("SMOKE_serve_health.json", &health);

    drop(sse);
    session.stop();
    println!("serve_smoke: all endpoints healthy, lint clean, live alert streamed");
}
