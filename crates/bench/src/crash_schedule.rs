//! Deterministic workload schedule shared by the crash-injection child
//! (`crash_runner`) and the parent recovery test.
//!
//! Both sides regenerate the *same* schedule from a seed, so the child
//! never has to report document bodies over its stdout protocol — only
//! which steps it started (`S <n>`) and which the store acknowledged
//! (`A <n>`). The parent replays the schedule against the step statuses
//! to compute three sets:
//!
//! * **must exist** — documents whose put was acknowledged and whose
//!   deletion was never *attempted*;
//! * **must not exist** — documents whose tombstone was acknowledged
//!   (ids are never reused, so no later put can resurrect them);
//! * **attempted** — the full universe of (index, id) → body any put
//!   ever tried to write. Every survivor in the reopened store must be
//!   in this set with a byte-identical body: a crash may lose unacked
//!   tail writes or preserve them, but it may never invent or mangle a
//!   document.
//!
//! Steps between the last acknowledgement and the kill are *limbo*:
//! their effects may or may not have reached the disk, so they are
//! excluded from both must-sets.

use std::collections::BTreeMap;

use dio_backend::StorageConfig;

/// Number of distinct indexes (sessions) the workload spreads over.
pub const INDEX_COUNT: usize = 3;

/// Name of the `i`-th workload index.
pub fn index_name(i: usize) -> String {
    format!("dio-crash{i}")
}

/// The storage profile under test: tiny segments force frequent seals
/// (hint writes), and explicit `Compact` steps replace the background
/// thread so every run is deterministic.
pub fn crash_config() -> StorageConfig {
    StorageConfig {
        shards: 4,
        max_segment_bytes: 2048,
        compact_min_dead_ratio: 0.15,
        compact_min_sealed_bytes: 1024,
        sync_every_batch: false,
        auto_compact: false,
    }
}

/// SplitMix64: a tiny, seedable, allocation-free mixer. Both processes
/// derive every workload decision from `mix(seed, counter)` instead of
/// sharing an RNG stream, so there is no call-order coupling to break.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `n`-th decision value from `seed`.
pub fn mix(seed: u64, n: u64) -> u64 {
    splitmix64(seed ^ splitmix64(n))
}

/// One step of the workload, with ids pre-assigned (the store's
/// sequential id allocation is deterministic, and the runner asserts
/// its prediction against the ids the store actually returns).
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Bulk-index `docs` into `index`.
    Put {
        /// Target index.
        index: String,
        /// Predicted (id, body) pairs.
        docs: Vec<(u64, serde_json::Value)>,
    },
    /// Delete one previously-put document.
    Delete {
        /// Target index.
        index: String,
        /// Victim document id.
        doc_id: u64,
    },
    /// Synchronous compaction of every shard.
    Compact,
    /// `fdatasync` every shard.
    Flush,
}

/// The deterministic body of document `k` of step `step`. The `pad`
/// field varies record sizes so torn-write splits land at interesting
/// offsets (inside headers, index names, values).
pub fn body(seed: u64, step: usize, k: usize, id: u64) -> serde_json::Value {
    let r = mix(seed, ((step as u64) << 20) | ((k as u64) << 8) | 1);
    let pad_len = (r % 120) as usize;
    let pad: String =
        (0..pad_len).map(|i| char::from(b'a' + ((r >> (i % 48)) as u8 & 15))).collect();
    serde_json::json!({ "seed": seed, "step": step, "k": k, "id": id, "pad": pad })
}

/// Generates the full `steps`-long schedule for `seed`.
pub fn schedule(seed: u64, steps: usize) -> Vec<Step> {
    let mut next_id = [0u64; INDEX_COUNT];
    let mut live: Vec<Vec<u64>> = vec![Vec::new(); INDEX_COUNT];
    let mut out = Vec::with_capacity(steps);
    for n in 0..steps {
        let r = mix(seed, n as u64);
        let idx = (r % INDEX_COUNT as u64) as usize;
        let kind = (r >> 8) % 100;
        if kind < 5 {
            out.push(Step::Compact);
        } else if kind < 10 {
            out.push(Step::Flush);
        } else if kind < 28 && !live[idx].is_empty() {
            let v = (r >> 16) as usize % live[idx].len();
            let doc_id = live[idx].remove(v);
            out.push(Step::Delete { index: index_name(idx), doc_id });
        } else {
            let count = 1 + ((r >> 16) % 4) as usize;
            let mut docs = Vec::with_capacity(count);
            for k in 0..count {
                let id = next_id[idx];
                next_id[idx] += 1;
                live[idx].push(id);
                docs.push((id, body(seed, n, k, id)));
            }
            out.push(Step::Put { index: index_name(idx), docs });
        }
    }
    out
}

/// How far a step got before the kill, as reported by the child's
/// stdout protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// `A <n>` seen: the store acknowledged the step.
    Acked,
    /// `S <n>` seen without `A <n>`: the kill landed inside the step.
    Limbo,
    /// Never started (the runner is sequential, so everything after the
    /// first non-started step also never ran).
    NotReached,
}

/// What the reopened store must (and must not) contain. See module docs.
#[derive(Debug, Default)]
pub struct Expectation {
    /// Acked puts never invalidated by a delete attempt.
    pub must_exist: BTreeMap<(String, u64), serde_json::Value>,
    /// Acked tombstones.
    pub must_not_exist: Vec<(String, u64)>,
    /// Every document any put step attempted.
    pub attempted: BTreeMap<(String, u64), serde_json::Value>,
}

/// Replays `sched` against per-step statuses.
pub fn expectation(sched: &[Step], status: impl Fn(usize) -> StepStatus) -> Expectation {
    let mut exp = Expectation::default();
    for (n, step) in sched.iter().enumerate() {
        let st = status(n);
        if st == StepStatus::NotReached {
            break;
        }
        match step {
            Step::Put { index, docs } => {
                for (id, body) in docs {
                    exp.attempted.insert((index.clone(), *id), body.clone());
                    if st == StepStatus::Acked {
                        exp.must_exist.insert((index.clone(), *id), body.clone());
                    }
                }
            }
            Step::Delete { index, doc_id } => {
                let key = (index.clone(), *doc_id);
                // Even a limbo delete voids the existence guarantee: the
                // tombstone may have hit the disk before the kill.
                exp.must_exist.remove(&key);
                if st == StepStatus::Acked {
                    exp.must_not_exist.push(key);
                }
            }
            Step::Compact | Step::Flush => {}
        }
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        assert_eq!(schedule(42, 100), schedule(42, 100));
        assert_ne!(schedule(42, 100), schedule(43, 100));
    }

    #[test]
    fn schedule_mixes_op_kinds() {
        let sched = schedule(7, 400);
        let puts = sched.iter().filter(|s| matches!(s, Step::Put { .. })).count();
        let dels = sched.iter().filter(|s| matches!(s, Step::Delete { .. })).count();
        let compacts = sched.iter().filter(|s| matches!(s, Step::Compact)).count();
        let flushes = sched.iter().filter(|s| matches!(s, Step::Flush)).count();
        assert!(puts > 100, "{puts}");
        assert!(dels > 20, "{dels}");
        assert!(compacts > 3, "{compacts}");
        assert!(flushes > 3, "{flushes}");
    }

    #[test]
    fn deletes_target_previously_put_ids_exactly_once() {
        let sched = schedule(11, 500);
        let mut put: std::collections::HashSet<(String, u64)> = Default::default();
        let mut deleted: std::collections::HashSet<(String, u64)> = Default::default();
        for step in &sched {
            match step {
                Step::Put { index, docs } => {
                    for (id, _) in docs {
                        assert!(put.insert((index.clone(), *id)), "ids never reused");
                    }
                }
                Step::Delete { index, doc_id } => {
                    let key = (index.clone(), *doc_id);
                    assert!(put.contains(&key), "victims were put earlier");
                    assert!(deleted.insert(key), "each id deleted at most once");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn expectation_handles_limbo_deletes() {
        let sched = vec![
            Step::Put { index: "i".into(), docs: vec![(0, body(1, 0, 0, 0))] },
            Step::Put { index: "i".into(), docs: vec![(1, body(1, 1, 0, 1))] },
            Step::Delete { index: "i".into(), doc_id: 0 },
        ];
        // Delete is limbo: doc 0 is in neither must-set, but stays in
        // the attempted universe.
        let exp = expectation(&sched, |n| match n {
            2 => StepStatus::Limbo,
            _ => StepStatus::Acked,
        });
        assert!(!exp.must_exist.contains_key(&("i".into(), 0)));
        assert!(exp.must_not_exist.is_empty());
        assert!(exp.must_exist.contains_key(&("i".into(), 1)));
        assert_eq!(exp.attempted.len(), 2);
        // Delete acked: doc 0 must be gone.
        let exp = expectation(&sched, |_| StepStatus::Acked);
        assert_eq!(exp.must_not_exist, vec![("i".into(), 0)]);
    }
}
