//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each evaluation artifact has a binary (`exp_table1`, `exp_fig2`,
//! `exp_fig3`, `exp_fig4`, `exp_table2`, `exp_discard`, `exp_table3`);
//! this library holds the shared machinery: the scaled RocksDB workload
//! runner with pluggable tracer setups, and result-file output.
//!
//! Scaling: the paper's testbed runs db_bench for ~3h48m over a 250 GiB
//! NVMe device. The reproduction shrinks dataset, op count and disk
//! bandwidth together so each run completes in seconds while keeping the
//! ratios that produce the phenomena (compaction I/O ≫ client I/O per
//! burst; tracer cost a few percent of syscall cost). See DESIGN.md §2.

pub mod crash_schedule;
pub mod rocksdb_run;

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory where experiment binaries drop their outputs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DIO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Writes `content` to `results/<name>`, creating the directory, and
/// echoes the path written.
pub fn write_result(name: &str, content: &str) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create result file");
    f.write_all(content.as_bytes()).expect("write result file");
    println!("[saved {}]", path.display());
    path
}

/// A unique-enough run identifier: Unix seconds plus the process id.
pub fn run_id() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("{}-{}", secs, std::process::id())
}

/// The commit the results were produced from: `GITHUB_SHA` in CI, `git
/// rev-parse HEAD` on a dev box, `"unknown"` outside a work tree.
pub fn git_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes a machine-readable result document to `results/<name>`:
/// `{run_id, experiment, git_commit, smoke, params, metrics}` as pretty
/// JSON.
///
/// Every experiment binary pairs this with its human-readable
/// [`write_result`] output so downstream tooling never has to parse
/// ASCII tables. `params` keys are shared across binaries (the RocksDB
/// ones all embed [`rocksdb_run::RocksdbRunConfig::params_json`]) so a
/// parameter always lives under the same name in every result file.
pub fn write_json_result(
    name: &str,
    experiment: &str,
    params: serde_json::Value,
    metrics: serde_json::Value,
) -> PathBuf {
    let doc = serde_json::json!({
        "run_id": run_id(),
        "experiment": experiment,
        "git_commit": git_commit(),
        "smoke": smoke_mode(),
        "params": params,
        "metrics": metrics,
    });
    write_result(name, &serde_json::to_string_pretty(&doc).expect("result serializes"))
}

/// Formats a nanosecond duration as `XhYYm` / `YmZZs` / `Z.ZZs`.
pub fn format_duration_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 3600.0 {
        format!("{:.0}h{:02.0}m", (secs / 3600.0).floor(), (secs % 3600.0) / 60.0)
    } else if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.2}s")
    }
}

/// Returns true when the experiment should run in smoke-test mode
/// (`DIO_SMOKE=1`): tiny workloads, just enough to validate the pipeline.
pub fn smoke_mode() -> bool {
    std::env::var("DIO_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Whether a result landed on disk (test support).
pub fn result_exists(name: &str) -> bool {
    Path::new(&results_dir()).join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_commit_is_never_empty() {
        let sha = git_commit();
        assert!(!sha.is_empty());
        assert!(sha == "unknown" || sha.chars().all(|c| c.is_ascii_hexdigit()), "{sha}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration_ns(1_500_000_000), "1.50s");
        assert_eq!(format_duration_ns(90 * 1_000_000_000), "1m30s");
        assert_eq!(format_duration_ns(3 * 3600 * 1_000_000_000 + 48 * 60 * 1_000_000_000), "3h48m");
    }
}
