//! The shared RocksDB-style workload run (the §III-C testbed), with
//! pluggable tracing setups for the Table II comparison.

use std::sync::Arc;

use dio_backend::DocStore;
use dio_baselines::{StraceConfig, StraceTracer, SysdigConfig, SysdigTracer};
use dio_dbbench::{load_phase, run, BenchConfig, BenchReport, KeyDistribution, YcsbWorkload};
use dio_diagnose::DiagnoseConfig;
use dio_kernel::{DiskProfile, Kernel, SyscallProbe};
use dio_lsmkv::{Db, DbStats, LsmOptions};
use dio_syscall::SyscallKind;
use dio_tracer::{TraceSummary, Tracer, TracerConfig};

/// Which tracer observes the run (the Table II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracingSetup {
    /// No tracer attached.
    Vanilla,
    /// The Sysdig-like baseline.
    Sysdig,
    /// DIO with the paper's Fig. 4 configuration.
    Dio,
    /// The strace-like baseline.
    Strace,
}

impl TracingSetup {
    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            TracingSetup::Vanilla => "vanilla",
            TracingSetup::Sysdig => "sysdig",
            TracingSetup::Dio => "DIO",
            TracingSetup::Strace => "strace",
        }
    }

    /// All four setups in Table II order.
    pub const ALL: [TracingSetup; 4] =
        [TracingSetup::Vanilla, TracingSetup::Sysdig, TracingSetup::Dio, TracingSetup::Strace];
}

/// Calibrated in-kernel per-event costs (see DESIGN.md §6 "Overhead
/// model"). These stand in for the parts of each tracer's real cost that
/// an in-process simulation does not naturally pay (eBPF program
/// execution, perf-buffer copies, ptrace traps).
pub mod costs {
    fn env_or(name: &str, default: u64) -> u64 {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// DIO eBPF program: argument copy + map update at `sys_enter`.
    pub fn dio_enter_ns() -> u64 {
        env_or("DIO_COST_ENTER_NS", 1_200)
    }

    /// DIO eBPF program: enrichment + event assembly + ring push at exit.
    pub fn dio_exit_ns() -> u64 {
        env_or("DIO_COST_EXIT_NS", 3_000)
    }

    /// Sysdig's slimmer probe.
    pub fn sysdig_probe_ns() -> u64 {
        env_or("DIO_COST_SYSDIG_NS", 500)
    }

    /// One ptrace stop (2 context switches + tracer dispatch).
    pub fn strace_stop_ns() -> u64 {
        env_or("DIO_COST_STRACE_NS", 12_000)
    }
}

/// Workload scale parameters.
#[derive(Debug, Clone)]
pub struct RocksdbRunConfig {
    /// Records loaded before measurement.
    pub records: u64,
    /// Measured operations per client thread.
    pub ops_per_thread: u64,
    /// Value size (YCSB default-ish).
    pub value_size: usize,
    /// Closed-loop client threads (paper: 8).
    pub client_threads: usize,
    /// Compaction threads (paper: 7) — plus 1 flush thread.
    pub compaction_threads: usize,
    /// Latency window width (Fig. 3 granularity).
    pub window_ns: u64,
    /// RNG seed.
    pub seed: u64,
    /// Attach the live diagnosis engine to the DIO tracer (streaming
    /// contention/rate detectors windowed at `window_ns`).
    pub diagnose: bool,
    /// Attach the streaming DFG profiler to the DIO tracer; combined
    /// with `diagnose`, alerts gain critical-edge attribution blocks.
    pub profile: bool,
}

impl Default for RocksdbRunConfig {
    fn default() -> Self {
        RocksdbRunConfig {
            records: 20_000,
            ops_per_thread: 12_000,
            value_size: 400,
            client_threads: 8,
            compaction_threads: 7,
            window_ns: 250_000_000,
            seed: 42,
            diagnose: false,
            profile: false,
        }
    }
}

impl RocksdbRunConfig {
    /// A tiny configuration for smoke tests.
    pub fn smoke() -> Self {
        RocksdbRunConfig { records: 300, ops_per_thread: 120, ..Default::default() }
    }

    /// The shared `params` block of a machine-readable result document.
    /// Every RocksDB-workload binary embeds this so a parameter lives
    /// under the same key in every `results/*.json` file; binaries append
    /// their extra knobs to the returned object.
    pub fn params_json(&self) -> serde_json::Value {
        serde_json::json!({
            "workload": "rocksdb_ycsb_a",
            "records": self.records,
            "ops_per_thread": self.ops_per_thread,
            "value_size": self.value_size,
            "client_threads": self.client_threads,
            "compaction_threads": self.compaction_threads,
            "window_ns": self.window_ns,
            "seed": self.seed,
            "diagnose": self.diagnose,
            "profile": self.profile,
        })
    }
}

/// The scaled equivalent of the paper's NVMe dataset disk: bandwidth is
/// shrunk with the dataset so compaction bursts still dominate the FCFS
/// channel and create the Fig. 3 latency spikes.
pub fn contended_disk() -> DiskProfile {
    DiskProfile {
        read_bw_bps: 192 * 1024 * 1024,
        write_bw_bps: 96 * 1024 * 1024,
        base_latency_ns: 15_000,
        flush_latency_ns: 60_000,
    }
}

/// Everything one run produces.
pub struct RocksdbRunResult {
    /// Which setup ran.
    pub setup: TracingSetup,
    /// Benchmark measurements (ops, latency windows).
    pub report: BenchReport,
    /// Store-side counters (flushes, compactions, stalls).
    pub db_stats: DbStats,
    /// Total syscalls the kernel executed during the measured phase.
    pub syscalls: u64,
    /// DIO session outputs (events, drops, backend), when setup is DIO.
    pub dio: Option<(TraceSummary, DocStore)>,
    /// Sysdig unresolved-path rate, when setup is Sysdig.
    pub sysdig_unresolved: Option<f64>,
}

/// Runs load + measured phase of the YCSB-A workload under one tracing
/// setup, on a fresh kernel.
pub fn run_rocksdb(setup: TracingSetup, config: &RocksdbRunConfig) -> RocksdbRunResult {
    let kernel = Kernel::builder().num_cpus(4).root_disk(contended_disk()).build();
    let process = kernel.spawn_process("db_bench");
    let opts = LsmOptions {
        compaction_threads: config.compaction_threads,
        ..LsmOptions::benchmark_profile("/db")
    };
    let db = Arc::new(Db::open(&process, opts).expect("open store"));

    let bench = BenchConfig {
        workload: YcsbWorkload::A,
        client_threads: config.client_threads,
        records: config.records,
        value_size: config.value_size,
        ops_per_thread: config.ops_per_thread,
        max_duration: None,
        window_ns: config.window_ns,
        key_dist: KeyDistribution::Zipfian { theta: 0.99 },
        seed: config.seed,
        scan_limit: 50,
    };
    // Load phase is never traced (the paper pre-loads the dataset), and
    // the store is shut down afterwards so the traced run re-opens every
    // file *under* the tracer — as when RocksDB starts under DIO.
    load_phase(&db, &process, &bench, 4).expect("load phase");
    let loader = process.spawn_thread("db_bench_load");
    db.shutdown(&loader).expect("settle after load");
    drop(db);

    // Attach the tracer for the measured phase.
    let mut dio_tracer = None;
    let mut sysdig_tracer = None;
    let mut strace_probe_id = None;
    let backend = DocStore::new();
    match setup {
        TracingSetup::Vanilla => {}
        TracingSetup::Dio => {
            // "we configured DIO's tracer to capture exclusively open,
            // read, write, and close syscalls" (§III-C) — plus their
            // positional variants, which our store uses.
            // The paper provisions 256 MiB/CPU of ring buffer; the scaled
            // run needs far fewer slots (events are in-memory structs, and
            // preallocating half a million slots per CPU would swamp the
            // 1-CPU harness). 16 MiB/CPU keeps the same no-drop regime.
            let mut tracer_config = TracerConfig::new("rocksdb")
                .syscalls(data_path_syscalls())
                .ring(dio_ebpf::RingConfig::with_bytes_per_cpu(16 * 1024 * 1024))
                .kernel_costs(costs::dio_enter_ns(), costs::dio_exit_ns());
            if config.diagnose {
                // Stream the contention detector at the same window width
                // Fig. 3 uses for its latency plot; the prefix defaults
                // already name this workload's threads (db_bench clients,
                // rocksdb:low compactors).
                tracer_config =
                    tracer_config.diagnose(DiagnoseConfig::default().window_ns(config.window_ns));
            }
            if config.profile {
                tracer_config = tracer_config.profile(dio_profile::ProfileConfig::default());
            }
            dio_tracer = Some(Tracer::attach(tracer_config, &kernel, backend.clone()));
        }
        TracingSetup::Sysdig => {
            let tracer = SysdigTracer::new(
                SysdigConfig { probe_cost_ns: costs::sysdig_probe_ns(), ..Default::default() },
                kernel.num_cpus(),
            );
            strace_probe_id =
                Some(kernel.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>));
            sysdig_tracer = Some(tracer);
        }
        TracingSetup::Strace => {
            let tracer = StraceTracer::new(StraceConfig {
                stop_cost_ns: costs::strace_stop_ns(),
                record_lines: false,
            });
            strace_probe_id =
                Some(kernel.tracepoints().attach(Arc::clone(&tracer) as Arc<dyn SyscallProbe>));
        }
    }

    let db = Arc::new(
        Db::open(
            &process,
            LsmOptions {
                compaction_threads: config.compaction_threads,
                ..LsmOptions::benchmark_profile("/db")
            },
        )
        .expect("re-open store under tracer"),
    );
    if let Some(tracer) = &dio_tracer {
        // The store's flush/compaction/stall counters join the session's
        // self-telemetry (lsmkv.* metrics in the health index).
        db.bind_telemetry(tracer.registry());
    }
    let syscalls_before = kernel.syscalls_executed();
    let report = run(&db, &process, &bench);
    let syscalls = kernel.syscalls_executed() - syscalls_before;

    // Tear down.
    let closer = process.spawn_thread("closer");
    db.shutdown(&closer).expect("shutdown store");
    if let Some(id) = strace_probe_id {
        kernel.tracepoints().detach(id);
    }
    let dio = dio_tracer.map(|t| (t.stop(), backend.clone()));
    let sysdig_unresolved = sysdig_tracer.map(|t| t.unresolved_path_rate());

    RocksdbRunResult { setup, report, db_stats: db.stats(), syscalls, dio, sysdig_unresolved }
}

/// The syscall set DIO traces in the §III-C experiment.
pub fn data_path_syscalls() -> Vec<SyscallKind> {
    vec![
        SyscallKind::Open,
        SyscallKind::Openat,
        SyscallKind::Creat,
        SyscallKind::Read,
        SyscallKind::Pread64,
        SyscallKind::Write,
        SyscallKind::Pwrite64,
        SyscallKind::Close,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_smoke_run_completes() {
        let result = run_rocksdb(TracingSetup::Vanilla, &RocksdbRunConfig::smoke());
        assert_eq!(result.report.ops, 8 * 120);
        assert_eq!(result.report.errors, 0);
        assert!(result.syscalls > 0);
        assert!(result.dio.is_none());
    }

    #[test]
    fn dio_smoke_run_stores_events() {
        let result = run_rocksdb(TracingSetup::Dio, &RocksdbRunConfig::smoke());
        let (summary, backend) = result.dio.expect("dio outputs");
        assert!(summary.events_stored > 0);
        let idx = backend.index("dio-rocksdb");
        assert_eq!(idx.len() as u64, summary.events_stored);
        // Only the configured syscalls are present.
        let kinds = idx.search(
            &dio_backend::SearchRequest::match_all()
                .size(0)
                .agg("k", dio_backend::Aggregation::terms("syscall", 50)),
        );
        for bucket in kinds.aggs["k"].buckets() {
            let name = bucket.key.as_str().unwrap();
            assert!(
                ["open", "openat", "creat", "read", "pread64", "write", "pwrite64", "close"]
                    .contains(&name),
                "unexpected syscall {name}"
            );
        }
    }
}
