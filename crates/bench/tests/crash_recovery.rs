//! Crash-injection recovery harness (DESIGN.md §11.5).
//!
//! Each run spawns the `crash_runner` child with a seed-derived kill
//! point armed through `DIO_CRASH_POINT` — the child aborts partway
//! through a segment append, a hint-file write, or a compaction merge,
//! leaving a torn write on disk. The parent then reopens the store and
//! asserts the recovery contract:
//!
//! * every *acknowledged* document is present, byte-identical;
//! * every *acknowledged* tombstone holds (the document stays gone);
//! * every surviving document is one the workload actually attempted
//!   (recovery never invents or mangles data);
//! * the engine's full invariant check ([`StorageEngine::verify`])
//!   passes — keydir slots resolve, segments replay cleanly, the
//!   active segment is the max generation.
//!
//! Knobs (all env, all optional):
//! * `DIO_CRASH_SEEDS` — number of seeded runs (default 8; CI uses 50+);
//! * `DIO_CRASH_SEED_BASE` — first seed (reproduce a failure by setting
//!   this to the seed the panic message names, with `DIO_CRASH_SEEDS=1`);
//! * `DIO_CRASH_DIR` — where the per-run store directories live.
//!   Surviving directories of failed runs are kept for post-mortem.
//!
//! [`StorageEngine::verify`]: dio_backend::StorageEngine::verify

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::Command;

use dio_backend::{DocStore, SearchRequest};
use dio_bench::crash_schedule as cs;

const STEPS: usize = 260;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn crash_dir(tag: &str) -> PathBuf {
    let base =
        std::env::var("DIO_CRASH_DIR").map(PathBuf::from).unwrap_or_else(|_| std::env::temp_dir());
    base.join(format!("dio-crash-{}-{tag}", std::process::id()))
}

/// Derives the kill point for `seed`: a site, how many hits of that
/// site to let pass, and the byte offset within the targeted write at
/// which the child dies.
fn crash_spec(seed: u64) -> String {
    let site = match seed % 3 {
        0 => "append",
        1 => "hint",
        _ => "compact",
    };
    let countdown = match seed % 3 {
        0 => cs::mix(seed, 101) % 220, // ~260 steps => plenty of appends
        1 => cs::mix(seed, 102) % 25,  // seals + merges write hints
        _ => cs::mix(seed, 103) % 6,   // ~5% of steps compact
    };
    let split = cs::mix(seed, 104) % 96;
    format!("{site}:{countdown}:{split}")
}

/// One seeded child run + recovery check. Returns whether the child
/// actually died at the armed point (vs. completing the schedule).
fn run_one(seed: u64) -> bool {
    let spec = crash_spec(seed);
    let dir = crash_dir(&format!("seed{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = format!(
        "seed {seed} spec {spec} dir {} (reproduce: DIO_CRASH_SEED_BASE={seed} DIO_CRASH_SEEDS=1)",
        dir.display()
    );

    let output = Command::new(env!("CARGO_BIN_EXE_crash_runner"))
        .arg(&dir)
        .arg(seed.to_string())
        .arg(STEPS.to_string())
        .env("DIO_CRASH_POINT", &spec)
        .output()
        .expect("spawn crash_runner");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let crashed = !output.status.success();
    assert!(
        crashed || stdout.contains("DONE"),
        "child exited 0 without finishing — {ctx}\n{stdout}"
    );

    // Parse the progress protocol into per-step statuses.
    let mut started = HashSet::new();
    let mut acked = HashSet::new();
    for line in stdout.lines() {
        if let Some(n) = line.strip_prefix("S ") {
            started.insert(n.parse::<usize>().expect("step number"));
        } else if let Some(n) = line.strip_prefix("A ") {
            acked.insert(n.parse::<usize>().expect("step number"));
        }
    }

    let sched = cs::schedule(seed, STEPS);
    let exp = cs::expectation(&sched, |n| {
        if acked.contains(&n) {
            cs::StepStatus::Acked
        } else if started.contains(&n) {
            cs::StepStatus::Limbo
        } else {
            cs::StepStatus::NotReached
        }
    });

    // Reopen and check the contract.
    let store = DocStore::open_with(&dir, cs::crash_config())
        .unwrap_or_else(|e| panic!("reopen after crash failed: {e} — {ctx}"));
    let engine = store.storage().expect("persistent store");
    engine.verify().unwrap_or_else(|e| panic!("invariant check failed: {e} — {ctx}"));

    for ((index, id), body) in &exp.must_exist {
        let got = store.get_index(index).and_then(|i| i.get(*id));
        assert_eq!(got.as_ref(), Some(body), "acked document {index}/{id} lost or mangled — {ctx}");
    }
    for (index, id) in &exp.must_not_exist {
        let got = store.get_index(index).and_then(|i| i.get(*id));
        assert_eq!(got, None, "acked tombstone {index}/{id} undone — {ctx}");
    }
    // Every survivor is an attempted document with an exact body.
    for index in store.index_names() {
        let resp = store.index(&index).search(&SearchRequest::match_all().size(1_000_000));
        for hit in resp.hits {
            let expect = exp.attempted.get(&(index.clone(), hit.id));
            assert_eq!(
                Some(&hit.source),
                expect,
                "survivor {index}/{} is not an attempted write — {ctx}",
                hit.id
            );
            assert!(
                !exp.must_not_exist.contains(&(index.clone(), hit.id)),
                "deleted document {index}/{} resurrected — {ctx}",
                hit.id
            );
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    crashed
}

#[test]
fn seeded_kill_points_lose_no_acknowledged_write() {
    let seeds = env_u64("DIO_CRASH_SEEDS", 8);
    let base = env_u64("DIO_CRASH_SEED_BASE", 0xD10);
    let mut crashed = 0u64;
    for seed in base..base + seeds {
        if run_one(seed) {
            crashed += 1;
        }
    }
    // The harness only earns its keep if the kills actually land. The
    // seed→kill-point map is deterministic, so this can't flake: if it
    // trips, the crash sites moved and the countdown ranges in
    // `crash_spec` need retuning.
    assert!(
        crashed * 2 >= seeds,
        "only {crashed}/{seeds} runs died at the armed point — kill points need retuning"
    );
}

/// The child with no crash point armed completes the schedule, and a
/// plain reopen preserves exactly the expected state (every step
/// acked). This pins the harness itself: if the protocol or schedule
/// replay were broken, this test would fail without any crash involved.
#[test]
fn uncrashed_run_roundtrips_exactly() {
    let seed = 0xFACE;
    let dir = crash_dir("clean");
    let _ = std::fs::remove_dir_all(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_crash_runner"))
        .arg(&dir)
        .arg(seed.to_string())
        .arg(STEPS.to_string())
        .env_remove("DIO_CRASH_POINT")
        .output()
        .expect("spawn crash_runner");
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    assert!(String::from_utf8_lossy(&output.stdout).contains("DONE"));

    let sched = cs::schedule(seed, STEPS);
    let exp = cs::expectation(&sched, |_| cs::StepStatus::Acked);
    let store = DocStore::open_with(&dir, cs::crash_config()).expect("reopen");
    store.storage().expect("persistent").verify().expect("invariants");
    let mut live = 0usize;
    for ((index, id), body) in &exp.must_exist {
        assert_eq!(store.get_index(index).and_then(|i| i.get(*id)).as_ref(), Some(body));
        live += 1;
    }
    let total: usize = store.index_names().iter().map(|n| store.index(n).len()).sum();
    assert_eq!(total, live, "no extra documents beyond the expected live set");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
