#![warn(missing_docs)]

//! DIO: a generic tool for observing and diagnosing applications' storage
//! I/O through system call observability.
//!
//! This is the facade crate of the DSN 2023 reproduction. It wires the
//! pieces of Fig. 1 together:
//!
//! * a [`Kernel`] (simulated substrate) whose tracepoints the *tracer*
//!   hooks;
//! * the *tracer* ([`dio_tracer::Tracer`]), which filters and enriches
//!   syscalls in kernel space and ships them asynchronously;
//! * the *backend* ([`DocStore`]), which indexes events and runs queries,
//!   aggregations and the file-path correlation algorithm;
//! * the *visualizer* ([`dio_viz`]), whose dashboards render the stored
//!   events.
//!
//! # Examples
//!
//! ```
//! use dio_core::{Dio, TracerConfig};
//!
//! let dio = Dio::new();
//! let session = dio.trace(TracerConfig::new("quickstart"));
//!
//! let app = dio.kernel().spawn_process("app");
//! let thread = app.spawn_thread("app");
//! let fd = thread.creat("/data.bin", 0o644)?;
//! thread.write(fd, b"hello")?;
//! thread.close(fd)?;
//!
//! let report = session.stop();
//! assert_eq!(report.trace.events_stored, 3);
//! assert_eq!(report.correlation.events_updated, 2); // write + close gain a path
//! # Ok::<(), dio_core::Errno>(())
//! ```

use std::net::SocketAddr;
use std::sync::Arc;

pub use dio_backend::{
    AggResult, Aggregation, Bucket, DocStore, Hit, Index, Query, SearchRequest, SearchResponse,
    ShardReport, SortOrder, StatsResult, StorageConfig, StorageEngine, StorageReport, Subscription,
    DEFAULT_SUBSCRIPTION_CAPACITY,
};
pub use dio_correlate::{
    analyze_offsets, correlate_paths, detect_contention, detect_data_loss, detect_small_io,
    diff_sessions, latency_profile, AccessPattern, ContentionConfig, ContentionReport,
    CorrelationReport, CountDelta, DataLossIncident, FileAccessProfile, SessionDiff, SmallIoConfig,
    SmallIoFinding, SyscallLatencyProfile, WindowActivity,
};
pub use dio_diagnose::{
    Alert, AlertKind, DiagnoseConfig, DiagnosisEngine, EngineStats, Severity, SubscriptionHandle,
};
pub use dio_ebpf::{FilterSpec, RingConfig, RingStats};
pub use dio_kernel::{
    DiskProfile, Errno, Kernel, OpenFlags, Process, SimClock, SysResult, ThreadCtx, Vfs, Whence,
};
pub use dio_profile::{
    format_ns, to_dot, to_json, to_mermaid, DfgMiner, DfgSnapshot, EdgeSnapshot, GraphSnapshot,
    NodeSnapshot, ProfileConfig,
};
pub use dio_rules::{
    compile as compile_rules, parse_rules, verify_rules, RuleCheck, RuleSet, RulesError,
    RulesReport,
};
pub use dio_serve::{lint_openmetrics, serve, ServeHandle, ServeState};
pub use dio_syscall::{FileTag, FileType, Pid, SyscallClass, SyscallEvent, SyscallKind, Tid};
pub use dio_telemetry::{
    trace, FlightRecorder, SpanCollector, SpanCtx, SpanSummary, Stage, StageStamps, TraceSpan,
};
pub use dio_tracer::{
    generate_session_name, AttachError, RuleCompileError, TraceSummary, Tracer, TracerConfig,
};
pub use dio_viz::{
    dashboards, latest_storage_report, render_alert_history, render_compaction_timeline,
    render_dfg_panel, render_health_dashboard, render_latency_waterfall, render_rules_panel,
    render_storage_panel, render_top, sparkline, Chart, Column, Dashboard, HealthReport, Heatmap,
    Panel, PanelSpec, Series, Table, TopOptions,
};

/// The assembled DIO deployment: one kernel under observation plus the
/// analysis pipeline (backend + visualizer).
///
/// Cloning shares both the kernel and the backend, mirroring the paper's
/// deployment where multiple tracer executions feed one pipeline.
#[derive(Debug, Clone)]
pub struct Dio {
    kernel: Kernel,
    backend: DocStore,
}

impl Dio {
    /// A DIO deployment over a fresh default kernel.
    pub fn new() -> Self {
        Self::with_kernel(Kernel::new())
    }

    /// A DIO deployment observing an existing kernel.
    pub fn with_kernel(kernel: Kernel) -> Self {
        Dio { kernel, backend: DocStore::new() }
    }

    /// The kernel under observation.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The analysis backend.
    pub fn backend(&self) -> &DocStore {
        &self.backend
    }

    /// Starts a tracing session.
    ///
    /// When `DIO_SERVE_ADDR` is set (e.g. `127.0.0.1:9900`, port `0` for
    /// ephemeral), the session's live introspection server starts
    /// automatically on that address; a bind failure is reported on
    /// stderr and tracing proceeds unserved.
    pub fn trace(&self, config: TracerConfig) -> DioSession {
        let index_name = config.index_name();
        let session_name = config.session().to_string();
        let tracer = Tracer::attach(config, &self.kernel, self.backend.clone());
        let mut session = DioSession {
            backend: self.backend.clone(),
            tracer: Some(tracer),
            session_name,
            index_name,
            auto_correlate: true,
            server: None,
        };
        if let Ok(addr) = std::env::var("DIO_SERVE_ADDR") {
            match session.serve(addr.as_str()) {
                Ok(bound) => eprintln!("dio: serving introspection on http://{bound}"),
                Err(e) => eprintln!("dio: DIO_SERVE_ADDR={addr} bind failed: {e}"),
            }
        }
        session
    }

    /// The backend index of a previous session (post-mortem analysis).
    pub fn session_index(&self, session: &str) -> Option<Arc<Index>> {
        self.backend.get_index(&format!("dio-{session}"))
    }

    /// Names of all stored sessions.
    ///
    /// Health indices (`dio-telemetry-<session>`) are excluded — use
    /// [`Dio::telemetry_index`] to reach those.
    pub fn sessions(&self) -> Vec<String> {
        self.backend
            .index_names()
            .into_iter()
            .filter(|n| !n.starts_with("dio-telemetry-"))
            .filter_map(|n| n.strip_prefix("dio-").map(str::to_string))
            .collect()
    }

    /// The health-document index of a session, if self-telemetry was on.
    pub fn telemetry_index(&self, session: &str) -> Option<Arc<Index>> {
        self.backend.get_index(&format!("dio-telemetry-{session}"))
    }
}

impl Default for Dio {
    fn default() -> Self {
        Self::new()
    }
}

/// Final report of a tracing session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Tracer-side counters (stored/dropped/filtered events).
    pub trace: TraceSummary,
    /// Path-correlation outcome.
    pub correlation: CorrelationReport,
}

/// A live tracing session bound to the analysis pipeline.
///
/// Dropping the session stops the tracer; prefer [`DioSession::stop`] to
/// also run the file-path correlation algorithm and obtain the report.
#[derive(Debug)]
pub struct DioSession {
    backend: DocStore,
    tracer: Option<Tracer>,
    session_name: String,
    index_name: String,
    auto_correlate: bool,
    server: Option<ServeHandle>,
}

impl DioSession {
    /// The session name.
    pub fn session(&self) -> &str {
        &self.session_name
    }

    /// Disables the automatic path correlation at [`DioSession::stop`].
    pub fn manual_correlation(mut self) -> Self {
        self.auto_correlate = false;
        self
    }

    /// The backend index receiving this session's events.
    pub fn index(&self) -> Arc<Index> {
        self.backend.index(&self.index_name)
    }

    /// Live ring-buffer counters.
    pub fn ring_stats(&self) -> RingStats {
        self.tracer.as_ref().map(|t| t.ring_stats()).unwrap_or_default()
    }

    /// Events stored at the backend so far.
    pub fn events_stored(&self) -> u64 {
        self.tracer.as_ref().map(|t| t.events_stored()).unwrap_or(0)
    }

    /// Renders a dashboard over the session's events (near real-time: the
    /// session keeps running).
    pub fn render(&self, dashboard: &Dashboard) -> String {
        dashboard.render(&self.index())
    }

    /// The in-process diagnosis engine, when the session was started with
    /// [`TracerConfig::diagnose`] — poll it for alerts *while* the trace
    /// runs.
    pub fn diagnosis(&self) -> Option<Arc<DiagnosisEngine>> {
        self.tracer.as_ref().and_then(|t| t.diagnosis())
    }

    /// Renders one tick of the `dio top` live view: trailing-window
    /// syscall rates per process and file, plus the engine's currently
    /// active alerts (empty when diagnosis is off).
    pub fn top(&self, opts: &TopOptions) -> String {
        let alerts = self.diagnosis().map(|e| e.active_alerts()).unwrap_or_default();
        let mut out = render_top(&self.index(), &alerts, opts);
        // Sessions with loaded diagnosis rules list them with live
        // fire/suppress counters below the alerts.
        if let Some(engine) = self.diagnosis() {
            let reports = engine.dynamic_reports();
            if !reports.is_empty() {
                out.push('\n');
                out.push_str(&render_rules_panel(&reports));
            }
        }
        // Profiled sessions get the live directly-follows-graph panel:
        // the busiest syscall transitions with latency percentiles.
        if let Some(miner) = self.tracer.as_ref().and_then(|t| t.profiler()) {
            out.push('\n');
            out.push_str(&dio_viz::render_dfg_panel(&dio_profile::to_json(&miner.snapshot())));
        }
        // Persistent sessions get the storage engine's occupancy and
        // compaction-debt panel below the live view.
        if let Some(report) = self.backend.storage_report() {
            out.push('\n');
            out.push_str(&render_storage_panel(&report, None));
        }
        out
    }

    /// Starts the live introspection server on `addr` (port `0` binds an
    /// ephemeral port; see [`dio_serve`] for the endpoint catalogue) and
    /// returns the bound address. The server runs until the session stops
    /// or [`DioSession::stop_serving`] is called; starting twice replaces
    /// the previous server.
    ///
    /// # Errors
    ///
    /// Propagates the bind error when `addr` is unavailable.
    pub fn serve(&mut self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<SocketAddr> {
        let tracer = self.tracer.as_ref().expect("tracer present until stop");
        let state = ServeState {
            session: self.session_name.clone(),
            registry: Arc::clone(tracer.registry()),
            backend: Arc::new(self.backend.clone()),
            index_name: self.index_name.clone(),
            telemetry_index: format!("dio-telemetry-{}", self.session_name),
            engine: tracer.diagnosis(),
            profiler: tracer.profiler(),
        };
        let handle = serve(addr, state)?;
        let bound = handle.addr();
        self.server = Some(handle);
        Ok(bound)
    }

    /// The introspection server's bound address, when one is running.
    pub fn serve_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Stops the introspection server (if running) without stopping the
    /// trace.
    pub fn stop_serving(&mut self) {
        self.server = None;
    }

    /// Writes the flight recorder's current spans to
    /// `results/flightrec-manual-<pid>.json` (Chrome Trace Event Format
    /// plus a critical-path summary) and returns the path. `None` when
    /// no dump directory is available (see `DIO_RESULTS_DIR`).
    pub fn dump_flight_recorder(&self) -> Option<std::path::PathBuf> {
        trace::recorder().dump("manual")
    }

    /// Stops tracing, drains buffered events, runs path correlation (unless
    /// [`DioSession::manual_correlation`] was selected) and reports.
    pub fn stop(mut self) -> SessionReport {
        let tracer = self.tracer.take().expect("tracer present until stop");
        let trace = tracer.stop();
        // The tracer's shutdown ships the final alerts and health docs
        // before this point; connected SSE clients get a last chance at
        // them before the server's threads are joined.
        self.server = None;
        let correlation = if self.auto_correlate {
            correlate_paths(&self.index())
        } else {
            CorrelationReport::default()
        };
        SessionReport { trace, correlation }
    }

    /// Blocks until every process in `pids` has exited, then stops — the
    /// paper's default tracer lifecycle: "the tracer executes along with
    /// the targeted application, stopping once its main and child
    /// processes finish" (§II-F).
    pub fn stop_when_exited(self, kernel: &Kernel, pids: &[Pid]) -> SessionReport {
        while !kernel.all_exited(pids) {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_dio() -> Dio {
        Dio::with_kernel(Kernel::builder().root_disk(DiskProfile::instant()).build())
    }

    #[test]
    fn end_to_end_trace_correlate_render() {
        let dio = fast_dio();
        let session = dio.trace(TracerConfig::new("full"));
        let t = dio.kernel().spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"26 bytes of log content...").unwrap();
        let mut buf = [0u8; 8];
        t.lseek(fd, 0, Whence::Set).unwrap();
        t.read(fd, &mut buf).unwrap();
        t.close(fd).unwrap();

        let rendered = {
            // Near-real-time render while the session is live.
            std::thread::sleep(std::time::Duration::from_millis(300));
            session.render(&dashboards::syscall_table(Query::MatchAll))
        };
        assert!(rendered.contains("openat"));

        let report = session.stop();
        assert_eq!(report.trace.events_stored, 5);
        // write/lseek/read/close resolve to the open's path.
        assert_eq!(report.correlation.events_updated, 4);
        assert_eq!(report.correlation.events_unresolved, 0);

        let idx = dio.session_index("full").unwrap();
        assert_eq!(idx.count(&Query::term("file_path", "/app.log")), 5);
    }

    #[test]
    fn sessions_listed() {
        let dio = fast_dio();
        let s1 = dio.trace(TracerConfig::new("a"));
        let s2 = dio.trace(TracerConfig::new("b"));
        s1.stop();
        s2.stop();
        assert_eq!(dio.sessions(), vec!["a".to_string(), "b".to_string()]);
        assert!(dio.session_index("a").is_some());
        assert!(dio.session_index("zzz").is_none());
    }

    #[test]
    fn manual_correlation_skips_pass() {
        let dio = fast_dio();
        let session = dio.trace(TracerConfig::new("manual")).manual_correlation();
        let t = dio.kernel().spawn_process("p").spawn_thread("p");
        let fd = t.creat("/f", 0o644).unwrap();
        t.write(fd, b"x").unwrap();
        let report = session.stop();
        assert_eq!(report.correlation, CorrelationReport::default());
        // The write still has no file_path until correlation runs.
        let idx = dio.session_index("manual").unwrap();
        assert_eq!(
            idx.count(
                &Query::bool_query()
                    .must(Query::term("syscall", "write"))
                    .must(Query::exists("file_path"))
                    .build()
            ),
            0
        );
        assert_eq!(correlate_paths(&idx).events_updated, 1);
    }

    #[test]
    fn live_diagnosis_and_top_view() {
        let dio = fast_dio();
        let session = dio.trace(TracerConfig::new("live").diagnose(DiagnoseConfig::default()));
        let t = dio.kernel().spawn_process("app").spawn_thread("app");
        let fd = t.creat("/hot.bin", 0o644).unwrap();
        for _ in 0..20 {
            t.write(fd, b"payload").unwrap();
        }
        t.close(fd).unwrap();

        let engine = session.diagnosis().expect("diagnose configured");
        // Wait for the tap (engine) *and* the shipper (backend index) to
        // both see the workload before rendering.
        for _ in 0..500 {
            if engine.stats().observed >= 22 && session.events_stored() >= 22 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let screen = session.top(&TopOptions::default());
        assert!(screen.contains("dio top"), "{screen}");
        assert!(screen.contains("app"), "{screen}");

        let report = session.stop();
        let stats = report.trace.diagnosis.expect("summary carries stats");
        assert_eq!(stats.observed, report.trace.events_stored);
    }

    #[test]
    fn rules_sessions_show_the_rules_panel_in_top() {
        let dio = fast_dio();
        let session = dio.trace(TracerConfig::new("ruled-top").shipped_rules());
        let t = dio.kernel().spawn_process("app").spawn_thread("app");
        let fd = t.creat("/f.bin", 0o644).unwrap();
        t.write(fd, b"x").unwrap();
        t.close(fd).unwrap();
        let engine = session.diagnosis().expect("shipped rules imply diagnosis");
        for _ in 0..500 {
            if engine.stats().observed >= 3 && session.events_stored() >= 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let screen = session.top(&TopOptions::default());
        assert!(screen.contains("### Rules"), "{screen}");
        assert!(screen.contains("data_loss"), "{screen}");
        assert!(screen.contains("contention_skew"), "{screen}");
        session.stop();
    }

    #[test]
    fn top_without_diagnosis_still_renders() {
        let dio = fast_dio();
        let session = dio.trace(TracerConfig::new("plain-top"));
        let t = dio.kernel().spawn_process("p").spawn_thread("p");
        t.creat("/f", 0o644).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(300));
        assert!(session.diagnosis().is_none());
        let screen = session.top(&TopOptions::default());
        assert!(screen.contains("none active"));
        session.stop();
    }

    #[test]
    fn clone_shares_pipeline() {
        let dio = fast_dio();
        let clone = dio.clone();
        let session = dio.trace(TracerConfig::new("shared"));
        let t = clone.kernel().spawn_process("p").spawn_thread("p");
        t.creat("/x", 0o644).unwrap();
        session.stop();
        assert_eq!(clone.session_index("shared").unwrap().len(), 1);
    }
}
