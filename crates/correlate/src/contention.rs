//! Multi-threaded I/O contention detection (the Fig. 4 analysis).
//!
//! The paper identifies RocksDB's tail-latency root cause by observing
//! that "when multiple compaction threads submit I/O requests, the number
//! of syscalls of db_bench threads decreases". This module automates the
//! observation: it windows the trace, counts per-window activity of client
//! vs background threads, and flags windows where many background threads
//! are active while client throughput dips.

use dio_backend::{Aggregation, Index, SearchRequest};

/// Configuration of the contention analysis.
#[derive(Debug, Clone)]
pub struct ContentionConfig {
    /// Window width in nanoseconds (Fig. 4 uses per-second buckets).
    pub window_ns: u64,
    /// Thread-name prefix of foreground/client threads (`db_bench`).
    pub client_prefix: String,
    /// Thread-name prefix of background threads (`rocksdb:low`).
    pub background_prefix: String,
    /// Minimum simultaneously-active background threads to flag a window
    /// (the paper observes spikes when ≥5 compaction threads do I/O).
    pub background_threshold: usize,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            window_ns: 1_000_000_000,
            client_prefix: "db_bench".to_string(),
            background_prefix: "rocksdb:low".to_string(),
            background_threshold: 5,
        }
    }
}

/// Activity inside one time window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowActivity {
    /// Window start (ns).
    pub start_ns: u64,
    /// Syscalls issued by client threads.
    pub client_ops: u64,
    /// Syscalls issued by background threads.
    pub background_ops: u64,
    /// Distinct background threads active in the window.
    pub active_background_threads: usize,
    /// Whether the window exceeds the background-thread threshold.
    pub contended: bool,
}

/// Result of the contention analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Per-window activity, time-ordered.
    pub windows: Vec<WindowActivity>,
    /// Mean client ops/window during contended windows.
    pub client_ops_contended: f64,
    /// Mean client ops/window during calm windows.
    pub client_ops_calm: f64,
}

impl ContentionReport {
    /// Windows flagged as contended.
    pub fn contended_windows(&self) -> impl Iterator<Item = &WindowActivity> {
        self.windows.iter().filter(|w| w.contended)
    }

    /// Whether the trace exhibits the Fig. 4 signature: contended windows
    /// exist and client throughput drops in them.
    pub fn contention_detected(&self) -> bool {
        self.windows.iter().any(|w| w.contended) && self.client_ops_contended < self.client_ops_calm
    }

    /// Client throughput degradation factor (calm / contended mean ops).
    pub fn degradation_factor(&self) -> f64 {
        if self.client_ops_contended <= 0.0 {
            f64::INFINITY
        } else {
            self.client_ops_calm / self.client_ops_contended
        }
    }
}

/// Analyzes a session index for multi-threaded I/O contention.
pub fn detect_contention(index: &Index, config: &ContentionConfig) -> ContentionReport {
    let agg = Aggregation::date_histogram("time", config.window_ns)
        .sub("by_thread", Aggregation::terms("proc_name", 64));
    let response = index.search(&SearchRequest::match_all().size(0).agg("per_window", agg));

    let mut windows = Vec::new();
    for bucket in response.aggs["per_window"].buckets() {
        let start_ns = bucket.key.as_u64().unwrap_or(0);
        let mut client_ops = 0u64;
        let mut background_ops = 0u64;
        let mut active_background = 0usize;
        for thread in bucket.sub["by_thread"].buckets() {
            let name = thread.key.as_str().unwrap_or("");
            if name.starts_with(config.client_prefix.as_str()) {
                client_ops += thread.doc_count;
            } else if name.starts_with(config.background_prefix.as_str()) {
                background_ops += thread.doc_count;
                if thread.doc_count > 0 {
                    active_background += 1;
                }
            }
        }
        windows.push(WindowActivity {
            start_ns,
            client_ops,
            background_ops,
            active_background_threads: active_background,
            contended: active_background >= config.background_threshold,
        });
    }

    let mean = |contended: bool| {
        let vals: Vec<u64> =
            windows.iter().filter(|w| w.contended == contended).map(|w| w.client_ops).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<u64>() as f64 / vals.len() as f64
        }
    };
    ContentionReport { client_ops_contended: mean(true), client_ops_calm: mean(false), windows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Builds a window of events: `clients` client ops and `bg_threads`
    /// background threads doing `bg_ops_each` ops apiece.
    fn window(idx: &Index, start_s: u64, clients: usize, bg_threads: usize, bg_ops_each: usize) {
        let base = start_s * 1_000_000_000;
        let mut docs = Vec::new();
        for i in 0..clients {
            docs.push(
                json!({"proc_name": "db_bench", "time": base + i as u64, "syscall": "write"}),
            );
        }
        for t in 0..bg_threads {
            for i in 0..bg_ops_each {
                docs.push(json!({
                    "proc_name": format!("rocksdb:low{t}"),
                    "time": base + 100 + i as u64,
                    "syscall": "read",
                }));
            }
        }
        idx.bulk(docs);
    }

    #[test]
    fn detects_the_fig4_signature() {
        let idx = Index::new("t");
        // Calm: 1-2 compaction threads, many client ops.
        window(&idx, 0, 100, 1, 10);
        window(&idx, 1, 110, 2, 10);
        // Contended: 6 compaction threads, client ops dip.
        window(&idx, 2, 20, 6, 30);
        window(&idx, 3, 15, 7, 30);
        // Recovery.
        window(&idx, 4, 105, 1, 10);

        let report = detect_contention(&idx, &ContentionConfig::default());
        assert_eq!(report.windows.len(), 5);
        assert!(report.contention_detected());
        assert_eq!(report.contended_windows().count(), 2);
        assert!(report.windows[2].contended);
        assert_eq!(report.windows[2].active_background_threads, 6);
        assert!(report.degradation_factor() > 3.0);
    }

    #[test]
    fn no_contention_in_calm_trace() {
        let idx = Index::new("t");
        window(&idx, 0, 100, 2, 10);
        window(&idx, 1, 90, 1, 10);
        let report = detect_contention(&idx, &ContentionConfig::default());
        assert!(!report.contention_detected());
        assert!(report.contended_windows().count() == 0);
    }

    #[test]
    fn busy_background_without_client_dip_is_not_contention() {
        let idx = Index::new("t");
        window(&idx, 0, 100, 1, 5);
        window(&idx, 1, 120, 6, 5); // many bg threads but clients unaffected
        let report = detect_contention(&idx, &ContentionConfig::default());
        assert_eq!(report.contended_windows().count(), 1);
        assert!(!report.contention_detected(), "client throughput did not drop");
    }

    #[test]
    fn threshold_is_configurable() {
        let idx = Index::new("t");
        window(&idx, 0, 100, 3, 10);
        let strict = ContentionConfig { background_threshold: 3, ..Default::default() };
        let lax = ContentionConfig::default();
        assert_eq!(detect_contention(&idx, &strict).contended_windows().count(), 1);
        assert_eq!(detect_contention(&idx, &lax).contended_windows().count(), 0);
    }

    #[test]
    fn empty_index_yields_empty_report() {
        let idx = Index::new("t");
        let report = detect_contention(&idx, &ContentionConfig::default());
        assert!(report.windows.is_empty());
        assert!(!report.contention_detected());
    }
}
