//! Stale-offset data-loss detection (the Fig. 2 analysis, automated).
//!
//! The Fluent Bit bug (issue #1875) manifests in a trace as: a file is
//! removed and re-created, the new *generation* receives the same
//! `dev|ino` (inode reuse), and the reader's **first read of the new
//! generation starts at a non-zero offset and returns 0 bytes** — the
//! bytes before that offset are silently lost.

use std::collections::{BTreeMap, HashMap};

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_syscall::FileTag;

/// One detected data-loss incident.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLossIncident {
    /// The tag of the file generation whose content was skipped.
    pub tag: FileTag,
    /// Resolved path, when correlation ran.
    pub path: Option<String>,
    /// The stale offset the reader started from.
    pub stale_offset: u64,
    /// Bytes written to the generation before that offset — an upper bound
    /// on the data lost.
    pub bytes_at_risk: u64,
    /// The tag of the earlier generation whose state leaked into this one.
    pub previous_generation: FileTag,
    /// Name of the process that performed the misread.
    pub reader: String,
}

/// Scans a session index for stale-offset reads across inode-reuse
/// generations.
///
/// Requires events with `file_tag`, `offset` and `ret_val` fields, i.e. a
/// DIO trace with enrichment enabled — the paper notes DIO is the only
/// tracer collecting the file offsets this diagnosis needs.
pub fn detect_data_loss(index: &Index) -> Vec<DataLossIncident> {
    // Pull all tag-bearing data events, time-ordered.
    let response = index.search(
        &SearchRequest::new(
            Query::bool_query()
                .must(Query::exists("file_tag"))
                .must(Query::terms("syscall", ["read", "write", "pread64", "pwrite64"]))
                .build(),
        )
        .sort_by("time", SortOrder::Asc)
        .size(usize::MAX),
    );

    // Group per generation; remember generation order per (dev, ino).
    let mut generations: BTreeMap<(u64, u64), Vec<FileTag>> = BTreeMap::new();
    let mut writes_per_tag: HashMap<FileTag, u64> = HashMap::new();
    let mut first_read: HashMap<FileTag, (u64, i64, String)> = HashMap::new(); // offset, ret, reader
    let mut path_per_tag: HashMap<FileTag, String> = HashMap::new();

    for hit in &response.hits {
        let Some(tag) = hit.source["file_tag"].as_str().and_then(|s| s.parse::<FileTag>().ok())
        else {
            continue;
        };
        let gens = generations.entry((tag.dev, tag.ino)).or_default();
        if !gens.contains(&tag) {
            gens.push(tag);
        }
        if let Some(p) = hit.source["file_path"].as_str() {
            path_per_tag.entry(tag).or_insert_with(|| p.to_string());
        }
        let syscall = hit.source["syscall"].as_str().unwrap_or("");
        let ret = hit.source["ret_val"].as_i64().unwrap_or(0);
        match syscall {
            "write" | "pwrite64" if ret > 0 => {
                *writes_per_tag.entry(tag).or_insert(0) += ret as u64;
            }
            "read" | "pread64" => {
                first_read.entry(tag).or_insert_with(|| {
                    let offset = hit.source["offset"].as_u64().unwrap_or(0);
                    let reader = hit.source["proc_name"].as_str().unwrap_or("").to_string();
                    (offset, ret, reader)
                });
            }
            _ => {}
        }
    }

    let mut incidents = Vec::new();
    for gens in generations.values() {
        // Only later generations can inherit stale state from a predecessor.
        for (i, tag) in gens.iter().enumerate().skip(1) {
            let Some(&(offset, ret, ref reader)) = first_read.get(tag) else {
                continue;
            };
            if offset > 0 && ret == 0 {
                let written = writes_per_tag.get(tag).copied().unwrap_or(0);
                incidents.push(DataLossIncident {
                    tag: *tag,
                    path: path_per_tag.get(tag).cloned(),
                    stale_offset: offset,
                    bytes_at_risk: written.min(offset),
                    previous_generation: gens[i - 1],
                    reader: reader.clone(),
                });
            }
        }
    }
    incidents
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(
        time: u64,
        proc: &str,
        syscall: &str,
        ret: i64,
        tag: &str,
        offset: Option<u64>,
    ) -> serde_json::Value {
        let mut doc = json!({
            "time": time, "proc_name": proc, "syscall": syscall,
            "ret_val": ret, "file_tag": tag,
        });
        if let Some(o) = offset {
            doc["offset"] = json!(o);
        }
        doc
    }

    /// The exact Fig. 2a scenario.
    fn buggy_trace(idx: &Index) {
        idx.bulk(vec![
            ev(1, "app", "write", 26, "7340032|12|100", Some(0)),
            ev(2, "fluent-bit", "read", 26, "7340032|12|100", Some(0)),
            ev(3, "fluent-bit", "read", 0, "7340032|12|100", Some(26)),
            // unlink + recreate: same dev|ino, new generation.
            ev(4, "app", "write", 16, "7340032|12|200", Some(0)),
            // fluent-bit lseeks to 26 and reads 0 bytes: the bug.
            ev(5, "fluent-bit", "read", 0, "7340032|12|200", Some(26)),
        ]);
    }

    /// The Fig. 2b (fixed) scenario.
    fn fixed_trace(idx: &Index) {
        idx.bulk(vec![
            ev(1, "app", "write", 26, "7340032|12|100", Some(0)),
            ev(2, "flb-pipeline", "read", 26, "7340032|12|100", Some(0)),
            ev(3, "flb-pipeline", "read", 0, "7340032|12|100", Some(26)),
            ev(4, "app", "write", 16, "7340032|12|200", Some(0)),
            ev(5, "flb-pipeline", "read", 16, "7340032|12|200", Some(0)),
            ev(6, "flb-pipeline", "read", 0, "7340032|12|200", Some(16)),
        ]);
    }

    #[test]
    fn flags_the_buggy_version() {
        let idx = Index::new("t");
        buggy_trace(&idx);
        let incidents = detect_data_loss(&idx);
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.stale_offset, 26);
        assert_eq!(inc.bytes_at_risk, 16);
        assert_eq!(inc.reader, "fluent-bit");
        assert_eq!(inc.tag, "7340032|12|200".parse().unwrap());
        assert_eq!(inc.previous_generation, "7340032|12|100".parse().unwrap());
    }

    #[test]
    fn passes_the_fixed_version() {
        let idx = Index::new("t");
        fixed_trace(&idx);
        assert!(detect_data_loss(&idx).is_empty());
    }

    #[test]
    fn eof_read_on_first_generation_is_benign() {
        let idx = Index::new("t");
        idx.bulk(vec![
            ev(1, "app", "write", 10, "1|5|100", Some(0)),
            ev(2, "tailer", "read", 10, "1|5|100", Some(0)),
            ev(3, "tailer", "read", 0, "1|5|100", Some(10)), // normal EOF poll
        ]);
        assert!(detect_data_loss(&idx).is_empty());
    }

    #[test]
    fn includes_correlated_path() {
        let idx = Index::new("t");
        buggy_trace(&idx);
        idx.update_by_query(&Query::term("file_tag", "7340032|12|200"), |d| {
            d["file_path"] = json!("/logs/app.log");
        });
        let incidents = detect_data_loss(&idx);
        assert_eq!(incidents[0].path.as_deref(), Some("/logs/app.log"));
    }

    #[test]
    fn multiple_files_independent() {
        let idx = Index::new("t");
        buggy_trace(&idx);
        // A healthy unrelated file with generations.
        idx.bulk(vec![
            ev(10, "app", "write", 5, "1|7|300", Some(0)),
            ev(11, "tailer", "read", 5, "1|7|400", Some(0)),
        ]);
        assert_eq!(detect_data_loss(&idx).len(), 1);
    }
}
