//! Post-mortem session comparison (§II "Post-mortem analysis": DIO
//! "allows storing different tracing executions from the same or different
//! applications and posteriorly analyzing and **comparing** them").
//!
//! This is how the paper's Fig. 2 analysis is actually consumed — the
//! buggy v1.4.0 session next to the fixed v2.0.5 session. [`diff_sessions`]
//! automates the side-by-side.

use std::collections::BTreeMap;

use dio_backend::{AggResult, Aggregation, Index, Query, SearchRequest};

/// Counts of one dimension value in each session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountDelta {
    /// The dimension value (syscall name, thread name, path...).
    pub key: String,
    /// Events in session A.
    pub a: u64,
    /// Events in session B.
    pub b: u64,
}

impl CountDelta {
    /// Signed difference `b - a`.
    pub fn delta(&self) -> i64 {
        self.b as i64 - self.a as i64
    }
}

/// The structured comparison of two sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionDiff {
    /// Total events in each session.
    pub totals: (u64, u64),
    /// Failed syscalls (`ret_val < 0`) in each session.
    pub errors: (u64, u64),
    /// Median syscall latency (ns) in each session.
    pub p50_latency_ns: (f64, f64),
    /// 99th-percentile syscall latency (ns) in each session.
    pub p99_latency_ns: (f64, f64),
    /// Per-syscall counts, sorted by |delta| descending.
    pub by_syscall: Vec<CountDelta>,
    /// Per-thread counts, sorted by |delta| descending.
    pub by_thread: Vec<CountDelta>,
    /// Paths touched only in session A.
    pub paths_only_a: Vec<String>,
    /// Paths touched only in session B.
    pub paths_only_b: Vec<String>,
}

impl SessionDiff {
    /// The syscalls whose counts changed between the sessions.
    pub fn changed_syscalls(&self) -> impl Iterator<Item = &CountDelta> {
        self.by_syscall.iter().filter(|d| d.delta() != 0)
    }

    /// Renders a compact human-readable report.
    pub fn to_text(&self, name_a: &str, name_b: &str) -> String {
        let mut out = format!("session diff: {name_a} (A) vs {name_b} (B)\n");
        out.push_str(&format!("  events : A={} B={}\n", self.totals.0, self.totals.1));
        out.push_str(&format!("  errors : A={} B={}\n", self.errors.0, self.errors.1));
        out.push_str(&format!(
            "  latency: p50 A={:.1}us B={:.1}us | p99 A={:.1}us B={:.1}us\n",
            self.p50_latency_ns.0 / 1e3,
            self.p50_latency_ns.1 / 1e3,
            self.p99_latency_ns.0 / 1e3,
            self.p99_latency_ns.1 / 1e3,
        ));
        out.push_str("  syscalls (A -> B):\n");
        for d in &self.by_syscall {
            if d.delta() != 0 {
                out.push_str(&format!(
                    "    {:<12} {:>6} -> {:<6} ({:+})\n",
                    d.key,
                    d.a,
                    d.b,
                    d.delta()
                ));
            }
        }
        if !self.paths_only_a.is_empty() {
            out.push_str(&format!("  paths only in A: {}\n", self.paths_only_a.join(", ")));
        }
        if !self.paths_only_b.is_empty() {
            out.push_str(&format!("  paths only in B: {}\n", self.paths_only_b.join(", ")));
        }
        out
    }
}

fn term_counts(index: &Index, field: &str) -> BTreeMap<String, u64> {
    let res = index
        .search(&SearchRequest::match_all().size(0).agg("t", Aggregation::terms(field, 10_000)));
    res.aggs["t"]
        .buckets()
        .iter()
        .filter_map(|b| b.key.as_str().map(|k| (k.to_string(), b.doc_count)))
        .collect()
}

fn latency_percentiles(index: &Index) -> (f64, f64) {
    let res = index.search(
        &SearchRequest::match_all()
            .size(0)
            .agg("lat", Aggregation::percentiles("latency_ns", [50.0, 99.0])),
    );
    match &res.aggs["lat"] {
        AggResult::Percentiles(p) => {
            let get =
                |q: f64| p.iter().find(|(x, _)| (*x - q).abs() < 1e-9).map_or(0.0, |(_, v)| *v);
            (get(50.0), get(99.0))
        }
        _ => (0.0, 0.0),
    }
}

/// Compares two session indices dimension by dimension.
pub fn diff_sessions(a: &Index, b: &Index) -> SessionDiff {
    let merge = |ca: BTreeMap<String, u64>, cb: BTreeMap<String, u64>| {
        let keys: std::collections::BTreeSet<String> =
            ca.keys().chain(cb.keys()).cloned().collect();
        let mut out: Vec<CountDelta> = keys
            .into_iter()
            .map(|key| CountDelta {
                a: ca.get(&key).copied().unwrap_or(0),
                b: cb.get(&key).copied().unwrap_or(0),
                key,
            })
            .collect();
        out.sort_by_key(|d| std::cmp::Reverse(d.delta().unsigned_abs()));
        out
    };
    let by_syscall = merge(term_counts(a, "syscall"), term_counts(b, "syscall"));
    let by_thread = merge(term_counts(a, "proc_name"), term_counts(b, "proc_name"));

    let paths_a: std::collections::BTreeSet<String> =
        term_counts(a, "file_path").into_keys().collect();
    let paths_b: std::collections::BTreeSet<String> =
        term_counts(b, "file_path").into_keys().collect();

    let (p50_a, p99_a) = latency_percentiles(a);
    let (p50_b, p99_b) = latency_percentiles(b);
    let errors = (
        a.count(&Query::range("ret_val").lt(0.0).build()),
        b.count(&Query::range("ret_val").lt(0.0).build()),
    );

    SessionDiff {
        totals: (a.count(&Query::MatchAll), b.count(&Query::MatchAll)),
        errors,
        p50_latency_ns: (p50_a, p50_b),
        p99_latency_ns: (p99_a, p99_b),
        by_syscall,
        by_thread,
        paths_only_a: paths_a.difference(&paths_b).cloned().collect(),
        paths_only_b: paths_b.difference(&paths_a).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(syscall: &str, proc: &str, ret: i64, lat: u64, path: Option<&str>) -> serde_json::Value {
        let mut doc = json!({
            "syscall": syscall, "proc_name": proc, "ret_val": ret, "latency_ns": lat,
        });
        if let Some(p) = path {
            doc["file_path"] = json!(p);
        }
        doc
    }

    #[test]
    fn diff_highlights_behavioural_change() {
        let a = Index::new("a");
        a.bulk(vec![
            ev("read", "app", 26, 1_000, Some("/old.log")),
            ev("read", "app", 0, 900, Some("/old.log")),
            ev("lseek", "app", 26, 300, Some("/old.log")),
        ]);
        let b = Index::new("b");
        b.bulk(vec![
            ev("read", "app", 16, 1_100, Some("/new.log")),
            ev("read", "app", 0, 950, Some("/new.log")),
        ]);
        let diff = diff_sessions(&a, &b);
        assert_eq!(diff.totals, (3, 2));
        let lseek = diff.by_syscall.iter().find(|d| d.key == "lseek").unwrap();
        assert_eq!((lseek.a, lseek.b), (1, 0));
        assert_eq!(lseek.delta(), -1);
        assert_eq!(diff.paths_only_a, vec!["/old.log".to_string()]);
        assert_eq!(diff.paths_only_b, vec!["/new.log".to_string()]);
        assert_eq!(diff.changed_syscalls().count(), 1, "only lseek disappeared");
        let text = diff.to_text("v1", "v2");
        assert!(text.contains("lseek"));
        assert!(text.contains("/new.log"));
    }

    #[test]
    fn identical_sessions_diff_to_zero() {
        let a = Index::new("a");
        let b = Index::new("b");
        for idx in [&a, &b] {
            idx.bulk(vec![ev("write", "app", 5, 100, Some("/same"))]);
        }
        let diff = diff_sessions(&a, &b);
        assert_eq!(diff.totals, (1, 1));
        assert_eq!(diff.changed_syscalls().count(), 0);
        assert!(diff.paths_only_a.is_empty());
        assert!(diff.paths_only_b.is_empty());
    }

    #[test]
    fn error_and_latency_dimensions() {
        let a = Index::new("a");
        a.bulk(vec![ev("openat", "app", -2, 500, None), ev("read", "app", 1, 1_000, None)]);
        let b = Index::new("b");
        b.bulk(vec![ev("openat", "app", 3, 400, None), ev("read", "app", 1, 2_000, None)]);
        let diff = diff_sessions(&a, &b);
        assert_eq!(diff.errors, (1, 0));
        assert!(diff.p99_latency_ns.1 > diff.p99_latency_ns.0);
    }
}
