#![warn(missing_docs)]

//! Correlation and diagnosis algorithms running on DIO's backend.
//!
//! The paper's backend supports "customized data correlation algorithms"
//! (§II-C); this crate ships the ones the evaluation uses plus the
//! automated versions of both case studies:
//!
//! * [`correlate_paths`] — the file-path correlation algorithm: resolves
//!   `dev|ino|timestamp` file tags into the actual paths using the
//!   backend's update-by-query;
//! * [`detect_contention`] — the Fig. 4 analysis: windows the trace and
//!   flags intervals where many background threads starve client I/O;
//! * [`detect_data_loss`] — the Fig. 2 analysis: finds stale-offset reads
//!   across inode-reuse generations (the Fluent Bit bug);
//! * [`analyze_offsets`] — access-pattern characterization (sequential vs
//!   random, request sizes) from enriched offsets;
//! * [`diff_sessions`] — post-mortem comparison of two stored sessions
//!   (§II: DIO stores executions "and posteriorly analyzing and comparing
//!   them");
//! * [`detect_small_io`] / [`latency_profile`] — the §V direction of a
//!   growing collection of automated inefficiency detectors.

mod contention;
mod data_loss;
mod diff;
mod offsets;
mod path;
mod patterns;

pub use contention::{detect_contention, ContentionConfig, ContentionReport, WindowActivity};
pub use data_loss::{detect_data_loss, DataLossIncident};
pub use diff::{diff_sessions, CountDelta, SessionDiff};
pub use offsets::{analyze_offsets, AccessPattern, FileAccessProfile};
pub use path::{correlate_paths, CorrelationReport};
pub use patterns::{
    detect_small_io, latency_profile, SmallIoConfig, SmallIoFinding, SyscallLatencyProfile,
};
