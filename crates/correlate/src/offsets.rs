//! File access-pattern characterization from traced offsets.
//!
//! DIO's offset enrichment "allows observing file access patterns (e.g.,
//! random accesses), even for syscalls that do not provide the file offset
//! as an argument" (§II-B). This analyzer classifies per-file access
//! patterns — the kind of costly-pattern diagnosis the introduction
//! motivates (small or random I/O).

use std::collections::HashMap;

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_syscall::FileTag;

/// Dominant access pattern of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// ≥90% of accesses continue where the previous one ended.
    Sequential,
    /// ≤50% sequential accesses.
    Random,
    /// In between.
    Mixed,
}

/// Per-file access statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FileAccessProfile {
    /// File identity.
    pub tag: FileTag,
    /// Resolved path, when available.
    pub path: Option<String>,
    /// Data syscalls observed (reads + writes).
    pub ops: u64,
    /// Reads observed.
    pub reads: u64,
    /// Writes observed.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Fraction of accesses that were sequential.
    pub sequential_fraction: f64,
    /// Mean request size in bytes.
    pub mean_request_bytes: f64,
    /// Classified pattern.
    pub pattern: AccessPattern,
}

/// Computes access profiles for every file in a session index.
///
/// Only events carrying `file_tag` and `offset` (i.e. enriched data
/// syscalls) participate. Profiles are ordered by operation count,
/// busiest first.
pub fn analyze_offsets(index: &Index) -> Vec<FileAccessProfile> {
    let response = index.search(
        &SearchRequest::new(
            Query::bool_query()
                .must(Query::exists("file_tag"))
                .must(Query::exists("offset"))
                .must(Query::terms(
                    "syscall",
                    ["read", "write", "pread64", "pwrite64", "readv", "writev"],
                ))
                .build(),
        )
        .sort_by("time", SortOrder::Asc)
        .size(usize::MAX),
    );

    struct Acc {
        path: Option<String>,
        ops: u64,
        reads: u64,
        writes: u64,
        bytes: u64,
        sequential: u64,
        considered: u64,
        next_expected: Option<u64>,
    }
    let mut accs: HashMap<FileTag, Acc> = HashMap::new();

    for hit in &response.hits {
        let Some(tag) = hit.source["file_tag"].as_str().and_then(|s| s.parse::<FileTag>().ok())
        else {
            continue;
        };
        let offset = hit.source["offset"].as_u64().unwrap_or(0);
        let ret = hit.source["ret_val"].as_i64().unwrap_or(0).max(0) as u64;
        let syscall = hit.source["syscall"].as_str().unwrap_or("");
        let acc = accs.entry(tag).or_insert_with(|| Acc {
            path: None,
            ops: 0,
            reads: 0,
            writes: 0,
            bytes: 0,
            sequential: 0,
            considered: 0,
            next_expected: None,
        });
        if acc.path.is_none() {
            acc.path = hit.source["file_path"].as_str().map(str::to_string);
        }
        acc.ops += 1;
        if syscall.contains("read") {
            acc.reads += 1;
        } else {
            acc.writes += 1;
        }
        acc.bytes += ret;
        if let Some(expected) = acc.next_expected {
            acc.considered += 1;
            if offset == expected {
                acc.sequential += 1;
            }
        }
        acc.next_expected = Some(offset + ret);
    }

    let mut profiles: Vec<FileAccessProfile> = accs
        .into_iter()
        .map(|(tag, acc)| {
            let sequential_fraction = if acc.considered == 0 {
                1.0
            } else {
                acc.sequential as f64 / acc.considered as f64
            };
            let pattern = if sequential_fraction >= 0.9 {
                AccessPattern::Sequential
            } else if sequential_fraction <= 0.5 {
                AccessPattern::Random
            } else {
                AccessPattern::Mixed
            };
            FileAccessProfile {
                tag,
                path: acc.path,
                ops: acc.ops,
                reads: acc.reads,
                writes: acc.writes,
                bytes: acc.bytes,
                sequential_fraction,
                mean_request_bytes: if acc.ops == 0 {
                    0.0
                } else {
                    acc.bytes as f64 / acc.ops as f64
                },
                pattern,
            }
        })
        .collect();
    profiles.sort_by(|a, b| b.ops.cmp(&a.ops).then_with(|| a.tag.cmp(&b.tag)));
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(time: u64, syscall: &str, tag: &str, offset: u64, ret: i64) -> serde_json::Value {
        json!({
            "time": time, "syscall": syscall, "file_tag": tag,
            "offset": offset, "ret_val": ret, "proc_name": "p",
        })
    }

    #[test]
    fn sequential_stream_classified() {
        let idx = Index::new("t");
        idx.bulk((0..10).map(|i| ev(i, "read", "1|1|1", i * 100, 100)).collect());
        let profiles = analyze_offsets(&idx);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.pattern, AccessPattern::Sequential);
        assert_eq!(p.ops, 10);
        assert_eq!(p.reads, 10);
        assert_eq!(p.bytes, 1000);
        assert_eq!(p.mean_request_bytes, 100.0);
        assert_eq!(p.sequential_fraction, 1.0);
    }

    #[test]
    fn random_access_classified() {
        let idx = Index::new("t");
        let offsets = [500u64, 0, 900, 100, 42, 7000, 3, 666];
        idx.bulk(
            offsets
                .iter()
                .enumerate()
                .map(|(i, &o)| ev(i as u64, "pread64", "1|2|1", o, 10))
                .collect(),
        );
        let p = &analyze_offsets(&idx)[0];
        assert_eq!(p.pattern, AccessPattern::Random);
        assert!(p.sequential_fraction <= 0.5);
    }

    #[test]
    fn mixed_access_classified() {
        let idx = Index::new("t");
        // Alternate: seq, seq, jump, seq, seq, jump... ~2/3 sequential.
        let mut docs = Vec::new();
        let mut off = 0u64;
        for i in 0..12u64 {
            if i % 3 == 2 {
                off += 10_000; // jump
            }
            docs.push(ev(i, "write", "1|3|1", off, 100));
            off += 100;
        }
        idx.bulk(docs);
        let p = &analyze_offsets(&idx)[0];
        assert_eq!(p.pattern, AccessPattern::Mixed, "fraction={}", p.sequential_fraction);
        assert_eq!(p.writes, 12);
    }

    #[test]
    fn files_ranked_by_activity() {
        let idx = Index::new("t");
        idx.bulk(vec![
            ev(0, "read", "1|1|1", 0, 10),
            ev(1, "read", "1|2|1", 0, 10),
            ev(2, "read", "1|2|1", 10, 10),
        ]);
        let profiles = analyze_offsets(&idx);
        assert_eq!(profiles[0].tag, "1|2|1".parse().unwrap());
        assert_eq!(profiles[1].tag, "1|1|1".parse().unwrap());
    }

    #[test]
    fn single_access_counts_as_sequential() {
        let idx = Index::new("t");
        idx.bulk(vec![ev(0, "read", "1|9|1", 0, 5)]);
        let p = &analyze_offsets(&idx)[0];
        assert_eq!(p.pattern, AccessPattern::Sequential);
        assert_eq!(p.sequential_fraction, 1.0);
    }

    #[test]
    fn events_without_enrichment_are_skipped() {
        let idx = Index::new("t");
        idx.bulk(vec![json!({"time": 0, "syscall": "read", "ret_val": 5})]);
        assert!(analyze_offsets(&idx).is_empty());
    }
}
