//! The file-path correlation algorithm (§II-C of the paper).
//!
//! Syscalls that operate on file descriptors (`read`, `write`, `close`, ...)
//! carry only a *file tag* (`dev|ino|first-access-timestamp`). Opens carry
//! both the tag and the path. The correlation algorithm joins the two using
//! the backend's query/update features, rewriting tags into the actual file
//! paths — "translated into the actual file paths being accessed at the
//! storage backend".

use std::collections::HashMap;

use serde_json::{json, Value};

use dio_backend::{Index, Query, SearchRequest};

/// Outcome of one correlation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorrelationReport {
    /// Distinct file tags for which a path was learned.
    pub tags_resolved: usize,
    /// Events whose `file_path` field was filled in.
    pub events_updated: usize,
    /// Events that still carry a tag without a resolvable path (their open
    /// happened before tracing started, or the open event was dropped at
    /// the ring buffer).
    pub events_unresolved: usize,
}

impl CorrelationReport {
    /// Fraction of tag-bearing events left without a path — the paper's
    /// §III-D quality metric (≤5% for DIO vs 45% for sysdig).
    pub fn unresolved_rate(&self) -> f64 {
        let total = self.events_updated + self.events_unresolved;
        if total == 0 {
            0.0
        } else {
            self.events_unresolved as f64 / total as f64
        }
    }
}

/// Runs file-path correlation over a session index.
///
/// # Examples
///
/// ```
/// use dio_backend::{Index, Query};
/// use dio_correlate::correlate_paths;
/// use serde_json::json;
///
/// let index = Index::new("t");
/// index.bulk(vec![
///     json!({"syscall": "openat", "file_tag": "1|12|5", "file_path": "/a.log"}),
///     json!({"syscall": "read",   "file_tag": "1|12|5"}),
/// ]);
/// let report = correlate_paths(&index);
/// assert_eq!(report.events_updated, 1);
/// assert_eq!(index.count(&Query::term("file_path", "/a.log")), 2);
/// ```
pub fn correlate_paths(index: &Index) -> CorrelationReport {
    // 1. Learn tag -> path from open-like events (they carry both).
    let opens = index.search(
        &SearchRequest::new(
            Query::bool_query()
                .must(Query::terms("syscall", ["open", "openat", "creat"]))
                .must(Query::exists("file_tag"))
                .must(Query::exists("file_path"))
                .build(),
        )
        .size(usize::MAX),
    );
    let mut tag_to_path: HashMap<String, String> = HashMap::new();
    for hit in &opens.hits {
        if let (Some(tag), Some(path)) =
            (hit.source["file_tag"].as_str(), hit.source["file_path"].as_str())
        {
            tag_to_path.insert(tag.to_string(), path.to_string());
        }
    }

    // 2. Update every pathless event carrying a known tag.
    let mut events_updated = 0;
    for (tag, path) in &tag_to_path {
        let query = Query::bool_query()
            .must(Query::term("file_tag", tag.clone()))
            .must_not(Query::exists("file_path"))
            .build();
        let path: Value = json!(path);
        events_updated += index.update_by_query(&query, |doc| {
            doc["file_path"] = path.clone();
        });
    }

    // 3. Whatever still has a tag but no path is unresolvable.
    let events_unresolved = index.count(
        &Query::bool_query()
            .must(Query::exists("file_tag"))
            .must_not(Query::exists("file_path"))
            .build(),
    ) as usize;

    CorrelationReport { tags_resolved: tag_to_path.len(), events_updated, events_unresolved }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(syscall: &str, tag: Option<&str>, path: Option<&str>) -> Value {
        let mut doc = json!({"syscall": syscall});
        if let Some(t) = tag {
            doc["file_tag"] = json!(t);
        }
        if let Some(p) = path {
            doc["file_path"] = json!(p);
        }
        doc
    }

    #[test]
    fn correlates_fd_events_to_open_paths() {
        let idx = Index::new("t");
        idx.bulk(vec![
            event("openat", Some("1|12|100"), Some("/app.log")),
            event("read", Some("1|12|100"), None),
            event("read", Some("1|12|100"), None),
            event("close", Some("1|12|100"), None),
        ]);
        let r = correlate_paths(&idx);
        assert_eq!(r.tags_resolved, 1);
        assert_eq!(r.events_updated, 3);
        assert_eq!(r.events_unresolved, 0);
        assert_eq!(idx.count(&Query::term("file_path", "/app.log")), 4);
    }

    #[test]
    fn distinguishes_inode_generations() {
        let idx = Index::new("t");
        idx.bulk(vec![
            event("openat", Some("1|12|100"), Some("/gen1.log")),
            event("read", Some("1|12|100"), None),
            // Same dev|ino, later generation, different name.
            event("openat", Some("1|12|200"), Some("/gen2.log")),
            event("read", Some("1|12|200"), None),
        ]);
        correlate_paths(&idx);
        let r1 = idx.search(&SearchRequest::new(
            Query::bool_query()
                .must(Query::term("syscall", "read"))
                .must(Query::term("file_tag", "1|12|100"))
                .build(),
        ));
        assert_eq!(r1.hits[0].source["file_path"], "/gen1.log");
        let r2 = idx.search(&SearchRequest::new(
            Query::bool_query()
                .must(Query::term("syscall", "read"))
                .must(Query::term("file_tag", "1|12|200"))
                .build(),
        ));
        assert_eq!(r2.hits[0].source["file_path"], "/gen2.log");
    }

    #[test]
    fn unresolvable_tags_are_counted() {
        let idx = Index::new("t");
        idx.bulk(vec![
            // Open for this tag was never captured (e.g. pre-attach).
            event("read", Some("1|99|5"), None),
            event("close", Some("1|99|5"), None),
            event("openat", Some("1|12|1"), Some("/known")),
            event("read", Some("1|12|1"), None),
        ]);
        let r = correlate_paths(&idx);
        assert_eq!(r.events_updated, 1);
        assert_eq!(r.events_unresolved, 2);
        assert!((r.unresolved_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn idempotent() {
        let idx = Index::new("t");
        idx.bulk(vec![
            event("openat", Some("1|12|1"), Some("/f")),
            event("read", Some("1|12|1"), None),
        ]);
        let first = correlate_paths(&idx);
        let second = correlate_paths(&idx);
        assert_eq!(first.events_updated, 1);
        assert_eq!(second.events_updated, 0);
        assert_eq!(second.events_unresolved, 0);
    }

    #[test]
    fn empty_index() {
        let idx = Index::new("t");
        let r = correlate_paths(&idx);
        assert_eq!(r, CorrelationReport::default());
        assert_eq!(r.unresolved_rate(), 0.0);
    }
}
