//! The §V "collection of correlation algorithms" — automated detectors
//! for the inefficient behaviours the paper's introduction motivates:
//! small-sized I/O requests and per-syscall latency anomalies.

use std::collections::BTreeMap;

use dio_backend::{Index, Query, SearchRequest};

/// Configuration of the small-I/O detector.
#[derive(Debug, Clone, Copy)]
pub struct SmallIoConfig {
    /// Requests strictly below this byte count are "small" (a common rule
    /// of thumb: below one 4 KiB page).
    pub threshold_bytes: u64,
    /// Ignore files with fewer data ops than this.
    pub min_ops: u64,
    /// Flag files whose small-request fraction is at least this.
    pub flag_fraction: f64,
}

impl Default for SmallIoConfig {
    fn default() -> Self {
        SmallIoConfig { threshold_bytes: 4_096, min_ops: 8, flag_fraction: 0.5 }
    }
}

/// A file dominated by small I/O requests (§I: "costly access patterns,
/// such as small-sized I/O requests").
#[derive(Debug, Clone, PartialEq)]
pub struct SmallIoFinding {
    /// Resolved path (or the raw file tag when correlation did not run).
    pub target: String,
    /// Data ops on the file.
    pub ops: u64,
    /// Ops below the threshold.
    pub small_ops: u64,
    /// Mean request size, bytes.
    pub mean_bytes: f64,
}

impl SmallIoFinding {
    /// Fraction of ops below the threshold.
    pub fn small_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.small_ops as f64 / self.ops as f64
        }
    }
}

/// Scans a session for files dominated by small I/O requests, most
/// affected first.
pub fn detect_small_io(index: &Index, config: &SmallIoConfig) -> Vec<SmallIoFinding> {
    let response = index.search(
        &SearchRequest::new(
            Query::bool_query()
                .must(Query::terms(
                    "syscall",
                    ["read", "write", "pread64", "pwrite64", "readv", "writev"],
                ))
                .must(Query::range("ret_val").gt(0.0).build())
                .build(),
        )
        .size(usize::MAX),
    );
    struct Acc {
        ops: u64,
        small: u64,
        bytes: u64,
    }
    let mut per_file: BTreeMap<String, Acc> = BTreeMap::new();
    for hit in &response.hits {
        let target = hit.source["file_path"]
            .as_str()
            .or_else(|| hit.source["file_tag"].as_str())
            .unwrap_or("<unknown>")
            .to_string();
        let bytes = hit.source["ret_val"].as_u64().unwrap_or(0);
        let acc = per_file.entry(target).or_insert(Acc { ops: 0, small: 0, bytes: 0 });
        acc.ops += 1;
        acc.bytes += bytes;
        if bytes < config.threshold_bytes {
            acc.small += 1;
        }
    }
    let mut findings: Vec<SmallIoFinding> = per_file
        .into_iter()
        .filter(|(_, acc)| acc.ops >= config.min_ops)
        .map(|(target, acc)| SmallIoFinding {
            target,
            ops: acc.ops,
            small_ops: acc.small,
            mean_bytes: acc.bytes as f64 / acc.ops as f64,
        })
        .filter(|f| f.small_fraction() >= config.flag_fraction)
        .collect();
    findings
        .sort_by(|a, b| b.small_fraction().total_cmp(&a.small_fraction()).then(b.ops.cmp(&a.ops)));
    findings
}

/// Latency statistics of one syscall kind within a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallLatencyProfile {
    /// The syscall name.
    pub syscall: String,
    /// Invocations.
    pub count: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Median latency, ns.
    pub p50_ns: f64,
    /// Tail latency, ns.
    pub p99_ns: f64,
    /// Total time spent inside the syscall, ns.
    pub total_ns: u64,
}

impl SyscallLatencyProfile {
    /// Tail amplification: how much worse the p99 is than the median.
    pub fn tail_ratio(&self) -> f64 {
        if self.p50_ns <= 0.0 {
            0.0
        } else {
            self.p99_ns / self.p50_ns
        }
    }
}

/// Per-syscall latency profiles, ordered by total time spent (the "where
/// does the I/O time go" view).
pub fn latency_profile(index: &Index) -> Vec<SyscallLatencyProfile> {
    let response = index.search(&SearchRequest::match_all().size(usize::MAX));
    let mut per_kind: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for hit in &response.hits {
        let (Some(kind), Some(lat)) =
            (hit.source["syscall"].as_str(), hit.source["latency_ns"].as_u64())
        else {
            continue;
        };
        per_kind.entry(kind.to_string()).or_default().push(lat);
    }
    let mut profiles: Vec<SyscallLatencyProfile> = per_kind
        .into_iter()
        .map(|(syscall, mut lats)| {
            lats.sort_unstable();
            let count = lats.len() as u64;
            let total: u64 = lats.iter().sum();
            let pct = |p: f64| {
                let rank = ((p / 100.0) * (count as f64 - 1.0)).round() as usize;
                lats[rank.min(lats.len() - 1)] as f64
            };
            SyscallLatencyProfile {
                syscall,
                count,
                mean_ns: total as f64 / count as f64,
                p50_ns: pct(50.0),
                p99_ns: pct(99.0),
                total_ns: total,
            }
        })
        .collect();
    profiles.sort_by_key(|p| std::cmp::Reverse(p.total_ns));
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn data_ev(syscall: &str, ret: i64, path: &str, lat: u64) -> serde_json::Value {
        json!({"syscall": syscall, "ret_val": ret, "file_path": path, "latency_ns": lat})
    }

    #[test]
    fn flags_small_io_dominated_files() {
        let idx = Index::new("t");
        let mut docs = Vec::new();
        for _ in 0..20 {
            docs.push(data_ev("write", 64, "/chatty.log", 100)); // tiny writes
        }
        for _ in 0..20 {
            docs.push(data_ev("write", 65_536, "/bulk.dat", 100)); // large writes
        }
        for _ in 0..4 {
            docs.push(data_ev("write", 1, "/rare", 100)); // below min_ops
        }
        idx.bulk(docs);
        let findings = detect_small_io(&idx, &SmallIoConfig::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].target, "/chatty.log");
        assert_eq!(findings[0].small_fraction(), 1.0);
        assert_eq!(findings[0].mean_bytes, 64.0);
    }

    #[test]
    fn mixed_file_respects_flag_fraction() {
        let idx = Index::new("t");
        let mut docs = Vec::new();
        for i in 0..20 {
            let size = if i < 8 { 100 } else { 8_192 }; // 40% small
            docs.push(data_ev("read", size, "/mixed", 100));
        }
        idx.bulk(docs);
        assert!(detect_small_io(&idx, &SmallIoConfig::default()).is_empty());
        let lax = SmallIoConfig { flag_fraction: 0.3, ..Default::default() };
        assert_eq!(detect_small_io(&idx, &lax).len(), 1);
    }

    #[test]
    fn failed_and_zero_byte_ops_ignored() {
        let idx = Index::new("t");
        idx.bulk(vec![data_ev("read", 0, "/eof", 10), data_ev("read", -9, "/bad", 10)]);
        let cfg = SmallIoConfig { min_ops: 1, ..Default::default() };
        assert!(detect_small_io(&idx, &cfg).is_empty());
    }

    #[test]
    fn latency_profile_orders_by_total_time() {
        let idx = Index::new("t");
        let mut docs = Vec::new();
        for _ in 0..100 {
            docs.push(data_ev("read", 1, "/f", 1_000)); // 100 us total
        }
        for _ in 0..2 {
            docs.push(data_ev("fsync", 0, "/f", 1_000_000)); // 2 ms total
        }
        idx.bulk(docs);
        let profiles = latency_profile(&idx);
        assert_eq!(profiles[0].syscall, "fsync");
        assert_eq!(profiles[0].count, 2);
        assert_eq!(profiles[1].syscall, "read");
        assert_eq!(profiles[1].p50_ns, 1_000.0);
        assert!(profiles[1].tail_ratio() >= 1.0);
    }

    #[test]
    fn tail_ratio_exposes_anomalies() {
        let idx = Index::new("t");
        let mut docs: Vec<serde_json::Value> =
            (0..97).map(|_| data_ev("write", 1, "/f", 100)).collect();
        for _ in 0..3 {
            docs.push(data_ev("write", 1, "/f", 50_000)); // 3% outliers
        }
        idx.bulk(docs);
        let profiles = latency_profile(&idx);
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].tail_ratio() > 100.0, "ratio={}", profiles[0].tail_ratio());
    }
}
