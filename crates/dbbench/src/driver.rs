//! The closed-loop benchmark driver (the `db_bench` stand-in).
//!
//! Spawns N client threads named `db_bench` — the thread name the paper's
//! Fig. 4 groups client syscalls under — each issuing one operation at a
//! time against the store and recording its latency on the simulated
//! clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dio_kernel::{Process, SysResult};
use dio_lsmkv::Db;

use crate::histogram::{LatencyHistogram, WindowedLatency};
use crate::workload::{KeyDistribution, KeyGenerator, Operation, ValueGenerator, YcsbWorkload};

/// Configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// The operation mix.
    pub workload: YcsbWorkload,
    /// Closed-loop client threads (the paper uses 8).
    pub client_threads: usize,
    /// Records loaded before the run / addressed during it.
    pub records: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Operations per client thread.
    pub ops_per_thread: u64,
    /// Optional wall-clock cap for the measured phase.
    pub max_duration: Option<Duration>,
    /// Window width for the latency time series (Fig. 3 granularity).
    pub window_ns: u64,
    /// Key distribution.
    pub key_dist: KeyDistribution,
    /// RNG seed.
    pub seed: u64,
    /// Entries per scan for workload E.
    pub scan_limit: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            workload: YcsbWorkload::A,
            client_threads: 8,
            records: 10_000,
            value_size: 400,
            ops_per_thread: 1_000,
            max_duration: None,
            window_ns: 1_000_000_000,
            key_dist: KeyDistribution::Zipfian { theta: 0.99 },
            seed: 42,
            scan_limit: 50,
        }
    }
}

/// Result of a benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Operations completed.
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock duration of the measured phase (simulated ns).
    pub elapsed_ns: u64,
    /// All latencies collapsed.
    pub overall: LatencyHistogram,
    /// Latencies bucketed by time window (drives the Fig. 3 series).
    pub windowed: WindowedLatency,
}

impl BenchReport {
    /// Throughput in operations per second.
    pub fn throughput_ops_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Loads the initial `records` dataset, splitting the keyspace across
/// `threads` loader threads.
///
/// # Errors
///
/// Propagates kernel errors from the store.
pub fn load_phase(
    db: &Arc<Db>,
    process: &Process,
    config: &BenchConfig,
    threads: usize,
) -> SysResult<()> {
    let threads = threads.max(1);
    let per = config.records.div_ceil(threads as u64);
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(db);
        let ctx = process.spawn_thread("db_bench_load");
        let start = per * t as u64;
        let end = (start + per).min(config.records);
        let value_size = config.value_size;
        let seed = config.seed + t as u64;
        handles.push(std::thread::spawn(move || -> SysResult<()> {
            let mut values = ValueGenerator::new(value_size, seed);
            for i in start..end {
                db.put(&ctx, &KeyGenerator::key_for(i), &values.next_value())?;
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join().expect("loader thread panicked")?;
    }
    Ok(())
}

/// Runs the measured phase: `client_threads` closed-loop clients issuing
/// `ops_per_thread` operations each.
pub fn run(db: &Arc<Db>, process: &Process, config: &BenchConfig) -> BenchReport {
    let clock = {
        let probe = process.spawn_thread("db_bench_clock");
        probe.kernel().clock().clone()
    };
    let started_ns = clock.now_ns();
    let deadline_ns = config.max_duration.map(|d| started_ns + d.as_nanos() as u64);
    let next_insert = Arc::new(AtomicU64::new(config.records));
    let errors = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..config.client_threads {
        let db = Arc::clone(db);
        let ctx = process.spawn_thread("db_bench");
        let config = config.clone();
        let next_insert = Arc::clone(&next_insert);
        let errors = Arc::clone(&errors);
        let clock = clock.clone();
        handles.push(std::thread::spawn(move || {
            let mut keys = KeyGenerator::new(
                config.records,
                config.key_dist.clone(),
                config.seed + 100 + t as u64,
            );
            let mut values = ValueGenerator::new(config.value_size, config.seed + 200 + t as u64);
            let mut op_rng = SmallRng::seed_from_u64(config.seed + 300 + t as u64);
            let mut recorder = WindowedLatency::new(config.window_ns);
            let mut ops = 0u64;
            let mut buf = Vec::new();
            while ops < config.ops_per_thread {
                if let Some(deadline) = deadline_ns {
                    if clock.now_ns() >= deadline {
                        break;
                    }
                }
                let op = config.workload.next_op(&mut op_rng);
                let t0 = clock.now_ns();
                let result: SysResult<()> = match op {
                    Operation::Read => db.get(&ctx, &keys.next_key()).map(|v| {
                        buf.clear();
                        if let Some(v) = v {
                            buf.extend_from_slice(&v);
                        }
                    }),
                    Operation::Update => db.put(&ctx, &keys.next_key(), &values.next_value()),
                    Operation::Insert => {
                        let id = next_insert.fetch_add(1, Ordering::Relaxed);
                        db.put(&ctx, &KeyGenerator::key_for(id), &values.next_value())
                    }
                    Operation::Scan => {
                        db.scan(&ctx, &keys.next_key(), config.scan_limit).map(|_| ())
                    }
                    Operation::ReadModifyWrite => {
                        let key = keys.next_key();
                        db.get(&ctx, &key).and_then(|_| db.put(&ctx, &key, &values.next_value()))
                    }
                };
                let t1 = clock.now_ns();
                recorder.record(t0, t1 - t0);
                if result.is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                ops += 1;
            }
            (ops, recorder)
        }));
    }

    let mut total_ops = 0u64;
    let mut windowed = WindowedLatency::new(config.window_ns);
    for h in handles {
        let (ops, recorder) = h.join().expect("client thread panicked");
        total_ops += ops;
        windowed.merge(&recorder);
    }
    BenchReport {
        ops: total_ops,
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns: clock.now_ns() - started_ns,
        overall: windowed.overall(),
        windowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::{DiskProfile, Kernel};
    use dio_lsmkv::LsmOptions;

    fn setup() -> (Kernel, Process, Arc<Db>) {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let process = kernel.spawn_process("db_bench");
        let db = Arc::new(Db::open(&process, LsmOptions::new("/db")).unwrap());
        (kernel, process, db)
    }

    #[test]
    fn load_then_read_only_run() {
        let (_k, process, db) = setup();
        let config = BenchConfig {
            workload: YcsbWorkload::C,
            client_threads: 2,
            records: 500,
            value_size: 64,
            ops_per_thread: 200,
            ..Default::default()
        };
        load_phase(&db, &process, &config, 2).unwrap();
        let report = run(&db, &process, &config);
        assert_eq!(report.ops, 400);
        assert_eq!(report.errors, 0);
        assert!(report.throughput_ops_sec() > 0.0);
        assert_eq!(report.overall.count(), 400);
        let client = process.spawn_thread("check");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn ycsb_a_mixed_run_produces_windows() {
        let (_k, process, db) = setup();
        let config = BenchConfig {
            client_threads: 4,
            records: 300,
            value_size: 100,
            ops_per_thread: 250,
            window_ns: 1_000_000, // 1 ms windows
            ..Default::default()
        };
        load_phase(&db, &process, &config, 1).unwrap();
        let report = run(&db, &process, &config);
        assert_eq!(report.ops, 1_000);
        let summaries = report.windowed.summaries();
        assert!(!summaries.is_empty());
        assert_eq!(summaries.iter().map(|w| w.count).sum::<u64>(), 1_000);
        // p99 >= p50 in every window.
        for w in &summaries {
            assert!(w.p99_ns >= w.p50_ns);
        }
        let client = process.spawn_thread("check");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn inserts_extend_the_keyspace() {
        let (_k, process, db) = setup();
        let config = BenchConfig {
            workload: YcsbWorkload::D,
            client_threads: 2,
            records: 100,
            value_size: 32,
            ops_per_thread: 200,
            ..Default::default()
        };
        load_phase(&db, &process, &config, 1).unwrap();
        let report = run(&db, &process, &config);
        assert_eq!(report.errors, 0);
        // Some inserts landed beyond the initial keyspace.
        let client = process.spawn_thread("check");
        let found =
            (100..120u64).any(|i| db.get(&client, &KeyGenerator::key_for(i)).unwrap().is_some());
        assert!(found, "YCSB-D inserts new records");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn scan_workload_runs() {
        let (_k, process, db) = setup();
        let config = BenchConfig {
            workload: YcsbWorkload::E,
            client_threads: 1,
            records: 200,
            value_size: 32,
            ops_per_thread: 50,
            scan_limit: 10,
            ..Default::default()
        };
        load_phase(&db, &process, &config, 1).unwrap();
        let report = run(&db, &process, &config);
        assert_eq!(report.ops, 50);
        assert_eq!(report.errors, 0);
        let client = process.spawn_thread("check");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn duration_cap_stops_early() {
        let (_k, process, db) = setup();
        let config = BenchConfig {
            client_threads: 2,
            records: 100,
            value_size: 32,
            ops_per_thread: u64::MAX / 2,
            max_duration: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        load_phase(&db, &process, &config, 1).unwrap();
        let report = run(&db, &process, &config);
        assert!(report.ops > 0);
        assert!(report.elapsed_ns < 5_000_000_000, "must stop near the 50 ms cap");
        let client = process.spawn_thread("check");
        db.shutdown(&client).unwrap();
    }
}
