//! Latency recording: an HDR-style log-bucketed histogram plus windowed
//! percentile series (the data behind Fig. 3).

use std::collections::BTreeMap;

/// Sub-buckets per power of two (resolution ≈ 1/32 ≈ 3%).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = 64 * SUB;

/// A log-scale latency histogram over nanosecond values.
///
/// Constant memory, ~3% value resolution, O(1) record — the usual design
/// for benchmark latency capture (HdrHistogram-style).
///
/// # Examples
///
/// ```
/// use dio_dbbench::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((450..=550).contains(&p50), "p50={p50}");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize * SUB + sub).min(BUCKETS - 1)
}

fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    let msb = (bucket / SUB) as u32 + SUB_BITS - 1;
    let sub = (bucket % SUB) as u64;
    (1u64 << msb) | (sub << (msb - SUB_BITS))
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, min: u64::MAX, max: 0, sum: 0 }
    }

    /// Records one latency sample (ns).
    pub fn record(&mut self, value_ns: u64) {
        self.counts[bucket_of(value_ns)] += 1;
        self.total += 1;
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
        self.sum += value_ns;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at percentile `p` (0–100). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// One time window's latency summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Window start timestamp (ns).
    pub start_ns: u64,
    /// Samples in the window.
    pub count: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 99th percentile (ns) — the Fig. 3 series.
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

/// Latency samples bucketed into fixed time windows, producing the
/// per-window p99 series that Fig. 3 plots.
#[derive(Debug, Clone)]
pub struct WindowedLatency {
    window_ns: u64,
    windows: BTreeMap<u64, LatencyHistogram>,
}

impl WindowedLatency {
    /// Creates a recorder with the given window width.
    pub fn new(window_ns: u64) -> Self {
        WindowedLatency { window_ns: window_ns.max(1), windows: BTreeMap::new() }
    }

    /// The configured window width (ns).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records a sample observed at absolute time `at_ns`.
    pub fn record(&mut self, at_ns: u64, latency_ns: u64) {
        let slot = at_ns / self.window_ns * self.window_ns;
        self.windows.entry(slot).or_default().record(latency_ns);
    }

    /// Merges another recorder (same window width) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &WindowedLatency) {
        assert_eq!(self.window_ns, other.window_ns, "window widths must match");
        for (slot, hist) in &other.windows {
            self.windows.entry(*slot).or_default().merge(hist);
        }
    }

    /// Time-ordered per-window summaries.
    pub fn summaries(&self) -> Vec<WindowSummary> {
        self.windows
            .iter()
            .map(|(&start_ns, h)| WindowSummary {
                start_ns,
                count: h.count(),
                p50_ns: h.percentile(50.0),
                p99_ns: h.percentile(99.0),
                max_ns: h.max(),
            })
            .collect()
    }

    /// Collapses every window into one histogram.
    pub fn overall(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for h in self.windows.values() {
            out.merge(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic() {
        let mut prev = 0;
        for v in [1u64, 2, 10, 31, 32, 33, 100, 1_000, 65_536, 1 << 40] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket({v})={b} < {prev}");
            prev = b;
            assert!(bucket_lower_bound(b) <= v, "lower_bound({b}) > {v}");
        }
    }

    #[test]
    fn percentile_accuracy_within_resolution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let expected = p / 100.0 * 100_000.0;
            let got = h.percentile(p) as f64;
            let err = (got - expected).abs() / expected;
            assert!(err < 0.05, "p{p}: got {got}, expected {expected}");
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        assert_eq!(h.percentile(0.1), 42);
        assert_eq!(h.percentile(100.0), 42);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.percentile(99.0), c.percentile(99.0));
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn windows_partition_time() {
        let mut w = WindowedLatency::new(1_000);
        w.record(100, 10);
        w.record(900, 20);
        w.record(1_100, 30);
        w.record(5_500, 40);
        let s = w.summaries();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].start_ns, 0);
        assert_eq!(s[0].count, 2);
        assert_eq!(s[1].start_ns, 1_000);
        assert_eq!(s[2].start_ns, 5_000);
        assert_eq!(w.overall().count(), 4);
    }

    #[test]
    fn windowed_merge_across_threads() {
        let mut a = WindowedLatency::new(1_000);
        let mut b = WindowedLatency::new(1_000);
        a.record(100, 5);
        b.record(150, 500);
        b.record(2_500, 7);
        a.merge(&b);
        let s = a.summaries();
        assert_eq!(s[0].count, 2);
        assert_eq!(s.len(), 2);
        assert!(s[0].max_ns >= 500);
    }

    #[test]
    #[should_panic(expected = "window widths")]
    fn windowed_merge_rejects_mismatched_widths() {
        let mut a = WindowedLatency::new(1_000);
        let b = WindowedLatency::new(2_000);
        a.merge(&b);
    }
}
