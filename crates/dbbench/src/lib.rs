#![warn(missing_docs)]

//! `db_bench`-style benchmarking for the LSM store.
//!
//! Implements the measurement side of the paper's RocksDB experiment
//! (§III-C): YCSB core workload mixes with zipfian key selection
//! ([`YcsbWorkload`], [`KeyGenerator`]), a closed-loop multi-threaded
//! driver whose clients appear in traces as `db_bench` ([`run`]), and
//! HDR-style latency capture with per-window percentiles — the data behind
//! the Fig. 3 tail-latency series ([`WindowedLatency`]).

mod driver;
mod histogram;
mod workload;

pub use driver::{load_phase, run, BenchConfig, BenchReport};
pub use histogram::{LatencyHistogram, WindowSummary, WindowedLatency};
pub use workload::{KeyDistribution, KeyGenerator, Operation, ValueGenerator, YcsbWorkload};
