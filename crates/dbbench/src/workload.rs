//! YCSB-style workload generation (key distributions + operation mixes).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One benchmark operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Point read of an existing key.
    Read,
    /// Overwrite of an existing key.
    Update,
    /// Insert of a new key.
    Insert,
    /// Short range scan.
    Scan,
    /// Read-modify-write of an existing key.
    ReadModifyWrite,
}

/// The YCSB core workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// A: 50% reads / 50% updates, zipfian (the paper's RocksDB workload).
    A,
    /// B: 95% reads / 5% updates, zipfian.
    B,
    /// C: 100% reads, zipfian.
    C,
    /// D: 95% reads (latest) / 5% inserts.
    D,
    /// E: 95% scans / 5% inserts.
    E,
    /// F: 50% reads / 50% read-modify-writes, zipfian.
    F,
}

impl YcsbWorkload {
    /// Picks the next operation type.
    pub fn next_op(self, rng: &mut SmallRng) -> Operation {
        let roll: f64 = rng.gen();
        match self {
            YcsbWorkload::A => {
                if roll < 0.5 {
                    Operation::Read
                } else {
                    Operation::Update
                }
            }
            YcsbWorkload::B => {
                if roll < 0.95 {
                    Operation::Read
                } else {
                    Operation::Update
                }
            }
            YcsbWorkload::C => Operation::Read,
            YcsbWorkload::D => {
                if roll < 0.95 {
                    Operation::Read
                } else {
                    Operation::Insert
                }
            }
            YcsbWorkload::E => {
                if roll < 0.95 {
                    Operation::Scan
                } else {
                    Operation::Insert
                }
            }
            YcsbWorkload::F => {
                if roll < 0.5 {
                    Operation::Read
                } else {
                    Operation::ReadModifyWrite
                }
            }
        }
    }

    /// The letter name (`"A"`..`"F"`).
    pub fn name(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }
}

/// Key-selection distribution.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Uniform over the keyspace.
    Uniform,
    /// YCSB's scrambled zipfian with the given theta (0.99 by default).
    Zipfian {
        /// Skew parameter; larger = more skew.
        theta: f64,
    },
}

/// Generates record keys according to a distribution.
///
/// # Examples
///
/// ```
/// use dio_dbbench::{KeyDistribution, KeyGenerator};
///
/// let mut gen = KeyGenerator::new(1_000, KeyDistribution::Zipfian { theta: 0.99 }, 42);
/// let key = gen.next_key();
/// assert!(key.starts_with(b"user"));
/// ```
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    n: u64,
    dist: KeyDistribution,
    rng: SmallRng,
    // zipfian precomputation
    zetan: f64,
    theta: f64,
    alpha: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl KeyGenerator {
    /// Creates a generator over `n` records.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, dist: KeyDistribution, seed: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        let theta = match dist {
            KeyDistribution::Zipfian { theta } => theta,
            KeyDistribution::Uniform => 0.0,
        };
        let (zetan, alpha, eta) = if matches!(dist, KeyDistribution::Zipfian { .. }) {
            let zetan = zeta(n, theta);
            let zeta2 = zeta(2.min(n), theta);
            let alpha = 1.0 / (1.0 - theta);
            let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
            (zetan, alpha, eta)
        } else {
            (0.0, 0.0, 0.0)
        };
        KeyGenerator { n, dist, rng: SmallRng::seed_from_u64(seed), zetan, theta, alpha, eta }
    }

    /// The keyspace size.
    pub fn keyspace(&self) -> u64 {
        self.n
    }

    /// Draws the next record index.
    pub fn next_index(&mut self) -> u64 {
        match self.dist {
            KeyDistribution::Uniform => self.rng.gen_range(0..self.n),
            KeyDistribution::Zipfian { .. } => {
                let u: f64 = self.rng.gen();
                let uz = u * self.zetan;
                let rank = if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(self.theta) {
                    1
                } else {
                    ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
                };
                // Scramble so hot keys spread over the keyspace (YCSB's
                // "scrambled zipfian").
                fnv_scramble(rank.min(self.n - 1)) % self.n
            }
        }
    }

    /// Draws the next key in YCSB's `user<index>` format.
    pub fn next_key(&mut self) -> Vec<u8> {
        Self::key_for(self.next_index())
    }

    /// Formats the key for a record index.
    pub fn key_for(index: u64) -> Vec<u8> {
        format!("user{index:012}").into_bytes()
    }
}

fn fnv_scramble(x: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in x.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Generates values of a fixed size with a varying fill byte.
#[derive(Debug, Clone)]
pub struct ValueGenerator {
    size: usize,
    rng: SmallRng,
}

impl ValueGenerator {
    /// Creates a generator for `size`-byte values.
    pub fn new(size: usize, seed: u64) -> Self {
        ValueGenerator { size, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The next value.
    pub fn next_value(&mut self) -> Vec<u8> {
        let fill: u8 = self.rng.gen();
        vec![fill; self.size]
    }

    /// Configured value size.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_keyspace() {
        let mut g = KeyGenerator::new(100, KeyDistribution::Uniform, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let i = g.next_index();
            assert!(i < 100);
            seen.insert(i);
        }
        assert!(seen.len() > 95, "uniform should touch nearly all keys: {}", seen.len());
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = KeyGenerator::new(10_000, KeyDistribution::Zipfian { theta: 0.99 }, 7);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next_index()).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.25 * 50_000.0,
            "top-10 keys should dominate a zipfian draw, got {top10}"
        );
        assert!(counts.len() < 9_000, "far fewer distinct keys than draws");
    }

    #[test]
    fn zipfian_indices_in_range() {
        let mut g = KeyGenerator::new(50, KeyDistribution::Zipfian { theta: 0.99 }, 3);
        for _ in 0..10_000 {
            assert!(g.next_index() < 50);
        }
    }

    #[test]
    fn keys_are_stable_and_sortable() {
        assert_eq!(KeyGenerator::key_for(42), b"user000000000042".to_vec());
        assert!(KeyGenerator::key_for(9) < KeyGenerator::key_for(10));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = KeyGenerator::new(1000, KeyDistribution::Zipfian { theta: 0.99 }, 5);
        let mut b = KeyGenerator::new(1000, KeyDistribution::Zipfian { theta: 0.99 }, 5);
        for _ in 0..100 {
            assert_eq!(a.next_index(), b.next_index());
        }
    }

    #[test]
    fn workload_mixes_roughly_match() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut reads = 0;
        for _ in 0..10_000 {
            if YcsbWorkload::A.next_op(&mut rng) == Operation::Read {
                reads += 1;
            }
        }
        assert!((4_500..=5_500).contains(&reads), "YCSB-A ~50% reads, got {reads}");
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(
            (0..10_000).all(|_| YcsbWorkload::C.next_op(&mut rng) == Operation::Read),
            "YCSB-C is read-only"
        );
    }

    #[test]
    fn value_generator_sizes() {
        let mut v = ValueGenerator::new(400, 1);
        assert_eq!(v.next_value().len(), 400);
        assert_eq!(v.size(), 400);
    }

    #[test]
    #[should_panic(expected = "keyspace")]
    fn empty_keyspace_panics() {
        KeyGenerator::new(0, KeyDistribution::Uniform, 1);
    }
}
