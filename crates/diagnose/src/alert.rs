//! Typed alert documents emitted by the streaming detectors.
//!
//! Every detection produced by the live engine is an [`Alert`]: a typed,
//! self-contained document carrying the verdict (kind + severity), the
//! window that produced it, a human-readable message, detector-specific
//! structured fields, and the evidence rows (raw event documents) that
//! triggered it. Alerts serialize as `kind: "alert"` documents so they can
//! share the per-session telemetry index with health and span documents —
//! the dashboard readers skip any document without a `metric` field.

use serde_json::{json, Value};

/// How urgent an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth surfacing, no action required.
    Info,
    /// Degradation or suspicious pattern; the workload still makes progress.
    Warning,
    /// Correctness problem (e.g. silent data loss) observed in the trace.
    Critical,
}

impl Severity {
    /// Stable lowercase name used in serialized documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What pattern a detector matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Stale-offset read across an inode-reuse generation returning 0
    /// bytes: the Fig. 2a data-loss signature.
    DataLoss,
    /// A new file generation was first accessed at a non-zero offset —
    /// stale reader state survived the generation change.
    StaleOffsetResume,
    /// Client syscall throughput dipped while many background threads did
    /// I/O in the same window (the Fig. 4 signature).
    ContentionSkew,
    /// Per-key syscall rate jumped or collapsed versus its trailing
    /// baseline.
    SyscallRateAnomaly,
    /// Per-key error fraction crossed the configured threshold.
    ErrorRateAnomaly,
    /// A user-defined diagnosis rule matched (no more specific kind was
    /// named in its `alert(...)` action).
    RuleMatch,
}

impl AlertKind {
    /// Stable snake_case name used in serialized documents.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::DataLoss => "data_loss",
            AlertKind::StaleOffsetResume => "stale_offset_resume",
            AlertKind::ContentionSkew => "contention_skew",
            AlertKind::SyscallRateAnomaly => "syscall_rate_anomaly",
            AlertKind::ErrorRateAnomaly => "error_rate_anomaly",
            AlertKind::RuleMatch => "rule_match",
        }
    }

    /// Parses the stable snake_case name back into a kind.
    ///
    /// This is the inverse of [`AlertKind::as_str`]; rule files use it to
    /// map `alert(critical, data_loss, ...)` kind idents onto the typed
    /// kinds shared with the hand-coded detectors.
    pub fn parse(name: &str) -> Option<AlertKind> {
        Some(match name {
            "data_loss" => AlertKind::DataLoss,
            "stale_offset_resume" => AlertKind::StaleOffsetResume,
            "contention_skew" => AlertKind::ContentionSkew,
            "syscall_rate_anomaly" => AlertKind::SyscallRateAnomaly,
            "error_rate_anomaly" => AlertKind::ErrorRateAnomaly,
            "rule_match" => AlertKind::RuleMatch,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AlertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One detection emitted by the live engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotonic sequence number within the engine that raised it.
    pub seq: u64,
    /// Name of the detector that fired (`data_loss`, `contention`, ...).
    pub detector: &'static str,
    /// The matched pattern.
    pub kind: AlertKind,
    /// Urgency.
    pub severity: Severity,
    /// Event time (ns) at which the detection became true.
    pub time_ns: u64,
    /// Start of the window that produced the alert, when windowed.
    pub window_start_ns: Option<u64>,
    /// Exclusive end of the window that produced the alert, when windowed.
    pub window_end_ns: Option<u64>,
    /// What the alert is about (a file tag, a thread name, a key).
    pub subject: String,
    /// Human-readable one-line description.
    pub message: String,
    /// Detector-specific structured payload (mirrors the offline report
    /// types where one exists, e.g. `DataLossIncident`).
    pub fields: Value,
    /// The raw event documents that triggered the detection.
    pub evidence: Vec<Value>,
    /// Causal attribution computed by the DFG profiler when one is
    /// attached to the engine (`None` otherwise): the critical
    /// directly-follows edge over the alert window plus corroborating
    /// flight-recorder spans. Attribution is a decoration — it never
    /// changes the alert spine (kind, severity, window, subject,
    /// message, fields, evidence).
    pub attribution: Option<Value>,
}

impl Alert {
    /// Serializes the alert as a backend document (`kind: "alert"`).
    ///
    /// # Examples
    ///
    /// ```
    /// use dio_diagnose::{Alert, AlertKind, Severity};
    /// let alert = Alert {
    ///     seq: 0,
    ///     detector: "data_loss",
    ///     kind: AlertKind::DataLoss,
    ///     severity: Severity::Critical,
    ///     time_ns: 5,
    ///     window_start_ns: None,
    ///     window_end_ns: None,
    ///     subject: "7340032|12|200".into(),
    ///     message: "stale read".into(),
    ///     fields: serde_json::json!({}),
    ///     evidence: vec![],
    ///     attribution: None,
    /// };
    /// let doc = alert.to_document();
    /// assert_eq!(doc["kind"], "alert");
    /// assert_eq!(doc["alert_kind"], "data_loss");
    /// assert!(doc.get("metric").is_none(), "must not look like a health doc");
    /// assert!(doc.get("attribution").is_none(), "absent until a profiler attributes");
    /// ```
    pub fn to_document(&self) -> Value {
        let mut doc = json!({
            "kind": "alert",
            "seq": self.seq,
            "detector": self.detector,
            "alert_kind": self.kind.as_str(),
            "severity": self.severity.as_str(),
            "time": self.time_ns,
            "window_start_ns": self.window_start_ns,
            "window_end_ns": self.window_end_ns,
            "subject": self.subject,
            "message": self.message,
            "fields": self.fields,
            "evidence": self.evidence,
        });
        if let Some(attribution) = &self.attribution {
            doc["attribution"] = attribution.clone();
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: AlertKind, severity: Severity) -> Alert {
        Alert {
            seq: 3,
            detector: "t",
            kind,
            severity,
            time_ns: 42,
            window_start_ns: Some(0),
            window_end_ns: Some(100),
            subject: "s".into(),
            message: "m".into(),
            fields: json!({"a": 1}),
            evidence: vec![json!({"time": 42})],
            attribution: None,
        }
    }

    #[test]
    fn document_carries_all_fields() {
        let doc = sample(AlertKind::ContentionSkew, Severity::Warning).to_document();
        assert_eq!(doc["kind"], "alert");
        assert_eq!(doc["alert_kind"], "contention_skew");
        assert_eq!(doc["severity"], "warning");
        assert_eq!(doc["seq"], 3);
        assert_eq!(doc["time"], 42);
        assert_eq!(doc["window_end_ns"], 100);
        assert_eq!(doc["evidence"][0]["time"], 42);
    }

    #[test]
    fn attribution_block_rides_the_document_when_present() {
        let mut alert = sample(AlertKind::DataLoss, Severity::Critical);
        assert!(alert.to_document().get("attribution").is_none());
        alert.attribution = Some(json!({"edge": "write->fsync", "growth": 0.4}));
        let doc = alert.to_document();
        assert_eq!(doc["attribution"]["edge"], "write->fsync");
        // The spine is untouched by the decoration.
        let mut bare = sample(AlertKind::DataLoss, Severity::Critical).to_document();
        bare["attribution"] = doc["attribution"].clone();
        assert_eq!(bare, doc);
    }

    #[test]
    fn severity_orders_by_urgency() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AlertKind::DataLoss.to_string(), "data_loss");
        assert_eq!(AlertKind::SyscallRateAnomaly.as_str(), "syscall_rate_anomaly");
        assert_eq!(AlertKind::RuleMatch.as_str(), "rule_match");
        assert_eq!(Severity::Critical.to_string(), "critical");
    }

    #[test]
    fn parse_inverts_as_str() {
        for kind in [
            AlertKind::DataLoss,
            AlertKind::StaleOffsetResume,
            AlertKind::ContentionSkew,
            AlertKind::SyscallRateAnomaly,
            AlertKind::ErrorRateAnomaly,
            AlertKind::RuleMatch,
        ] {
            assert_eq!(AlertKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(AlertKind::parse("nope"), None);
    }
}
