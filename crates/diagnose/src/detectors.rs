//! Incremental ports of the offline `dio-correlate` algorithms.
//!
//! Each detector consumes event documents one at a time (arrival order)
//! and emits [`Alert`]s as soon as a pattern becomes true — the same
//! verdicts the batch algorithms reach post-hoc, raised while the trace is
//! still running. Windowed detectors route events through
//! [`SlidingWindows`] and evaluate each window when the watermark seals
//! it; keyed detectors (inode-reuse tracking) hold per-file state instead.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use dio_correlate::{ContentionReport, WindowActivity};
use dio_syscall::FileTag;
use serde_json::{json, Value};

use crate::alert::{Alert, AlertKind, Severity};
use crate::window::SlidingWindows;

/// Offline `fill_numeric_buckets` gap-fills empty histogram buckets only
/// when the occupied-slot span stays below this bound; the streaming
/// contention report applies the same rule so both agree window-for-window.
const GAP_FILL_MAX_SPAN: u64 = 100_000;

fn time_of(doc: &Value) -> u64 {
    doc["time"].as_u64().unwrap_or(0)
}

/// Builds an alert skeleton; the engine assigns the final `seq`.
#[allow(clippy::too_many_arguments)]
fn alert(
    detector: &'static str,
    kind: AlertKind,
    severity: Severity,
    time_ns: u64,
    window: Option<(u64, u64)>,
    subject: String,
    message: String,
    fields: Value,
    evidence: Vec<Value>,
) -> Alert {
    Alert {
        seq: 0,
        detector,
        kind,
        severity,
        time_ns,
        window_start_ns: window.map(|w| w.0),
        window_end_ns: window.map(|w| w.1),
        subject,
        message,
        fields,
        evidence,
        attribution: None,
    }
}

// ---------------------------------------------------------------------------
// Data loss / stale-offset after inode reuse (streaming Fig. 2 analysis)
// ---------------------------------------------------------------------------

/// Streaming port of [`dio_correlate::detect_data_loss`] plus offset-0
/// restart validation.
///
/// Tracks file generations per `(dev, ino)` in first-appearance order (the
/// inode-reuse signature) and inspects the *first read* of every
/// generation after the first:
///
/// * offset > 0 and 0 bytes returned → **data loss** (critical): the
///   reader resumed from stale state and silently skipped the bytes
///   before the offset — the Fig. 2a bug.
/// * offset > 0 with data returned → **stale-offset resume** (warning):
///   reader state survived the generation change even though bytes were
///   still readable.
/// * offset 0 → a validated restart, counted but not alerted (the
///   Fig. 2b fixed behavior).
#[derive(Debug, Default)]
pub struct DataLossDetector {
    generations: BTreeMap<(u64, u64), Vec<FileTag>>,
    writes_per_tag: HashMap<FileTag, u64>,
    first_read_seen: HashSet<FileTag>,
    path_per_tag: HashMap<FileTag, String>,
    last_write_doc: HashMap<FileTag, Value>,
    validated_restarts: u64,
}

impl DataLossDetector {
    /// Generations whose first read started at offset 0 (clean restarts).
    pub fn validated_restarts(&self) -> u64 {
        self.validated_restarts
    }

    /// Feeds one event document; pushes any resulting alerts onto `out`.
    pub fn observe(&mut self, doc: &Value, out: &mut Vec<Alert>) {
        let Some(tag) = doc["file_tag"].as_str().and_then(|s| s.parse::<FileTag>().ok()) else {
            return;
        };
        let syscall = doc["syscall"].as_str().unwrap_or("");
        if !matches!(syscall, "read" | "write" | "pread64" | "pwrite64") {
            return;
        }
        let gens = self.generations.entry((tag.dev, tag.ino)).or_default();
        if !gens.contains(&tag) {
            gens.push(tag);
        }
        let generation_index = gens.iter().position(|t| *t == tag).unwrap_or(0);
        let previous_generation = generation_index.checked_sub(1).map(|i| gens[i]);
        if let Some(p) = doc["file_path"].as_str() {
            self.path_per_tag.entry(tag).or_insert_with(|| p.to_string());
        }
        let ret = doc["ret_val"].as_i64().unwrap_or(0);
        match syscall {
            "write" | "pwrite64" if ret > 0 => {
                *self.writes_per_tag.entry(tag).or_insert(0) += ret as u64;
                self.last_write_doc.insert(tag, doc.clone());
            }
            "read" | "pread64" => {
                if !self.first_read_seen.insert(tag) {
                    return; // only the first read of a generation matters
                }
                let Some(prev) = previous_generation else {
                    return; // first generation: EOF polls etc. are benign
                };
                let offset = doc["offset"].as_u64().unwrap_or(0);
                if offset == 0 {
                    self.validated_restarts += 1;
                    return;
                }
                let reader = doc["proc_name"].as_str().unwrap_or("").to_string();
                let path = self.path_per_tag.get(&tag).cloned();
                let time = time_of(doc);
                let mut evidence = Vec::new();
                if let Some(w) = self.last_write_doc.get(&tag) {
                    evidence.push(w.clone());
                }
                evidence.push(doc.clone());
                if ret == 0 {
                    // Non-zero offset, zero bytes: the Fig. 2a incident.
                    let written = self.writes_per_tag.get(&tag).copied().unwrap_or(0);
                    let bytes_at_risk = written.min(offset);
                    out.push(alert(
                        "data_loss",
                        AlertKind::DataLoss,
                        Severity::Critical,
                        time,
                        None,
                        tag.to_string(),
                        format!(
                            "{reader} resumed new generation of {} at stale offset {offset} \
                             and read 0 bytes: up to {bytes_at_risk} byte(s) silently lost",
                            path.as_deref().unwrap_or("<unresolved>")
                        ),
                        json!({
                            "tag": tag.to_string(),
                            "path": path,
                            "stale_offset": offset,
                            "bytes_at_risk": bytes_at_risk,
                            "previous_generation": prev.to_string(),
                            "reader": reader,
                        }),
                        evidence,
                    ));
                } else {
                    out.push(alert(
                        "data_loss",
                        AlertKind::StaleOffsetResume,
                        Severity::Warning,
                        time,
                        None,
                        tag.to_string(),
                        format!(
                            "{reader} first read the new generation of {} at offset {offset} \
                             instead of 0: stale reader state survived inode reuse",
                            path.as_deref().unwrap_or("<unresolved>")
                        ),
                        json!({
                            "tag": tag.to_string(),
                            "path": path,
                            "stale_offset": offset,
                            "previous_generation": prev.to_string(),
                            "reader": reader,
                        }),
                        evidence,
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread contention skew (streaming Fig. 4 analysis)
// ---------------------------------------------------------------------------

/// Streaming port of [`dio_correlate::detect_contention`].
///
/// Windows tumble at the configured width (matching the backend's
/// `date_histogram` bucketing) and count ops per thread name. A sealed
/// window raises a [`AlertKind::ContentionSkew`] warning when enough
/// background threads were active **and** client throughput fell below the
/// calm-window mean observed so far. [`ContentionDetector::report`]
/// reproduces the offline [`ContentionReport`] exactly — including
/// gap-filled empty windows — once the stream ends.
#[derive(Debug)]
pub struct ContentionDetector {
    windows: SlidingWindows<BTreeMap<String, u64>>,
    closed: BTreeMap<u64, WindowActivity>,
    client_prefix: String,
    background_prefix: String,
    background_threshold: usize,
    calm_ops_sum: u64,
    calm_windows: u64,
    alerted: bool,
}

impl ContentionDetector {
    /// Tumbling windows of `window_ns` with the Fig. 4 thread-name
    /// prefixes and background-thread threshold.
    pub fn new(
        window_ns: u64,
        client_prefix: String,
        background_prefix: String,
        background_threshold: usize,
    ) -> Self {
        ContentionDetector {
            windows: SlidingWindows::new(window_ns, 0),
            closed: BTreeMap::new(),
            client_prefix,
            background_prefix,
            background_threshold,
            calm_ops_sum: 0,
            calm_windows: 0,
            alerted: false,
        }
    }

    /// Whether any per-window contention alert has fired.
    pub fn alerted(&self) -> bool {
        self.alerted
    }

    /// Number of windows still accumulating.
    pub fn open_windows(&self) -> usize {
        self.windows.open_count()
    }

    /// Feeds one event document (every document counts toward window
    /// occupancy, exactly like the offline `match_all` date histogram).
    pub fn observe(&mut self, doc: &Value) {
        let name = doc["proc_name"].as_str().unwrap_or("").to_string();
        self.windows.observe(time_of(doc), |threads| {
            *threads.entry(name.clone()).or_insert(0) += 1;
        });
    }

    /// Seals watermark-ready windows and raises alerts for contended ones.
    pub fn evaluate_ready(&mut self, out: &mut Vec<Alert>) {
        for (start, threads) in self.windows.drain_ready() {
            self.seal(start, threads, out);
        }
    }

    /// Seals every remaining window (end of stream).
    pub fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
        for (start, threads) in self.windows.drain_all() {
            self.seal(start, threads, out);
        }
    }

    fn seal(&mut self, start: u64, threads: BTreeMap<String, u64>, out: &mut Vec<Alert>) {
        let mut client_ops = 0u64;
        let mut background_ops = 0u64;
        let mut active_background = 0usize;
        for (name, &count) in &threads {
            if name.starts_with(self.client_prefix.as_str()) {
                client_ops += count;
            } else if name.starts_with(self.background_prefix.as_str()) {
                background_ops += count;
                if count > 0 {
                    active_background += 1;
                }
            }
        }
        let contended = active_background >= self.background_threshold;
        let width = self.windows.width_ns();
        if contended && self.calm_windows > 0 {
            let calm_mean = self.calm_ops_sum as f64 / self.calm_windows as f64;
            if (client_ops as f64) < calm_mean {
                self.alerted = true;
                let evidence: Vec<Value> = threads
                    .iter()
                    .filter(|(name, _)| name.starts_with(self.background_prefix.as_str()))
                    .map(|(name, ops)| json!({"proc_name": name, "ops": ops}))
                    .collect();
                out.push(alert(
                    "contention",
                    AlertKind::ContentionSkew,
                    Severity::Warning,
                    start + width,
                    Some((start, start + width)),
                    format!("{}*", self.client_prefix),
                    format!(
                        "{active_background} {}* thread(s) issued {background_ops} op(s) while \
                         {}* throughput fell to {client_ops} op(s)/window (calm mean {calm_mean:.1})",
                        self.background_prefix, self.client_prefix
                    ),
                    json!({
                        "window_start_ns": start,
                        "client_ops": client_ops,
                        "background_ops": background_ops,
                        "active_background_threads": active_background,
                        "calm_mean_client_ops": calm_mean,
                    }),
                    evidence,
                ));
            }
        }
        if !contended {
            self.calm_ops_sum += client_ops;
            self.calm_windows += 1;
        }
        self.closed.insert(
            start,
            WindowActivity {
                start_ns: start,
                client_ops,
                background_ops,
                active_background_threads: active_background,
                contended,
            },
        );
    }

    /// The full offline-parity report over every sealed window.
    ///
    /// Call after the stream ended (all windows sealed); empty windows
    /// between the first and last occupied ones are gap-filled under the
    /// same span bound the backend's date histogram uses, so the result
    /// matches [`dio_correlate::detect_contention`] on the same events.
    pub fn report(&self) -> ContentionReport {
        let width = self.windows.width_ns();
        let mut windows: Vec<WindowActivity> = Vec::new();
        if let (Some((&first, _)), Some((&last, _))) =
            (self.closed.iter().next(), self.closed.iter().next_back())
        {
            let span = (last - first) / width + 1;
            if span <= GAP_FILL_MAX_SPAN {
                let mut start = first;
                while start <= last {
                    windows.push(self.closed.get(&start).cloned().unwrap_or(WindowActivity {
                        start_ns: start,
                        client_ops: 0,
                        background_ops: 0,
                        active_background_threads: 0,
                        contended: self.background_threshold == 0,
                    }));
                    start += width;
                }
            } else {
                windows.extend(self.closed.values().cloned());
            }
        }
        let mean = |contended: bool| {
            let vals: Vec<u64> =
                windows.iter().filter(|w| w.contended == contended).map(|w| w.client_ops).collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<u64>() as f64 / vals.len() as f64
            }
        };
        ContentionReport { client_ops_contended: mean(true), client_ops_calm: mean(false), windows }
    }
}

// ---------------------------------------------------------------------------
// Keyed rate / error-rate anomalies
// ---------------------------------------------------------------------------

/// Which document field keys the rate and error-rate windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateKey {
    /// Syscall class (`"class"` field) — the default.
    Class,
    /// Process id.
    Pid,
    /// File tag (`dev|ino|first_access_ns`).
    FileTag,
    /// Thread/process name.
    Proc,
}

impl RateKey {
    /// Parses the configuration string (`class`/`pid`/`file_tag`/`proc`);
    /// unknown values fall back to [`RateKey::Class`].
    pub fn parse(s: &str) -> RateKey {
        match s {
            "pid" => RateKey::Pid,
            "file_tag" => RateKey::FileTag,
            "proc" | "proc_name" => RateKey::Proc,
            _ => RateKey::Class,
        }
    }

    fn extract(self, doc: &Value) -> Option<String> {
        match self {
            RateKey::Class => doc["class"].as_str().map(str::to_string),
            RateKey::Pid => doc["pid"].as_u64().map(|p| p.to_string()),
            RateKey::FileTag => doc["file_tag"].as_str().map(str::to_string),
            RateKey::Proc => doc["proc_name"].as_str().map(str::to_string),
        }
    }
}

/// Per-key syscall-rate anomaly detection.
///
/// Each sealed window's per-key op count is compared against the mean of
/// that key's last `baseline_windows` sealed windows: a count above
/// `factor ×` baseline (and at least `min_ops`) is a **spike** (warning);
/// a count below `baseline / factor` while the baseline itself averaged at
/// least `min_ops` is a **collapse** (info). The warm-up guard (a full
/// baseline is required) keeps short traces silent.
#[derive(Debug)]
pub struct RateDetector {
    windows: SlidingWindows<BTreeMap<String, u64>>,
    baselines: HashMap<String, VecDeque<u64>>,
    key: RateKey,
    factor: f64,
    min_ops: u64,
    baseline_windows: usize,
}

impl RateDetector {
    /// Windows of `width_ns`/`slide_ns` keyed by `key`.
    pub fn new(
        width_ns: u64,
        slide_ns: u64,
        key: RateKey,
        factor: f64,
        min_ops: u64,
        baseline_windows: usize,
    ) -> Self {
        RateDetector {
            windows: SlidingWindows::new(width_ns, slide_ns),
            baselines: HashMap::new(),
            key,
            factor: factor.max(1.0),
            min_ops,
            baseline_windows: baseline_windows.max(1),
        }
    }

    /// Number of windows still accumulating.
    pub fn open_windows(&self) -> usize {
        self.windows.open_count()
    }

    /// Feeds one event document.
    pub fn observe(&mut self, doc: &Value) {
        let Some(key) = self.key.extract(doc) else {
            return;
        };
        self.windows.observe(time_of(doc), |counts| {
            *counts.entry(key.clone()).or_insert(0) += 1;
        });
    }

    /// Seals watermark-ready windows and raises anomaly alerts.
    pub fn evaluate_ready(&mut self, out: &mut Vec<Alert>) {
        for (start, counts) in self.windows.drain_ready() {
            self.seal(start, counts, out);
        }
    }

    /// Seals every remaining window (end of stream).
    pub fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
        for (start, counts) in self.windows.drain_all() {
            self.seal(start, counts, out);
        }
    }

    fn seal(&mut self, start: u64, counts: BTreeMap<String, u64>, out: &mut Vec<Alert>) {
        let width = self.windows.width_ns();
        for (key, &ops) in &counts {
            if let Some(hist) = self.baselines.get(key) {
                if hist.len() == self.baseline_windows {
                    let mean = hist.iter().sum::<u64>() as f64 / hist.len() as f64;
                    let evidence = vec![json!({
                        "key": key,
                        "ops": ops,
                        "baseline_mean": mean,
                        "baseline": hist.iter().copied().collect::<Vec<u64>>(),
                    })];
                    if ops as f64 > mean * self.factor && ops >= self.min_ops {
                        out.push(alert(
                            "rate",
                            AlertKind::SyscallRateAnomaly,
                            Severity::Warning,
                            start + width,
                            Some((start, start + width)),
                            key.clone(),
                            format!(
                                "syscall rate spike for {key}: {ops} op(s)/window vs \
                                 baseline {mean:.1}"
                            ),
                            json!({"key": key, "ops": ops, "baseline_mean": mean,
                                   "direction": "spike"}),
                            evidence,
                        ));
                    } else if (ops as f64) * self.factor < mean && mean >= self.min_ops as f64 {
                        out.push(alert(
                            "rate",
                            AlertKind::SyscallRateAnomaly,
                            Severity::Info,
                            start + width,
                            Some((start, start + width)),
                            key.clone(),
                            format!(
                                "syscall rate collapse for {key}: {ops} op(s)/window vs \
                                 baseline {mean:.1}"
                            ),
                            json!({"key": key, "ops": ops, "baseline_mean": mean,
                                   "direction": "collapse"}),
                            evidence,
                        ));
                    }
                }
            }
            let hist = self.baselines.entry(key.clone()).or_default();
            hist.push_back(ops);
            if hist.len() > self.baseline_windows {
                hist.pop_front();
            }
        }
    }
}

/// Per-window accumulator of the error-rate detector.
#[derive(Debug, Default)]
pub struct ErrAcc {
    ops: u64,
    errs: u64,
    samples: Vec<Value>,
}

/// Per-key error-rate detection: a sealed window whose failing fraction
/// (`ret_val < 0`) reaches the threshold over at least `min_ops` ops
/// raises a warning carrying up to `evidence_limit` failing events.
#[derive(Debug)]
pub struct ErrorRateDetector {
    windows: SlidingWindows<BTreeMap<String, ErrAcc>>,
    key: RateKey,
    threshold: f64,
    min_ops: u64,
    evidence_limit: usize,
}

impl ErrorRateDetector {
    /// Windows of `width_ns`/`slide_ns` keyed by `key`.
    pub fn new(
        width_ns: u64,
        slide_ns: u64,
        key: RateKey,
        threshold: f64,
        min_ops: u64,
        evidence_limit: usize,
    ) -> Self {
        ErrorRateDetector {
            windows: SlidingWindows::new(width_ns, slide_ns),
            key,
            threshold,
            min_ops: min_ops.max(1),
            evidence_limit,
        }
    }

    /// Number of windows still accumulating.
    pub fn open_windows(&self) -> usize {
        self.windows.open_count()
    }

    /// Feeds one event document.
    pub fn observe(&mut self, doc: &Value) {
        let Some(key) = self.key.extract(doc) else {
            return;
        };
        let failed = doc["ret_val"].as_i64().unwrap_or(0) < 0;
        let limit = self.evidence_limit;
        self.windows.observe(time_of(doc), |accs| {
            let acc = accs.entry(key.clone()).or_default();
            acc.ops += 1;
            if failed {
                acc.errs += 1;
                if acc.samples.len() < limit {
                    acc.samples.push(doc.clone());
                }
            }
        });
    }

    /// Seals watermark-ready windows and raises error-rate alerts.
    pub fn evaluate_ready(&mut self, out: &mut Vec<Alert>) {
        for (start, accs) in self.windows.drain_ready() {
            self.seal(start, accs, out);
        }
    }

    /// Seals every remaining window (end of stream).
    pub fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
        for (start, accs) in self.windows.drain_all() {
            self.seal(start, accs, out);
        }
    }

    fn seal(&mut self, start: u64, accs: BTreeMap<String, ErrAcc>, out: &mut Vec<Alert>) {
        let width = self.windows.width_ns();
        for (key, acc) in accs {
            if acc.ops < self.min_ops {
                continue;
            }
            let fraction = acc.errs as f64 / acc.ops as f64;
            if fraction >= self.threshold {
                out.push(alert(
                    "error_rate",
                    AlertKind::ErrorRateAnomaly,
                    Severity::Warning,
                    start + width,
                    Some((start, start + width)),
                    key.clone(),
                    format!(
                        "{:.0}% of {} op(s) for {key} failed in this window",
                        fraction * 100.0,
                        acc.ops
                    ),
                    json!({"key": key, "ops": acc.ops, "errors": acc.errs,
                           "error_fraction": fraction}),
                    acc.samples,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, proc: &str, syscall: &str, ret: i64, tag: &str, offset: Option<u64>) -> Value {
        let mut doc = json!({
            "time": time, "proc_name": proc, "syscall": syscall,
            "ret_val": ret, "file_tag": tag,
        });
        if let Some(o) = offset {
            doc["offset"] = json!(o);
        }
        doc
    }

    /// The exact Fig. 2a event sequence from `dio-correlate`'s fixtures.
    fn buggy_events() -> Vec<Value> {
        vec![
            ev(1, "app", "write", 26, "7340032|12|100", Some(0)),
            ev(2, "fluent-bit", "read", 26, "7340032|12|100", Some(0)),
            ev(3, "fluent-bit", "read", 0, "7340032|12|100", Some(26)),
            ev(4, "app", "write", 16, "7340032|12|200", Some(0)),
            ev(5, "fluent-bit", "read", 0, "7340032|12|200", Some(26)),
        ]
    }

    /// The Fig. 2b (fixed) sequence.
    fn fixed_events() -> Vec<Value> {
        vec![
            ev(1, "app", "write", 26, "7340032|12|100", Some(0)),
            ev(2, "flb-pipeline", "read", 26, "7340032|12|100", Some(0)),
            ev(3, "flb-pipeline", "read", 0, "7340032|12|100", Some(26)),
            ev(4, "app", "write", 16, "7340032|12|200", Some(0)),
            ev(5, "flb-pipeline", "read", 16, "7340032|12|200", Some(0)),
            ev(6, "flb-pipeline", "read", 0, "7340032|12|200", Some(16)),
        ]
    }

    #[test]
    fn data_loss_fires_on_the_buggy_sequence_at_the_triggering_event() {
        let mut det = DataLossDetector::default();
        let mut out = Vec::new();
        for (i, doc) in buggy_events().iter().enumerate() {
            det.observe(doc, &mut out);
            if i < 4 {
                assert!(out.is_empty(), "no alert before the stale read (event {i})");
            }
        }
        let losses: Vec<&Alert> = out.iter().filter(|a| a.kind == AlertKind::DataLoss).collect();
        assert_eq!(losses.len(), 1);
        let a = losses[0];
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(a.time_ns, 5);
        assert_eq!(a.subject, "7340032|12|200");
        assert_eq!(a.fields["stale_offset"], 26);
        assert_eq!(a.fields["bytes_at_risk"], 16);
        assert_eq!(a.fields["previous_generation"], "7340032|12|100");
        assert_eq!(a.fields["reader"], "fluent-bit");
        assert_eq!(a.evidence.len(), 2, "last write + triggering read");
        assert_eq!(a.evidence[1]["time"], 5);
    }

    #[test]
    fn fixed_sequence_raises_nothing_and_validates_the_restart() {
        let mut det = DataLossDetector::default();
        let mut out = Vec::new();
        for doc in fixed_events() {
            det.observe(&doc, &mut out);
        }
        assert!(out.is_empty(), "got {out:?}");
        assert_eq!(det.validated_restarts(), 1);
    }

    #[test]
    fn eof_poll_on_first_generation_is_benign() {
        let mut det = DataLossDetector::default();
        let mut out = Vec::new();
        for doc in [
            ev(1, "app", "write", 10, "1|5|100", Some(0)),
            ev(2, "tailer", "read", 10, "1|5|100", Some(0)),
            ev(3, "tailer", "read", 0, "1|5|100", Some(10)),
        ] {
            det.observe(&doc, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stale_resume_with_readable_bytes_is_a_warning() {
        let mut det = DataLossDetector::default();
        let mut out = Vec::new();
        for doc in [
            ev(1, "app", "write", 30, "1|5|100", Some(0)),
            ev(2, "tailer", "read", 30, "1|5|100", Some(0)),
            ev(3, "app", "write", 30, "1|5|200", Some(0)),
            ev(4, "tailer", "read", 20, "1|5|200", Some(10)),
        ] {
            det.observe(&doc, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AlertKind::StaleOffsetResume);
        assert_eq!(out[0].severity, Severity::Warning);
    }

    fn contention_window(docs: &mut Vec<Value>, start_s: u64, clients: usize, bg: usize) {
        let base = start_s * 1_000_000_000;
        for i in 0..clients {
            docs.push(json!({"proc_name": "db_bench", "time": base + i as u64}));
        }
        for t in 0..bg {
            for i in 0..10 {
                docs.push(json!({
                    "proc_name": format!("rocksdb:low{t}"),
                    "time": base + 100 + i as u64,
                }));
            }
        }
    }

    fn contention_detector() -> ContentionDetector {
        ContentionDetector::new(1_000_000_000, "db_bench".into(), "rocksdb:low".into(), 5)
    }

    #[test]
    fn contention_alert_fires_when_the_contended_window_seals() {
        let mut det = contention_detector();
        let mut docs = Vec::new();
        contention_window(&mut docs, 0, 100, 1);
        contention_window(&mut docs, 1, 110, 2);
        contention_window(&mut docs, 2, 20, 6); // the dip
        contention_window(&mut docs, 3, 105, 1);
        contention_window(&mut docs, 4, 104, 1);
        let mut out = Vec::new();
        for doc in &docs {
            det.observe(doc);
            det.evaluate_ready(&mut out);
        }
        det.evaluate_all(&mut out);
        assert_eq!(out.len(), 1, "got {out:?}");
        assert_eq!(out[0].kind, AlertKind::ContentionSkew);
        assert_eq!(out[0].window_start_ns, Some(2_000_000_000));
        assert_eq!(out[0].fields["active_background_threads"], 6);
        assert!(det.alerted());
    }

    #[test]
    fn contention_report_matches_offline_shape() {
        let mut det = contention_detector();
        let mut docs = Vec::new();
        contention_window(&mut docs, 0, 100, 1);
        contention_window(&mut docs, 2, 20, 6); // gap at second 1
        let mut out = Vec::new();
        for doc in &docs {
            det.observe(doc);
        }
        det.evaluate_all(&mut out);
        let report = det.report();
        assert_eq!(report.windows.len(), 3, "gap window filled");
        assert_eq!(report.windows[1].client_ops, 0);
        assert!(!report.windows[1].contended);
        assert!(report.windows[2].contended);
        assert!(report.contention_detected());
    }

    #[test]
    fn rate_detector_needs_full_baseline_then_flags_spike_and_collapse() {
        let w = 1_000u64;
        let mut det = RateDetector::new(w, 0, RateKey::Class, 4.0, 10, 2);
        let mut out = Vec::new();
        let mut docs = Vec::new();
        let mut push = |win: u64, n: usize| {
            for i in 0..n {
                docs.push(json!({"time": win * w + i as u64, "class": "data"}));
            }
        };
        push(0, 12); // baseline
        push(1, 12); // baseline
        push(2, 60); // spike: 60 > 12 * 4
        push(3, 12);
        push(4, 2); // collapse: 2 * 4 < mean(60, 12) = 36, mean >= 10
        push(5, 12);
        push(6, 12); // extra windows so earlier ones seal
        for doc in &docs {
            det.observe(doc);
            det.evaluate_ready(&mut out);
        }
        det.evaluate_all(&mut out);
        let spikes: Vec<_> = out
            .iter()
            .filter(|a| a.fields["direction"] == "spike")
            .map(|a| a.window_start_ns.unwrap())
            .collect();
        let collapses: Vec<_> = out
            .iter()
            .filter(|a| a.fields["direction"] == "collapse")
            .map(|a| a.window_start_ns.unwrap())
            .collect();
        assert_eq!(spikes, vec![2 * w]);
        assert_eq!(collapses, vec![4 * w]);
    }

    #[test]
    fn rate_detector_is_silent_without_min_ops() {
        let mut det = RateDetector::new(1_000, 0, RateKey::Class, 4.0, 100, 2);
        let mut out = Vec::new();
        for win in 0..6u64 {
            let n = if win == 3 { 50 } else { 2 };
            for i in 0..n {
                det.observe(&json!({"time": win * 1_000 + i, "class": "data"}));
            }
            det.evaluate_ready(&mut out);
        }
        det.evaluate_all(&mut out);
        assert!(out.is_empty(), "min_ops guard keeps tiny traces silent: {out:?}");
    }

    #[test]
    fn error_rate_detector_flags_failing_windows_with_evidence() {
        let mut det = ErrorRateDetector::new(1_000, 0, RateKey::Class, 0.25, 20, 3);
        let mut out = Vec::new();
        for i in 0..40u64 {
            let ret = if i % 2 == 0 { -5 } else { 1 };
            det.observe(&json!({"time": i, "class": "data", "ret_val": ret}));
        }
        for i in 0..40u64 {
            det.observe(&json!({"time": 1_000 + i, "class": "data", "ret_val": 1}));
        }
        det.evaluate_all(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AlertKind::ErrorRateAnomaly);
        assert_eq!(out[0].fields["errors"], 20);
        assert_eq!(out[0].evidence.len(), 3, "evidence capped at the limit");
    }

    #[test]
    fn rate_key_extraction() {
        let doc = json!({"class": "data", "pid": 7, "file_tag": "1|2|3", "proc_name": "p"});
        assert_eq!(RateKey::Class.extract(&doc).as_deref(), Some("data"));
        assert_eq!(RateKey::Pid.extract(&doc).as_deref(), Some("7"));
        assert_eq!(RateKey::FileTag.extract(&doc).as_deref(), Some("1|2|3"));
        assert_eq!(RateKey::Proc.extract(&doc).as_deref(), Some("p"));
        assert_eq!(RateKey::parse("pid"), RateKey::Pid);
        assert_eq!(RateKey::parse("bogus"), RateKey::Class);
    }
}
