//! Dynamically installed detectors.
//!
//! The built-in detectors are compiled into the engine; [`DynDetector`]
//! opens the same observe/seal/finish lifecycle to detectors built at
//! runtime — most prominently rule sets compiled from the `dio-rules`
//! DSL. A dynamic detector is installed with
//! [`crate::DiagnosisEngine::install_detector`] and from then on sees
//! exactly the event stream (and degradation sampling) the hand-coded
//! detectors see, and publishes into the same alert log.

use dio_telemetry::MetricsRegistry;
use serde_json::Value;

use crate::alert::Alert;

/// A detector installed into the [`crate::DiagnosisEngine`] at runtime.
///
/// The engine drives the same lifecycle it drives for the built-in
/// detectors:
///
/// 1. [`DynDetector::observe`] for every evaluated event document (in
///    arrival order, under the engine lock — implementations must not
///    block);
/// 2. [`DynDetector::evaluate_ready`] after each batch (seal
///    watermark-ready windows);
/// 3. [`DynDetector::evaluate_all`] once, at end of stream.
///
/// Alerts pushed onto `out` receive their sequence numbers from the
/// engine and ship through the same sinks as built-in alerts.
pub trait DynDetector: Send {
    /// Stable name of the detector (used in reports and telemetry).
    fn name(&self) -> &str;

    /// Feeds one event document; pushes any resulting alerts onto `out`.
    fn observe(&mut self, doc: &Value, out: &mut Vec<Alert>);

    /// Seals watermark-ready windows and raises their alerts.
    fn evaluate_ready(&mut self, out: &mut Vec<Alert>);

    /// Seals every remaining window (end of stream).
    fn evaluate_all(&mut self, out: &mut Vec<Alert>);

    /// Number of windows still accumulating (feeds the
    /// `diagnose.windows.open` gauge).
    fn open_windows(&self) -> usize {
        0
    }

    /// Per-unit status reports (one JSON object per rule/check), used by
    /// `/api/rules` and the `dio top` rules panel. The default is empty.
    fn reports(&self) -> Vec<Value> {
        Vec::new()
    }

    /// Registers detector-specific telemetry (e.g. per-rule counters)
    /// with the session registry. Called when the engine itself is bound.
    fn bind_telemetry(&mut self, _registry: &MetricsRegistry) {}

    /// Names of rules that opted into DFG attribution (`attribution on`
    /// in the rule DSL). The engine collects these at install time and
    /// decorates only opted-in rule alerts; the default opts nothing in.
    fn attribution_optins(&self) -> Vec<String> {
        Vec::new()
    }
}
