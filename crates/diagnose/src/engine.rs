//! The windowed event-stream diagnosis engine.
//!
//! [`DiagnosisEngine`] owns one instance of every streaming detector and
//! exposes a batch-oriented ingestion API ([`DiagnosisEngine::observe_batch`])
//! plus two feeding modes:
//!
//! * **in-process tap** — the tracer's consumer thread calls
//!   [`DiagnosisEngine::observe_batch_with_pressure`] with the parsed
//!   documents of each drain, passing the pipeline's current fill level;
//!   no backend round-trip is involved (zero-backend operation);
//! * **backend subscription** — [`DiagnosisEngine::spawn_subscriber`]
//!   consumes a [`dio_backend::Subscription`] on a dedicated thread, so
//!   detectors evaluate batches as they land at the store.
//!
//! Backpressure degrades, never stalls: when the reported pressure crosses
//! [`DiagnoseConfig::degrade_pressure`], the engine evaluates only 1 in
//! [`DiagnoseConfig::degraded_sample_every`] events (counted in
//! [`EngineStats::sampled_out`] and the `diagnose.events.sampled_out`
//! telemetry counter) — the shipper-side cost of diagnosis stays bounded
//! under ring-buffer pressure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dio_backend::Subscription;
use dio_correlate::ContentionReport;
use dio_telemetry::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use serde_json::Value;

use crate::alert::{Alert, AlertKind, Severity};
use crate::detectors::{
    ContentionDetector, DataLossDetector, ErrorRateDetector, RateDetector, RateKey,
};
use crate::dynamic::DynDetector;

/// Configuration of the live diagnosis engine (all knobs, flat so it
/// serializes through the tracer's JSON configuration file).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiagnoseConfig {
    /// Window width (ns) for every windowed detector. Default 1s, the
    /// paper's Fig. 4 bucketing.
    pub window_ns: u64,
    /// Window slide (ns) for the rate/error detectors; 0 = tumbling.
    /// The contention detector always tumbles (date-histogram parity).
    pub slide_ns: u64,
    /// Key dimension of the rate/error detectors: `class` (default),
    /// `pid`, `file_tag` or `proc`.
    pub rate_key: String,
    /// Thread-name prefix of foreground/client threads.
    pub client_prefix: String,
    /// Thread-name prefix of background threads.
    pub background_prefix: String,
    /// Background threads that must be active to call a window contended.
    pub background_threshold: usize,
    /// Rate spike/collapse factor versus the trailing baseline.
    pub rate_factor: f64,
    /// Minimum ops/window before a rate verdict may fire.
    pub rate_min_ops: u64,
    /// Trailing windows forming the rate baseline (warm-up guard).
    pub rate_baseline_windows: usize,
    /// Failing fraction at which a window raises an error-rate alert.
    pub error_rate_threshold: f64,
    /// Minimum ops/window before an error-rate verdict may fire.
    pub error_min_ops: u64,
    /// Pipeline pressure (0..1) beyond which evaluation degrades to
    /// sampling.
    pub degrade_pressure: f64,
    /// Under degradation, evaluate 1 in this many events.
    pub degraded_sample_every: u64,
    /// An alert stays "active" while the event-time clock is within this
    /// horizon of it (drives the `dio top` active-alerts panel).
    pub active_ttl_ns: u64,
    /// Maximum evidence rows attached per alert.
    pub evidence_limit: usize,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        DiagnoseConfig {
            window_ns: 1_000_000_000,
            slide_ns: 0,
            rate_key: "class".to_string(),
            client_prefix: "db_bench".to_string(),
            background_prefix: "rocksdb:low".to_string(),
            background_threshold: 5,
            rate_factor: 4.0,
            rate_min_ops: 100,
            rate_baseline_windows: 3,
            error_rate_threshold: 0.25,
            error_min_ops: 20,
            degrade_pressure: 0.75,
            degraded_sample_every: 16,
            active_ttl_ns: 5_000_000_000,
            evidence_limit: 8,
        }
    }
}

impl DiagnoseConfig {
    /// Sets the window width (ns).
    pub fn window_ns(mut self, ns: u64) -> Self {
        self.window_ns = ns.max(1);
        self
    }

    /// Sets the window slide (ns); 0 = tumbling.
    pub fn slide_ns(mut self, ns: u64) -> Self {
        self.slide_ns = ns;
        self
    }

    /// Sets the rate/error key dimension (`class`/`pid`/`file_tag`/`proc`).
    pub fn rate_key(mut self, key: impl Into<String>) -> Self {
        self.rate_key = key.into();
        self
    }

    /// Sets the contention thread-name prefixes.
    pub fn contention_prefixes(
        mut self,
        client: impl Into<String>,
        background: impl Into<String>,
    ) -> Self {
        self.client_prefix = client.into();
        self.background_prefix = background.into();
        self
    }

    /// Sets the contended-window background-thread threshold.
    pub fn background_threshold(mut self, n: usize) -> Self {
        self.background_threshold = n;
        self
    }

    /// Sets the degradation trigger (pipeline fill fraction, 0..1).
    pub fn degrade_pressure(mut self, fraction: f64) -> Self {
        self.degrade_pressure = fraction;
        self
    }

    /// Sets the degraded sampling period (evaluate 1 in `n` events).
    pub fn degraded_sample_every(mut self, n: u64) -> Self {
        self.degraded_sample_every = n.max(1);
        self
    }
}

/// Counters summarizing an engine's lifetime (also exported as
/// `diagnose.*` telemetry while a registry is bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events offered to the engine.
    pub observed: u64,
    /// Events actually run through the detectors.
    pub evaluated: u64,
    /// Events skipped by degraded (sampled) evaluation.
    pub sampled_out: u64,
    /// Batches that arrived while the engine was degraded.
    pub degraded_batches: u64,
    /// Alerts raised.
    pub alerts_raised: u64,
    /// Subscription batches the backend dropped for this consumer.
    pub missed_batches: u64,
}

struct EngineInner {
    data_loss: DataLossDetector,
    contention: ContentionDetector,
    rate: RateDetector,
    error_rate: ErrorRateDetector,
    /// Detectors installed at runtime (compiled rule sets).
    dynamic: Vec<Box<dyn DynDetector>>,
    /// Rule names that opted into DFG attribution (`attribution on`).
    attribution_rules: std::collections::BTreeSet<String>,
    alerts: Vec<Alert>,
    unshipped: Vec<Alert>,
    finished: bool,
}

struct EngineTelemetry {
    observed: Arc<Counter>,
    evaluated: Arc<Counter>,
    sampled_out: Arc<Counter>,
    degraded_batches: Arc<Counter>,
    alerts_raised: Arc<Counter>,
    missed_batches: Arc<Counter>,
    active_alerts: Arc<Gauge>,
    open_windows: Arc<Gauge>,
}

/// Computes the `attribution` block for an alert, installed via
/// [`DiagnosisEngine::set_attributor`]. In the shipped wiring this is the
/// DFG profiler's critical-path computation; the engine itself only knows
/// the type, keeping `dio-diagnose` free of a profile dependency.
pub type Attributor = Box<dyn Fn(&Alert) -> Option<Value> + Send + Sync>;

/// The live diagnosis engine (see the module docs).
pub struct DiagnosisEngine {
    config: DiagnoseConfig,
    inner: Mutex<EngineInner>,
    attributor: OnceLock<Attributor>,
    observed: AtomicU64,
    evaluated: AtomicU64,
    sampled_out: AtomicU64,
    degraded_batches: AtomicU64,
    missed_batches: AtomicU64,
    last_event_ns: AtomicU64,
    sample_tick: AtomicU64,
    telemetry: OnceLock<EngineTelemetry>,
    /// Set once the first alert has dumped the flight recorder, so a
    /// noisy engine produces one forensic snapshot, not one per alert.
    flight_dumped: AtomicBool,
}

impl std::fmt::Debug for DiagnosisEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiagnosisEngine")
            .field("observed", &self.observed.load(Ordering::Relaxed))
            .field("alerts", &self.inner.lock().alerts.len())
            .finish()
    }
}

impl DiagnosisEngine {
    /// Builds an engine with every detector configured from `config`.
    pub fn new(config: DiagnoseConfig) -> Arc<Self> {
        let key = RateKey::parse(&config.rate_key);
        Arc::new(DiagnosisEngine {
            inner: Mutex::new(EngineInner {
                data_loss: DataLossDetector::default(),
                contention: ContentionDetector::new(
                    config.window_ns,
                    config.client_prefix.clone(),
                    config.background_prefix.clone(),
                    config.background_threshold,
                ),
                rate: RateDetector::new(
                    config.window_ns,
                    config.slide_ns,
                    key,
                    config.rate_factor,
                    config.rate_min_ops,
                    config.rate_baseline_windows,
                ),
                error_rate: ErrorRateDetector::new(
                    config.window_ns,
                    config.slide_ns,
                    key,
                    config.error_rate_threshold,
                    config.error_min_ops,
                    config.evidence_limit,
                ),
                dynamic: Vec::new(),
                attribution_rules: Default::default(),
                alerts: Vec::new(),
                unshipped: Vec::new(),
                finished: false,
            }),
            config,
            attributor: OnceLock::new(),
            observed: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            missed_batches: AtomicU64::new(0),
            last_event_ns: AtomicU64::new(0),
            sample_tick: AtomicU64::new(0),
            telemetry: OnceLock::new(),
            flight_dumped: AtomicBool::new(false),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DiagnoseConfig {
        &self.config
    }

    /// Installs a runtime-built detector (e.g. a compiled `dio-rules`
    /// rule set) alongside the built-in ones.
    ///
    /// Install **before** [`DiagnosisEngine::bind_telemetry`] so the
    /// detector's own counters (`diagnose.rule.*`) register with the
    /// session registry; detectors installed later still run but skip
    /// telemetry registration.
    pub fn install_detector(&self, detector: Box<dyn DynDetector>) {
        let mut inner = self.inner.lock();
        inner.attribution_rules.extend(detector.attribution_optins());
        inner.dynamic.push(detector);
    }

    /// Installs the attribution callback (at most once; later calls are
    /// ignored). When present, every alert a built-in detector raises is
    /// decorated with its result before being stored or returned; alerts
    /// from the `rules` detector are decorated only when their rule opted
    /// in via `attribution on` (see [`DynDetector::attribution_optins`]).
    pub fn set_attributor(&self, attributor: Attributor) {
        let _ = self.attributor.set(attributor);
    }

    /// Per-unit status reports of every installed dynamic detector
    /// (one JSON object per rule), in installation order.
    pub fn dynamic_reports(&self) -> Vec<Value> {
        let inner = self.inner.lock();
        inner.dynamic.iter().flat_map(|d| d.reports()).collect()
    }

    /// Registers the `diagnose.*` counters and gauges with a session
    /// registry so degradation and alert activity ship with the health
    /// documents. Also binds every dynamic detector installed so far.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        for detector in self.inner.lock().dynamic.iter_mut() {
            detector.bind_telemetry(registry);
        }
        let _ = self.telemetry.set(EngineTelemetry {
            observed: registry.counter("diagnose.events.observed"),
            evaluated: registry.counter("diagnose.events.evaluated"),
            sampled_out: registry.counter("diagnose.events.sampled_out"),
            degraded_batches: registry.counter("diagnose.batches.degraded"),
            alerts_raised: registry.counter("diagnose.alerts.raised"),
            missed_batches: registry.counter("diagnose.subscription.missed"),
            active_alerts: registry.gauge("diagnose.alerts.active"),
            open_windows: registry.gauge("diagnose.windows.open"),
        });
    }

    /// Feeds a batch at zero pressure (full evaluation).
    pub fn observe_batch(&self, docs: &[Value]) -> Vec<Alert> {
        self.observe_batch_with_pressure(docs, 0.0)
    }

    /// Feeds a batch of event documents, returning any alerts raised.
    ///
    /// `pressure` is the caller's pipeline fill fraction (0..1); at or
    /// above [`DiagnoseConfig::degrade_pressure`] the engine samples
    /// instead of evaluating every event, so a loaded pipeline never waits
    /// on diagnosis.
    pub fn observe_batch_with_pressure(&self, docs: &[Value], pressure: f64) -> Vec<Alert> {
        if docs.is_empty() {
            return Vec::new();
        }
        let degraded =
            pressure >= self.config.degrade_pressure && self.config.degraded_sample_every > 1;
        if degraded {
            self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
        let mut fresh = Vec::new();
        let mut evaluated = 0u64;
        let mut sampled_out = 0u64;
        let mut max_time = 0u64;
        {
            let mut inner = self.inner.lock();
            for doc in docs {
                max_time = max_time.max(doc["time"].as_u64().unwrap_or(0));
                if degraded {
                    let tick = self.sample_tick.fetch_add(1, Ordering::Relaxed);
                    if !tick.is_multiple_of(self.config.degraded_sample_every) {
                        sampled_out += 1;
                        continue;
                    }
                }
                evaluated += 1;
                inner.data_loss.observe(doc, &mut fresh);
                inner.contention.observe(doc);
                inner.rate.observe(doc);
                inner.error_rate.observe(doc);
                for detector in inner.dynamic.iter_mut() {
                    detector.observe(doc, &mut fresh);
                }
            }
            inner.contention.evaluate_ready(&mut fresh);
            inner.rate.evaluate_ready(&mut fresh);
            inner.error_rate.evaluate_ready(&mut fresh);
            for detector in inner.dynamic.iter_mut() {
                detector.evaluate_ready(&mut fresh);
            }
            self.commit(&mut inner, &mut fresh, max_time);
        }
        self.observed.fetch_add(docs.len() as u64, Ordering::Relaxed);
        self.evaluated.fetch_add(evaluated, Ordering::Relaxed);
        self.sampled_out.fetch_add(sampled_out, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            t.observed.add(docs.len() as u64);
            t.evaluated.add(evaluated);
            t.sampled_out.add(sampled_out);
            if degraded {
                t.degraded_batches.inc();
            }
        }
        fresh
    }

    /// Seals every open window and runs the end-of-stream checks; further
    /// calls are no-ops. Returns the alerts raised by this final pass.
    pub fn finish(&self) -> Vec<Alert> {
        let mut fresh = Vec::new();
        let mut inner = self.inner.lock();
        if inner.finished {
            return fresh;
        }
        inner.finished = true;
        inner.contention.evaluate_all(&mut fresh);
        inner.rate.evaluate_all(&mut fresh);
        inner.error_rate.evaluate_all(&mut fresh);
        for detector in inner.dynamic.iter_mut() {
            detector.evaluate_all(&mut fresh);
        }
        // Retrospective safety net: per-window streaming alerts compare
        // against the calm mean *so far*, which can miss a dip whose calm
        // baseline only materialized later. The full-trace report applies
        // the offline verdict.
        if !inner.contention.alerted() {
            let report = inner.contention.report();
            if report.contention_detected() {
                let time = self.last_event_ns.load(Ordering::Relaxed);
                fresh.push(Alert {
                    seq: 0,
                    detector: "contention",
                    kind: AlertKind::ContentionSkew,
                    severity: Severity::Warning,
                    time_ns: time,
                    window_start_ns: None,
                    window_end_ns: None,
                    subject: format!("{}*", self.config.client_prefix),
                    message: format!(
                        "full-trace contention verdict: client throughput fell from {:.1} to \
                         {:.1} op(s)/window across {} contended window(s)",
                        report.client_ops_calm,
                        report.client_ops_contended,
                        report.contended_windows().count()
                    ),
                    fields: serde_json::json!({
                        "client_ops_calm": report.client_ops_calm,
                        "client_ops_contended": report.client_ops_contended,
                        "contended_windows": report.contended_windows().count(),
                        "degradation_factor": report.degradation_factor(),
                    }),
                    evidence: Vec::new(),
                    attribution: None,
                });
            }
        }
        let time = self.last_event_ns.load(Ordering::Relaxed);
        self.commit(&mut inner, &mut fresh, time);
        fresh
    }

    /// Assigns sequence numbers, records the batch's event-time high
    /// water mark, and publishes `fresh` into the alert log.
    fn commit(&self, inner: &mut EngineInner, fresh: &mut [Alert], max_time: u64) {
        if max_time > 0 {
            self.last_event_ns.fetch_max(max_time, Ordering::Relaxed);
        }
        if !fresh.is_empty() {
            let attributor = self.attributor.get();
            for alert in fresh.iter_mut() {
                alert.seq = inner.alerts.len() as u64;
                alert.evidence.truncate(self.config.evidence_limit);
                // Decorate before cloning so the stored, shipped, and
                // returned copies all carry the same attribution. Rule
                // alerts only get one when their rule opted in.
                if alert.attribution.is_none() {
                    if let Some(attribute) = attributor {
                        let wants = alert.detector != "rules"
                            || alert.fields["rule"]
                                .as_str()
                                .is_some_and(|rule| inner.attribution_rules.contains(rule));
                        if wants {
                            alert.attribution = attribute(alert);
                        }
                    }
                }
                inner.alerts.push(alert.clone());
                inner.unshipped.push(alert.clone());
            }
            if let Some(t) = self.telemetry.get() {
                t.alerts_raised.add(fresh.len() as u64);
            }
            // First alert of the session: freeze the flight recorder so
            // the spans leading up to the anomaly survive for forensics.
            if !self.flight_dumped.swap(true, Ordering::Relaxed) {
                let _ = dio_telemetry::trace::dump_on_trigger("alert");
            }
        }
        if let Some(t) = self.telemetry.get() {
            let now = self.last_event_ns.load(Ordering::Relaxed);
            let active =
                inner.alerts.iter().filter(|a| a.time_ns + self.config.active_ttl_ns > now).count();
            t.active_alerts.set(active as u64);
            t.open_windows.set(
                (inner.contention.open_windows()
                    + inner.rate.open_windows()
                    + inner.error_rate.open_windows()
                    + inner.dynamic.iter().map(|d| d.open_windows()).sum::<usize>())
                    as u64,
            );
        }
    }

    /// Every alert raised so far, in sequence order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.lock().alerts.clone()
    }

    /// Alerts whose event time is within [`DiagnoseConfig::active_ttl_ns`]
    /// of the engine's event-time clock (the `dio top` active panel).
    pub fn active_alerts(&self) -> Vec<Alert> {
        let now = self.last_event_ns.load(Ordering::Relaxed);
        self.inner
            .lock()
            .alerts
            .iter()
            .filter(|a| a.time_ns + self.config.active_ttl_ns > now)
            .cloned()
            .collect()
    }

    /// Alerts raised since the last drain (for shipping to the backend).
    pub fn drain_unshipped(&self) -> Vec<Alert> {
        std::mem::take(&mut self.inner.lock().unshipped)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            observed: self.observed.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            alerts_raised: self.inner.lock().alerts.len() as u64,
            missed_batches: self.missed_batches.load(Ordering::Relaxed),
        }
    }

    /// The streaming contention detector's full-trace report (offline
    /// parity; meaningful after [`DiagnosisEngine::finish`]).
    pub fn contention_summary(&self) -> ContentionReport {
        self.inner.lock().contention.report()
    }

    /// Clean-restart validations observed by the data-loss detector.
    pub fn validated_restarts(&self) -> u64 {
        self.inner.lock().data_loss.validated_restarts()
    }

    /// Consumes a backend [`Subscription`] on a dedicated thread: each
    /// received batch is evaluated with the subscription's queue fill as
    /// the pressure signal, and batches the backend had to drop for this
    /// consumer are surfaced as `missed_batches`.
    ///
    /// Stop (and join) via the returned handle; stopping drains the queue
    /// and calls [`DiagnosisEngine::finish`].
    pub fn spawn_subscriber(self: &Arc<Self>, subscription: Subscription) -> SubscriptionHandle {
        let engine = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("dio-diagnose-{}", subscription.index_name()))
            .spawn(move || {
                let capacity = subscription.capacity().max(1);
                loop {
                    let stopping = thread_stop.load(Ordering::Acquire);
                    match subscription.recv_timeout(Duration::from_millis(5)) {
                        Some(batch) => {
                            let pressure = subscription.backlog() as f64 / capacity as f64;
                            engine.note_missed(subscription.missed_batches());
                            engine.observe_batch_with_pressure(&batch, pressure);
                        }
                        None if stopping => break,
                        None => {}
                    }
                }
                engine.note_missed(subscription.missed_batches());
                engine.finish();
            })
            .expect("spawn diagnosis subscriber thread");
        SubscriptionHandle { stop, thread: Some(handle) }
    }

    /// Records the subscription's cumulative missed-batch count.
    fn note_missed(&self, total: u64) {
        let prev = self.missed_batches.swap(total, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            if total > prev {
                t.missed_batches.add(total - prev);
            }
        }
    }
}

/// Joinable handle of a [`DiagnosisEngine::spawn_subscriber`] thread.
#[derive(Debug)]
pub struct SubscriptionHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SubscriptionHandle {
    /// Signals the consumer thread to drain remaining batches, finish the
    /// engine, and exit; joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SubscriptionHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(time: u64, proc: &str, syscall: &str, ret: i64, tag: &str, offset: u64) -> Value {
        json!({
            "time": time, "proc_name": proc, "syscall": syscall,
            "ret_val": ret, "file_tag": tag, "offset": offset, "class": "data",
        })
    }

    fn buggy_batch() -> Vec<Value> {
        vec![
            ev(1, "app", "write", 26, "7340032|12|100", 0),
            ev(2, "fluent-bit", "read", 26, "7340032|12|100", 0),
            ev(3, "fluent-bit", "read", 0, "7340032|12|100", 26),
            ev(4, "app", "write", 16, "7340032|12|200", 0),
            ev(5, "fluent-bit", "read", 0, "7340032|12|200", 26),
        ]
    }

    #[test]
    fn engine_raises_data_loss_immediately() {
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        let fresh = engine.observe_batch(&buggy_batch());
        assert!(fresh.iter().any(|a| a.kind == AlertKind::DataLoss), "got {fresh:?}");
        let stats = engine.stats();
        assert_eq!(stats.observed, 5);
        assert_eq!(stats.evaluated, 5);
        assert_eq!(stats.sampled_out, 0);
        assert!(stats.alerts_raised >= 1);
    }

    #[test]
    fn sequence_numbers_are_assigned_in_order() {
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        engine.observe_batch(&buggy_batch());
        engine.finish();
        let alerts = engine.alerts();
        for (i, a) in alerts.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
        }
    }

    #[test]
    fn pressure_degrades_to_sampling_and_counts_it() {
        let config = DiagnoseConfig::default().degrade_pressure(0.5).degraded_sample_every(4);
        let engine = DiagnosisEngine::new(config);
        let registry = MetricsRegistry::new();
        engine.bind_telemetry(&registry);
        let docs: Vec<Value> =
            (0..100).map(|i| json!({"time": i, "class": "data", "ret_val": 1})).collect();
        engine.observe_batch_with_pressure(&docs, 0.9);
        let stats = engine.stats();
        assert_eq!(stats.observed, 100);
        assert_eq!(stats.sampled_out, 75, "3 of 4 skipped");
        assert_eq!(stats.evaluated, 25);
        assert_eq!(stats.degraded_batches, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("diagnose.events.sampled_out"), 75);
        assert_eq!(snap.counter("diagnose.batches.degraded"), 1);
    }

    #[test]
    fn below_threshold_pressure_evaluates_everything() {
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        let docs: Vec<Value> = (0..50).map(|i| json!({"time": i, "class": "data"})).collect();
        engine.observe_batch_with_pressure(&docs, 0.2);
        assert_eq!(engine.stats().evaluated, 50);
        assert_eq!(engine.stats().sampled_out, 0);
    }

    #[test]
    fn finish_is_idempotent_and_drain_unshipped_clears() {
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        engine.observe_batch(&buggy_batch());
        engine.finish();
        let shipped = engine.drain_unshipped();
        assert!(!shipped.is_empty());
        assert!(engine.drain_unshipped().is_empty());
        assert!(engine.finish().is_empty(), "second finish is a no-op");
    }

    #[test]
    fn active_alerts_expire_with_event_time() {
        let config = DiagnoseConfig { active_ttl_ns: 100, ..Default::default() };
        let engine = DiagnosisEngine::new(config);
        engine.observe_batch(&buggy_batch());
        assert_eq!(engine.active_alerts().len(), engine.alerts().len());
        // Advance the event-time clock far beyond the TTL.
        engine.observe_batch(&[json!({"time": 10_000, "class": "data"})]);
        assert!(engine.active_alerts().is_empty());
        assert!(!engine.alerts().is_empty(), "history is retained");
    }

    #[test]
    fn subscriber_thread_feeds_the_engine_from_the_backend() {
        let store = dio_backend::DocStore::new();
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        let handle = engine.spawn_subscriber(store.subscribe("dio-live"));
        store.bulk("dio-live", buggy_batch());
        // Wait for the consumer to pick the batch up.
        for _ in 0..200 {
            if engine.stats().observed == 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        assert_eq!(engine.stats().observed, 5);
        assert!(engine.alerts().iter().any(|a| a.kind == AlertKind::DataLoss));
    }

    #[test]
    fn dynamic_detector_runs_the_full_lifecycle() {
        struct Probe {
            seen: u64,
            finished: bool,
        }
        impl DynDetector for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn observe(&mut self, _doc: &Value, _out: &mut Vec<Alert>) {
                self.seen += 1;
            }
            fn evaluate_ready(&mut self, _out: &mut Vec<Alert>) {}
            fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
                self.finished = true;
                out.push(Alert {
                    seq: 0,
                    detector: "rule",
                    kind: AlertKind::RuleMatch,
                    severity: Severity::Info,
                    time_ns: 9,
                    window_start_ns: None,
                    window_end_ns: None,
                    subject: "probe".into(),
                    message: format!("saw {} events", self.seen),
                    fields: json!({"seen": self.seen}),
                    evidence: Vec::new(),
                    attribution: None,
                });
            }
            fn reports(&self) -> Vec<Value> {
                vec![json!({"rule": "probe", "seen": self.seen})]
            }
        }

        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        engine.install_detector(Box::new(Probe { seen: 0, finished: false }));
        engine.observe_batch(&buggy_batch());
        let fresh = engine.finish();
        assert!(fresh
            .iter()
            .any(|a| a.kind == AlertKind::RuleMatch && a.message == "saw 5 events"));
        let reports = engine.dynamic_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0]["seen"], 5);
        // The dynamic alert went through commit: it has a real sequence
        // number and shows up in the shared alert log.
        let alerts = engine.alerts();
        assert!(alerts.iter().any(|a| a.kind == AlertKind::RuleMatch));
        for (i, a) in alerts.iter().enumerate() {
            assert_eq!(a.seq, i as u64);
        }
    }

    #[test]
    fn attributor_decorates_builtin_alerts_and_opted_in_rules_only() {
        struct RulePair;
        impl DynDetector for RulePair {
            fn name(&self) -> &str {
                "rules"
            }
            fn observe(&mut self, _doc: &Value, _out: &mut Vec<Alert>) {}
            fn evaluate_ready(&mut self, _out: &mut Vec<Alert>) {}
            fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
                for rule in ["opted", "plain"] {
                    out.push(Alert {
                        seq: 0,
                        detector: "rules",
                        kind: AlertKind::RuleMatch,
                        severity: Severity::Info,
                        time_ns: 9,
                        window_start_ns: None,
                        window_end_ns: None,
                        subject: rule.into(),
                        message: format!("rule {rule} matched"),
                        fields: json!({"rule": rule}),
                        evidence: Vec::new(),
                        attribution: None,
                    });
                }
            }
            fn attribution_optins(&self) -> Vec<String> {
                vec!["opted".to_string()]
            }
        }

        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        engine.install_detector(Box::new(RulePair));
        engine.set_attributor(Box::new(|alert| {
            Some(json!({"edge": "write->fsync", "for": alert.subject}))
        }));
        engine.observe_batch(&buggy_batch());
        engine.finish();
        let alerts = engine.alerts();
        let data_loss = alerts.iter().find(|a| a.kind == AlertKind::DataLoss).unwrap();
        assert!(data_loss.attribution.is_some(), "built-ins always attribute");
        let opted = alerts.iter().find(|a| a.subject == "opted").unwrap();
        assert_eq!(opted.attribution.as_ref().unwrap()["for"], "opted");
        let plain = alerts.iter().find(|a| a.subject == "plain").unwrap();
        assert!(plain.attribution.is_none(), "non-opted rule stays bare");
        // The shipped copies carry the same decoration as the stored ones.
        let shipped = engine.drain_unshipped();
        let shipped_loss = shipped.iter().find(|a| a.kind == AlertKind::DataLoss).unwrap();
        assert_eq!(shipped_loss.attribution, data_loss.attribution);
    }

    #[test]
    fn config_json_roundtrip() {
        let config = DiagnoseConfig::default().window_ns(250_000_000).background_threshold(3);
        let json = serde_json::to_string(&config).unwrap();
        let parsed: DiagnoseConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, config);
    }
}
