#![warn(missing_docs)]

//! Live diagnosis: streaming detectors over the event pipeline.
//!
//! The paper's headline claim is *near real-time* diagnosis — its
//! Elasticsearch/Kibana backend surfaces the Fluent Bit data-loss bug
//! (Fig. 2) and the RocksDB thread-contention pattern (Fig. 3/4) while
//! the trace is still running. This crate closes that gap for the
//! reproduction: incremental ports of the offline `dio-correlate`
//! algorithms run over tumbling/sliding event-time windows and raise
//! typed [`Alert`]s carrying the evidence rows that triggered them, while
//! the trace is live.
//!
//! Three layers:
//!
//! * [`SlidingWindows`] — event-time windowing with watermark sealing;
//! * detectors ([`DataLossDetector`], [`ContentionDetector`],
//!   [`RateDetector`], [`ErrorRateDetector`]) — incremental pattern
//!   matchers agreeing with their offline counterparts on the same event
//!   set (property-tested in the workspace root);
//! * [`DiagnosisEngine`] — owns the detectors, ingests document batches
//!   from the tracer's in-process tap or a backend
//!   [`dio_backend::Subscription`], degrades to sampled evaluation under
//!   pipeline pressure, and publishes alerts + `diagnose.*` telemetry.
//!
//! # Examples
//!
//! ```
//! use dio_diagnose::{AlertKind, DiagnoseConfig, DiagnosisEngine};
//! use serde_json::json;
//!
//! let engine = DiagnosisEngine::new(DiagnoseConfig::default());
//! let fresh = engine.observe_batch(&[
//!     json!({"time": 1, "proc_name": "app", "syscall": "write", "ret_val": 26,
//!            "file_tag": "7340032|12|100", "offset": 0}),
//!     json!({"time": 2, "proc_name": "app", "syscall": "write", "ret_val": 16,
//!            "file_tag": "7340032|12|200", "offset": 0}),
//!     // First read of the new generation resumes at a stale offset and
//!     // hits EOF: the Fig. 2a signature.
//!     json!({"time": 3, "proc_name": "tailer", "syscall": "read", "ret_val": 0,
//!            "file_tag": "7340032|12|200", "offset": 26}),
//! ]);
//! assert!(fresh.iter().any(|a| a.kind == AlertKind::DataLoss));
//! ```

mod alert;
mod detectors;
mod dynamic;
mod engine;
mod window;

pub use alert::{Alert, AlertKind, Severity};
pub use detectors::{
    ContentionDetector, DataLossDetector, ErrorRateDetector, RateDetector, RateKey,
};
pub use dynamic::DynDetector;
pub use engine::{DiagnoseConfig, DiagnosisEngine, EngineStats, SubscriptionHandle};
pub use window::SlidingWindows;
