//! Tumbling / sliding event-time windows.
//!
//! The streaming detectors bucket events into fixed-width windows keyed by
//! event time (`time` field, ns). A window *closes* once the watermark —
//! the largest event time observed so far — passes its end plus one full
//! window of allowed lateness; closed windows are handed to the detector
//! for evaluation and then dropped, so state stays bounded no matter how
//! long the trace runs.
//!
//! With `slide_ns == 0` (the default) windows tumble: each event lands in
//! exactly one window starting at `floor(t / width) * width`, matching the
//! backend's `date_histogram` bucketing so streaming verdicts line up with
//! the offline `correlate` algorithms. A non-zero slide produces
//! overlapping windows anchored at every multiple of the slide.

use std::collections::BTreeMap;

/// Fixed-width windows over event time accumulating per-window state `A`.
#[derive(Debug)]
pub struct SlidingWindows<A> {
    width_ns: u64,
    slide_ns: u64,
    watermark_ns: u64,
    open: BTreeMap<u64, A>,
}

impl<A: Default> SlidingWindows<A> {
    /// Tumbling windows of `width_ns`; `slide_ns == 0` means tumble,
    /// otherwise windows start at every multiple of `slide_ns`.
    pub fn new(width_ns: u64, slide_ns: u64) -> Self {
        SlidingWindows {
            width_ns: width_ns.max(1),
            slide_ns,
            watermark_ns: 0,
            open: BTreeMap::new(),
        }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Largest event time seen so far.
    pub fn watermark_ns(&self) -> u64 {
        self.watermark_ns
    }

    /// Number of windows currently open (accumulating).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Start timestamps of every window containing `t`.
    fn starts_for(&self, t: u64) -> Vec<u64> {
        if self.slide_ns == 0 {
            return vec![(t / self.width_ns) * self.width_ns];
        }
        // Slide-anchored starts s with s <= t < s + width.
        let last = (t / self.slide_ns) * self.slide_ns;
        let mut starts = Vec::new();
        let mut s = last;
        loop {
            if s + self.width_ns > t {
                starts.push(s);
            } else {
                break;
            }
            if s < self.slide_ns {
                break;
            }
            s -= self.slide_ns;
        }
        starts.reverse();
        starts
    }

    /// Routes an event at time `t` into its window(s), applying `f` to each
    /// window's accumulator, and advances the watermark.
    pub fn observe(&mut self, t: u64, mut f: impl FnMut(&mut A)) {
        for start in self.starts_for(t) {
            f(self.open.entry(start).or_default());
        }
        self.watermark_ns = self.watermark_ns.max(t);
    }

    /// Closes and returns every window whose end + one window of lateness
    /// is behind the watermark, in start order.
    pub fn drain_ready(&mut self) -> Vec<(u64, A)> {
        // Allow one full window of lateness before sealing.
        let horizon = self.watermark_ns.saturating_sub(self.width_ns);
        let mut closed = Vec::new();
        while let Some((&start, _)) = self.open.iter().next() {
            if start + self.width_ns <= horizon {
                let acc = self.open.remove(&start).expect("window present");
                closed.push((start, acc));
            } else {
                break;
            }
        }
        closed
    }

    /// Closes and returns every remaining window (end of stream).
    pub fn drain_all(&mut self) -> Vec<(u64, A)> {
        std::mem::take(&mut self.open).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assigns_single_window() {
        let mut w: SlidingWindows<u64> = SlidingWindows::new(100, 0);
        for t in [0, 99, 100, 250] {
            w.observe(t, |c| *c += 1);
        }
        assert_eq!(w.open_count(), 3);
        let all = w.drain_all();
        assert_eq!(all, vec![(0, 2), (100, 1), (200, 1)]);
    }

    #[test]
    fn sliding_assigns_overlapping_windows() {
        let mut w: SlidingWindows<u64> = SlidingWindows::new(100, 50);
        w.observe(120, |c| *c += 1);
        // t=120 belongs to windows starting at 50 and 100.
        let all = w.drain_all();
        assert_eq!(all, vec![(50, 1), (100, 1)]);
    }

    #[test]
    fn drain_ready_respects_lateness() {
        let mut w: SlidingWindows<u64> = SlidingWindows::new(100, 0);
        w.observe(10, |c| *c += 1);
        assert!(w.drain_ready().is_empty(), "watermark too low");
        w.observe(250, |c| *c += 1);
        // horizon = 250 - 100 = 150: window [0,100) sealed, [200,300) open.
        let ready = w.drain_ready();
        assert_eq!(ready, vec![(0, 1)]);
        assert_eq!(w.open_count(), 1);
    }

    #[test]
    fn late_event_within_lateness_still_lands() {
        let mut w: SlidingWindows<u64> = SlidingWindows::new(100, 0);
        w.observe(199, |c| *c += 1);
        w.observe(50, |c| *c += 1); // late but window [0,100) not sealed yet
        let all = w.drain_all();
        assert_eq!(all, vec![(0, 1), (100, 1)]);
    }

    #[test]
    fn zero_width_clamped() {
        let w: SlidingWindows<u64> = SlidingWindows::new(0, 0);
        assert_eq!(w.width_ns(), 1);
    }

    #[test]
    fn sliding_near_origin_does_not_underflow() {
        let mut w: SlidingWindows<u64> = SlidingWindows::new(100, 50);
        w.observe(10, |c| *c += 1);
        let all = w.drain_all();
        assert_eq!(all, vec![(0, 1)]);
    }
}
