//! Kernel-space event filters.
//!
//! DIO "allows collecting only events of interest, filtering them (in
//! kernel-space) by syscall type, PID, TID, or file paths" (§I). Filtering
//! before the ring buffer keeps both the performance overhead and the data
//! volume sent to user space down.

use std::collections::HashSet;

use dio_kernel::{EnterEvent, KernelInspect};
use dio_syscall::{Pid, SyscallKind, SyscallSet, Tid};
use dio_verify::{FilterFacts, VerifyReport};

/// An in-kernel filter specification.
///
/// Empty/`None` dimensions match everything, so `FilterSpec::default()`
/// traces all 42 syscalls from every process.
///
/// # Examples
///
/// ```
/// use dio_ebpf::FilterSpec;
/// use dio_syscall::SyscallKind;
///
/// let filter = FilterSpec::new()
///     .syscalls([SyscallKind::Open, SyscallKind::Read, SyscallKind::Write, SyscallKind::Close])
///     .path_prefix("/db");
/// assert!(filter.matches_kind(SyscallKind::Read));
/// assert!(!filter.matches_kind(SyscallKind::Stat));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FilterSpec {
    syscalls: Option<SyscallSet>,
    pids: Option<HashSet<Pid>>,
    tids: Option<HashSet<Tid>>,
    path_prefixes: Option<Vec<String>>,
}

impl FilterSpec {
    /// A filter matching everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to the given syscall kinds.
    pub fn syscalls(mut self, kinds: impl IntoIterator<Item = SyscallKind>) -> Self {
        self.syscalls = Some(kinds.into_iter().collect());
        self
    }

    /// Restricts to the given process ids.
    pub fn pids(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.pids = Some(pids.into_iter().collect());
        self
    }

    /// Adds one process id to the pid filter.
    pub fn pid(mut self, pid: Pid) -> Self {
        self.pids.get_or_insert_with(HashSet::new).insert(pid);
        self
    }

    /// Restricts to the given thread ids.
    pub fn tids(mut self, tids: impl IntoIterator<Item = Tid>) -> Self {
        self.tids = Some(tids.into_iter().collect());
        self
    }

    /// Restricts to paths under the given prefix (repeatable).
    pub fn path_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.path_prefixes.get_or_insert_with(Vec::new).push(prefix.into());
        self
    }

    /// The syscall kinds this filter admits (all 42 when unrestricted).
    ///
    /// The tracer uses this to decide which tracepoints to enable at all.
    pub fn enabled_syscalls(&self) -> SyscallSet {
        self.syscalls.unwrap_or_else(SyscallSet::all)
    }

    /// Whether a syscall kind passes the type filter.
    pub fn matches_kind(&self, kind: SyscallKind) -> bool {
        self.syscalls.is_none_or(|s| s.contains(kind))
    }

    /// Whether a path passes the path filter.
    pub fn matches_path(&self, path: &str) -> bool {
        match &self.path_prefixes {
            None => true,
            Some(prefixes) => prefixes.iter().any(|p| {
                // An empty prefix matches nothing: prefixes are
                // directory-ish and "" is not a directory (the verifier
                // rejects it as unmatchable; this keeps the runtime
                // matcher consistent with that claim).
                !p.is_empty()
                    && (path == p
                        || (path.starts_with(p.as_str()) && {
                            // Prefixes are directory-ish: "/log" matches
                            // "/log/x" but not "/logfile".
                            p.ends_with('/') || path.as_bytes().get(p.len()) == Some(&b'/')
                        }))
            }),
        }
    }

    /// Lowers the filter into the verifier-neutral [`FilterFacts`] shape
    /// consumed by [`dio_verify::verify_filter`].
    ///
    /// Id sets are sorted so the facts (and thus diagnostics) are
    /// deterministic regardless of hash order.
    pub fn facts(&self) -> FilterFacts {
        fn sorted_ids<T: Copy>(
            set: &Option<HashSet<T>>,
            raw: impl Fn(T) -> u32,
        ) -> Option<Vec<u32>> {
            set.as_ref().map(|s| {
                let mut v: Vec<u32> = s.iter().map(|&id| raw(id)).collect();
                v.sort_unstable();
                v
            })
        }
        FilterFacts {
            syscalls: self.syscalls,
            pids: sorted_ids(&self.pids, |p: Pid| p.0),
            tids: sorted_ids(&self.tids, |t: Tid| t.0),
            path_prefixes: self.path_prefixes.clone(),
        }
    }

    /// Runs the static verifier over this filter.
    ///
    /// This is the load-time analysis [`crate::TracerProgram::new`] applies
    /// before attaching — the reproduction's analogue of the eBPF
    /// verifier's rejection at `BPF_PROG_LOAD`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dio_ebpf::FilterSpec;
    /// use dio_verify::Rule;
    ///
    /// let spec = FilterSpec::new().syscalls([]);
    /// let err = spec.verify().into_result().unwrap_err();
    /// assert!(err.violates(Rule::EmptySyscallSet));
    /// ```
    pub fn verify(&self) -> VerifyReport {
        dio_verify::verify_filter(&self.facts())
    }

    /// Full admission check at `sys_enter`.
    ///
    /// For fd-bearing syscalls the path dimension consults the kernel view
    /// to resolve the descriptor's open path — this is what lets a path
    /// filter also catch `read`/`write`/`close` on a watched file.
    pub fn admits(&self, view: &dyn KernelInspect, event: &EnterEvent<'_>) -> bool {
        if !self.matches_kind(event.kind) {
            return false;
        }
        if let Some(pids) = &self.pids {
            if !pids.contains(&event.pid) {
                return false;
            }
        }
        if let Some(tids) = &self.tids {
            if !tids.contains(&event.tid) {
                return false;
            }
        }
        if self.path_prefixes.is_some() {
            let path_ok = if let Some(path) = event.path {
                self.matches_path(path)
            } else if let Some(fd) = event.fd {
                view.fd_info(event.pid, fd).is_some_and(|info| self.matches_path(&info.path))
            } else {
                false
            };
            if !path_ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::FdInfo;
    use dio_syscall::FileType;

    struct FakeView {
        path: &'static str,
    }

    impl KernelInspect for FakeView {
        fn fd_info(&self, _: Pid, fd: i32) -> Option<FdInfo> {
            (fd == 3).then(|| FdInfo {
                file_type: FileType::Regular,
                offset: 0,
                dev: 1,
                ino: 1,
                first_access_ns: 1,
                path: self.path.to_string(),
            })
        }
        fn process_name(&self, _: Pid) -> Option<String> {
            None
        }
    }

    fn enter(
        kind: SyscallKind,
        pid: u32,
        tid: u32,
        path: Option<&'static str>,
        fd: Option<i32>,
    ) -> EnterEvent<'static> {
        EnterEvent {
            kind,
            pid: Pid(pid),
            tid: Tid(tid),
            comm: "t",
            cpu: 0,
            time_ns: 0,
            args: &[],
            path,
            fd,
        }
    }

    #[test]
    fn default_admits_everything() {
        let f = FilterSpec::new();
        let v = FakeView { path: "/x" };
        assert!(f.admits(&v, &enter(SyscallKind::Read, 1, 1, None, Some(3))));
        assert!(f.admits(&v, &enter(SyscallKind::Mkdir, 9, 9, Some("/d"), None)));
        assert_eq!(f.enabled_syscalls().len(), 42);
    }

    #[test]
    fn syscall_type_filter() {
        let f = FilterSpec::new().syscalls([SyscallKind::Open, SyscallKind::Close]);
        let v = FakeView { path: "/x" };
        assert!(f.admits(&v, &enter(SyscallKind::Open, 1, 1, Some("/x"), None)));
        assert!(!f.admits(&v, &enter(SyscallKind::Read, 1, 1, None, Some(3))));
        assert_eq!(f.enabled_syscalls().len(), 2);
    }

    #[test]
    fn pid_tid_filters() {
        let v = FakeView { path: "/x" };
        let f = FilterSpec::new().pids([Pid(10)]);
        assert!(f.admits(&v, &enter(SyscallKind::Read, 10, 99, None, Some(3))));
        assert!(!f.admits(&v, &enter(SyscallKind::Read, 11, 99, None, Some(3))));
        let f = FilterSpec::new().tids([Tid(7)]);
        assert!(f.admits(&v, &enter(SyscallKind::Read, 1, 7, None, Some(3))));
        assert!(!f.admits(&v, &enter(SyscallKind::Read, 1, 8, None, Some(3))));
        let f = FilterSpec::new().pid(Pid(1)).pid(Pid(2));
        assert!(f.admits(&v, &enter(SyscallKind::Read, 2, 8, None, Some(3))));
    }

    #[test]
    fn path_prefix_semantics() {
        let f = FilterSpec::new().path_prefix("/log");
        assert!(f.matches_path("/log"));
        assert!(f.matches_path("/log/app.log"));
        assert!(!f.matches_path("/logfile"));
        assert!(!f.matches_path("/data/x"));
        let f2 = FilterSpec::new().path_prefix("/a").path_prefix("/b");
        assert!(f2.matches_path("/a/x"));
        assert!(f2.matches_path("/b/y"));
        // An empty prefix matches nothing (consistent with the verifier's
        // unmatchable-path-prefix claim), and "/" matches everything.
        let empty = FilterSpec::new().path_prefix("");
        assert!(!empty.matches_path("/a"));
        assert!(!empty.matches_path(""));
        let root = FilterSpec::new().path_prefix("/");
        assert!(root.matches_path("/a/x"));
    }

    #[test]
    fn path_filter_resolves_fds() {
        let f = FilterSpec::new().path_prefix("/watched");
        let v = FakeView { path: "/watched/f" };
        // fd 3 resolves to /watched/f -> admitted.
        assert!(f.admits(&v, &enter(SyscallKind::Read, 1, 1, None, Some(3))));
        // fd 4 does not resolve -> rejected.
        assert!(!f.admits(&v, &enter(SyscallKind::Read, 1, 1, None, Some(4))));
        // Syscall with neither path nor fd is rejected under a path filter.
        assert!(!f.admits(&v, &enter(SyscallKind::Fstatfs, 1, 1, None, None)));
        let other = FakeView { path: "/other/f" };
        assert!(!f.admits(&other, &enter(SyscallKind::Read, 1, 1, None, Some(3))));
    }

    #[test]
    fn combined_dimensions_are_conjunctive() {
        let f = FilterSpec::new().syscalls([SyscallKind::Write]).pids([Pid(5)]).path_prefix("/d");
        let v = FakeView { path: "/d/f" };
        assert!(f.admits(&v, &enter(SyscallKind::Write, 5, 1, None, Some(3))));
        assert!(!f.admits(&v, &enter(SyscallKind::Write, 6, 1, None, Some(3))));
        assert!(!f.admits(&v, &enter(SyscallKind::Read, 5, 1, None, Some(3))));
    }
}
