#![warn(missing_docs)]

//! DIO's kernel-side machinery, modelled after eBPF.
//!
//! Three pieces mirror what DIO loads into the Linux kernel:
//!
//! * [`FilterSpec`] — in-kernel filtering by syscall type, PID, TID and
//!   file path, evaluated at `sys_enter` before any data is copied;
//! * [`TracerProgram`] — the probe pair attached to each syscall
//!   tracepoint: joins entry+exit in a bounded map, enriches events with
//!   file type / offset / file tag, and emits [`RawEvent`]s;
//! * [`RingBuffer`] — per-CPU bounded queues between kernel-space
//!   producers and the user-space consumer, with exact drop accounting
//!   (the §III-D discard experiment).
//!
//! Loading a [`TracerProgram`] first runs `dio-verify`'s static filter
//! analysis — the reproduction's analogue of the eBPF verifier — so an
//! unsatisfiable or pathological [`FilterSpec`] fails with a typed
//! [`VerifyError`] before any tracepoint is attached (DESIGN.md §9).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dio_ebpf::{ProgramConfig, RingBuffer, RingConfig, TracerProgram};
//! use dio_kernel::{Kernel, SyscallProbe};
//!
//! let kernel = Kernel::new();
//! let ring = Arc::new(RingBuffer::new(kernel.num_cpus(), RingConfig::paper_default()));
//! let program = TracerProgram::new(ProgramConfig::default(), ring).expect("verified filter");
//! kernel.tracepoints().attach(Arc::clone(&program) as Arc<dyn SyscallProbe>);
//!
//! let thread = kernel.spawn_process("app").spawn_thread("app");
//! thread.creat("/file", 0o644)?;
//! let events = program.ring().drain_all(16);
//! assert_eq!(events.len(), 1);
//! # Ok::<(), dio_kernel::Errno>(())
//! ```

mod filter;
mod program;
mod ring;

pub use filter::FilterSpec;
pub use program::{ProgramConfig, ProgramStats, RawEvent, TracerProgram};
pub use ring::{RingBuffer, RingConfig, RingStats};

// Load-time verification vocabulary, re-exported so callers matching on
// rejection diagnostics need not depend on dio-verify directly.
pub use dio_verify::{Rule, VerifyError, VerifyReport};
