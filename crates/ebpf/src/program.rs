//! The DIO tracer's kernel-side program.
//!
//! [`TracerProgram`] plays the role of DIO's eBPF programs: it attaches to
//! the `sys_enter`/`sys_exit` tracepoints of the selected syscalls, filters
//! events in kernel space, **joins entry and exit into a single event**
//! (kernel-side aggregation — a feature the paper credits only to DIO, CaT
//! and Tracee), enriches it with file type / offset / file tag, and pushes
//! it into the per-CPU ring buffer without ever blocking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use dio_kernel::{EnterEvent, ExitEvent, KernelInspect, SyscallProbe};
use dio_syscall::{Arg, FileTag, FileType, Pid, SyscallEvent, SyscallKind, SyscallSet, Tid};
use dio_telemetry::span::{SpanCollector, Stage, StageStamps, StampCarrier};
use dio_telemetry::{Counter, Gauge, MetricsRegistry};
use dio_verify::VerifyError;

use crate::filter::FilterSpec;
use crate::ring::RingBuffer;

/// A joined (entry+exit) raw event as it travels through the ring buffer.
///
/// This is the kernel-side record; the user-space tracer turns it into a
/// [`SyscallEvent`] by stamping the session name.
#[derive(Debug, Clone, PartialEq)]
pub struct RawEvent {
    /// Syscall kind.
    pub kind: SyscallKind,
    /// Calling process.
    pub pid: Pid,
    /// Calling thread.
    pub tid: Tid,
    /// Thread name.
    pub comm: String,
    /// CPU of the entry tracepoint.
    pub cpu: u32,
    /// Entry timestamp (ns).
    pub time_enter_ns: u64,
    /// Exit timestamp (ns).
    pub time_exit_ns: u64,
    /// Return value (`-errno` on failure).
    pub ret: i64,
    /// Raw arguments captured at entry.
    pub args: Vec<Arg>,
    /// Enrichment: file type of the target.
    pub file_type: Option<FileType>,
    /// Enrichment: offset before the syscall applied.
    pub offset: Option<u64>,
    /// Enrichment: file tag of the target.
    pub file_tag: Option<FileTag>,
    /// Path argument for path-bearing syscalls.
    pub path: Option<String>,
    /// Per-stage span stamps accumulated along the pipeline
    /// (kernel dispatch set at emit; ring push/drain and later stages
    /// stamped by the transport layers).
    pub stamps: StageStamps,
}

impl StampCarrier for RawEvent {
    fn stamps(&self) -> &StageStamps {
        &self.stamps
    }
    fn stamps_mut(&mut self) -> &mut StageStamps {
        &mut self.stamps
    }
}

impl RawEvent {
    /// Converts the raw record into a backend-ready event.
    pub fn into_event(self, session: &str) -> SyscallEvent {
        SyscallEvent {
            session: session.to_string(),
            kind: self.kind,
            class: self.kind.class(),
            pid: self.pid,
            tid: self.tid,
            comm: self.comm,
            cpu: self.cpu,
            time_enter_ns: self.time_enter_ns,
            time_exit_ns: self.time_exit_ns,
            ret: self.ret,
            args: self.args,
            file_type: self.file_type,
            offset: self.offset,
            file_tag: self.file_tag,
            file_path: self.path,
        }
    }
}

/// Behavioural knobs of the kernel-side program.
#[derive(Debug, Clone)]
pub struct ProgramConfig {
    /// In-kernel filter applied at `sys_enter`.
    pub filter: FilterSpec,
    /// Whether to perform context enrichment (file type, offset, file tag).
    /// DIO enables this; the cheaper sysdig baseline does not.
    pub enrich: bool,
    /// Whether to record path arguments of path-bearing syscalls.
    pub capture_paths: bool,
    /// Calibrated extra in-kernel work per `sys_enter`, in nanoseconds.
    ///
    /// Models the cost of the real eBPF program (argument copies, map
    /// updates) that the in-process simulation does not naturally pay.
    /// See DESIGN.md §6 "Overhead model".
    pub enter_cost_ns: u64,
    /// Calibrated extra in-kernel work per `sys_exit`, in nanoseconds.
    pub exit_cost_ns: u64,
    /// Capacity of the entry→exit join map (BPF maps are bounded).
    pub join_capacity: usize,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        ProgramConfig {
            filter: FilterSpec::new(),
            enrich: true,
            capture_paths: true,
            enter_cost_ns: 0,
            exit_cost_ns: 0,
            join_capacity: 65_536,
        }
    }
}

/// Counters exported by the program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Events admitted by the filter at `sys_enter`.
    pub admitted: u64,
    /// Events rejected by the filter.
    pub filtered: u64,
    /// Entries dropped because the join map was full.
    pub join_overflow: u64,
    /// Joined events pushed to the ring buffer (successfully or not —
    /// ring-buffer drops are counted by [`RingBuffer::stats`]).
    pub emitted: u64,
}

#[derive(Debug)]
struct Pending {
    kind: SyscallKind,
    time_enter_ns: u64,
    cpu: u32,
    comm: String,
    args: Vec<Arg>,
    path: Option<String>,
    file_type: Option<FileType>,
    offset: Option<u64>,
    file_tag: Option<FileTag>,
    /// fd argument, kept to re-enrich opens at exit.
    fd: Option<i32>,
}

const JOIN_SHARDS: usize = 16;

/// Telemetry handles updated on the program's hot paths once
/// [`TracerProgram::bind_telemetry`] is called.
#[derive(Debug)]
struct ProgramTelemetry {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    join_inserted: Arc<Counter>,
    join_overflow: Arc<Counter>,
    join_occupancy: Arc<Gauge>,
}

/// Kernel-side tracer program. Attach with
/// [`dio_kernel::TracepointRegistry::attach`].
pub struct TracerProgram {
    config: ProgramConfig,
    ring: Arc<RingBuffer<RawEvent>>,
    pending: Vec<Mutex<std::collections::HashMap<Tid, Pending>>>,
    pending_count: AtomicU64,
    admitted: AtomicU64,
    filtered: AtomicU64,
    join_overflow: AtomicU64,
    emitted: AtomicU64,
    telemetry: OnceLock<ProgramTelemetry>,
    spans: OnceLock<Arc<SpanCollector>>,
}

impl std::fmt::Debug for TracerProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerProgram").field("stats", &self.stats()).finish()
    }
}

/// Busy-waits for `ns` nanoseconds (models in-kernel program cost; the work
/// happens on the traced thread, inside the syscall, exactly like eBPF).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

impl TracerProgram {
    /// Creates a program emitting into `ring`.
    ///
    /// The filter is statically verified first (the analogue of the eBPF
    /// verifier's `BPF_PROG_LOAD` check): a spec that can never admit an
    /// event, or whose path filter exceeds the per-event cost budget, is
    /// rejected here with a typed [`VerifyError`] naming each violated
    /// rule — instead of attaching and producing a silently empty trace.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when [`FilterSpec::verify`] rejects the
    /// filter; warnings (e.g. shadowed prefixes) do not fail the load.
    pub fn new(
        config: ProgramConfig,
        ring: Arc<RingBuffer<RawEvent>>,
    ) -> Result<Arc<Self>, VerifyError> {
        config.filter.verify().into_result()?;
        let pending =
            (0..JOIN_SHARDS).map(|_| Mutex::new(std::collections::HashMap::new())).collect();
        Ok(Arc::new(TracerProgram {
            config,
            ring,
            pending,
            pending_count: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            join_overflow: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            telemetry: OnceLock::new(),
            spans: OnceLock::new(),
        }))
    }

    /// Attaches a span collector: every emitted event is accounted as
    /// entering the pipeline (lag watermark), and ring-rejected events are
    /// reported as drop-attributed partial spans. Binding twice is a no-op.
    pub fn bind_spans(&self, spans: Arc<SpanCollector>) {
        self.ring.bind_spans(Arc::clone(&spans));
        let _ = self.spans.set(spans);
    }

    /// Registers the program's metrics (`ebpf.filter.accepted` /
    /// `.rejected`, `ebpf.join.inserted` / `.overflow` / `.occupancy`)
    /// with `registry` and binds the ring buffer's metrics too. Binding
    /// twice is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.telemetry.set(ProgramTelemetry {
            accepted: registry.counter("ebpf.filter.accepted"),
            rejected: registry.counter("ebpf.filter.rejected"),
            join_inserted: registry.counter("ebpf.join.inserted"),
            join_overflow: registry.counter("ebpf.join.overflow"),
            join_occupancy: registry.gauge("ebpf.join.occupancy"),
        });
        self.ring.bind_telemetry(registry);
    }

    /// The ring buffer this program produces into.
    pub fn ring(&self) -> &Arc<RingBuffer<RawEvent>> {
        &self.ring
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
            join_overflow: self.join_overflow.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, tid: Tid) -> &Mutex<std::collections::HashMap<Tid, Pending>> {
        &self.pending[tid.0 as usize % JOIN_SHARDS]
    }

    fn pending_len(&self) -> usize {
        self.pending_count.load(Ordering::Relaxed) as usize
    }
}

impl SyscallProbe for TracerProgram {
    fn kinds(&self) -> SyscallSet {
        self.config.filter.enabled_syscalls()
    }

    fn on_enter(&self, view: &dyn KernelInspect, event: &EnterEvent<'_>) {
        spin_ns(self.config.enter_cost_ns);
        if !self.config.filter.admits(view, event) {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry.get() {
                t.rejected.inc();
            }
            return;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            t.accepted.inc();
        }
        if self.pending_len() >= self.config.join_capacity {
            self.join_overflow.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.telemetry.get() {
                t.join_overflow.inc();
            }
            return;
        }
        let mut p = Pending {
            kind: event.kind,
            time_enter_ns: event.time_ns,
            cpu: event.cpu,
            comm: event.comm.to_string(),
            args: event.args.to_vec(),
            path: if self.config.capture_paths { event.path.map(str::to_string) } else { None },
            file_type: None,
            offset: None,
            file_tag: None,
            fd: event.fd,
        };
        if self.config.enrich {
            if let Some(fd) = event.fd {
                if let Some(info) = view.fd_info(event.pid, fd) {
                    p.file_type = Some(info.file_type);
                    if event.kind.class() == dio_syscall::SyscallClass::Data {
                        // "The file offset being accessed": positional
                        // syscalls carry it as an argument; cursor-based
                        // ones use the open file description's offset.
                        let arg_offset = matches!(
                            event.kind,
                            SyscallKind::Pread64 | SyscallKind::Pwrite64 | SyscallKind::Readahead
                        )
                        .then(|| {
                            event
                                .args
                                .iter()
                                .find(|a| a.name == "offset")
                                .and_then(|a| a.value.as_u64())
                        })
                        .flatten();
                        p.offset = Some(arg_offset.unwrap_or(info.offset));
                    }
                    p.file_tag = Some(info.tag());
                    if self.config.capture_paths && p.path.is_none() {
                        // The open-time dentry path; lets path filters and
                        // the correlation algorithm label fd-based events.
                        // DIO proper resolves this at the backend instead.
                        p.path = None;
                    }
                }
            }
        }
        if self.shard(event.tid).lock().insert(event.tid, p).is_none() {
            let occupancy = self.pending_count.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(t) = self.telemetry.get() {
                t.join_inserted.inc();
                t.join_occupancy.set(occupancy);
            }
        }
    }

    fn on_exit(&self, view: &dyn KernelInspect, event: &ExitEvent) {
        spin_ns(self.config.exit_cost_ns);
        let Some(mut p) = self.shard(event.tid).lock().remove(&event.tid) else {
            return; // filtered at entry, or join-map overflow
        };
        let occupancy = self.pending_count.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        if let Some(t) = self.telemetry.get() {
            t.join_occupancy.set(occupancy);
        }
        if p.kind != event.kind {
            return; // mismatched enter/exit (should not happen)
        }
        // Opens resolve their fd only at exit: enrich the fresh descriptor.
        if self.config.enrich
            && matches!(p.kind, SyscallKind::Open | SyscallKind::Openat | SyscallKind::Creat)
            && event.ret >= 0
        {
            if let Some(info) = view.fd_info(event.pid, event.ret as i32) {
                p.file_type = Some(info.file_type);
                p.file_tag = Some(info.tag());
            }
        }
        let _ = p.fd;
        let mut stamps = StageStamps::new();
        stamps.stamp(Stage::KernelDispatch, event.mono_ns);
        let raw = RawEvent {
            kind: p.kind,
            pid: event.pid,
            tid: event.tid,
            comm: p.comm,
            cpu: p.cpu,
            time_enter_ns: p.time_enter_ns,
            time_exit_ns: event.time_ns,
            ret: event.ret,
            args: p.args,
            file_type: p.file_type,
            offset: p.offset,
            file_tag: p.file_tag,
            path: p.path,
            stamps,
        };
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if let Some(spans) = self.spans.get() {
            spans.note_emitted(event.mono_ns);
        }
        self.ring.try_push_stamped(event.cpu, raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingConfig;
    use dio_kernel::{DiskProfile, Kernel, OpenFlags};

    fn kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    fn attach(kernel: &Kernel, config: ProgramConfig) -> Arc<TracerProgram> {
        let ring =
            Arc::new(RingBuffer::new(kernel.num_cpus(), RingConfig::with_bytes_per_cpu(1 << 20)));
        let prog = TracerProgram::new(config, ring).expect("valid filter spec");
        kernel.tracepoints().attach(Arc::clone(&prog) as Arc<dyn SyscallProbe>);
        prog
    }

    #[test]
    fn captures_joined_events_with_enrichment() {
        let k = kernel();
        let prog = attach(&k, ProgramConfig::default());
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"0123456789012345678901234&").unwrap();
        t.close(fd).unwrap();

        let events = prog.ring().drain_all(100);
        assert_eq!(events.len(), 3);
        let open = &events[0];
        assert_eq!(open.kind, SyscallKind::Openat);
        assert_eq!(open.ret, fd as i64);
        assert_eq!(open.path.as_deref(), Some("/app.log"));
        let tag = open.file_tag.expect("open enriched with tag at exit");
        assert_eq!(tag.dev, dio_kernel::ROOT_DEV);
        assert!(tag.first_access_ns > 0);

        let write = &events[1];
        assert_eq!(write.kind, SyscallKind::Write);
        assert_eq!(write.ret, 26);
        assert_eq!(write.offset, Some(0), "offset reported BEFORE the write applies");
        assert_eq!(write.file_tag, Some(tag), "same generation, same tag");
        assert_eq!(write.file_type, Some(FileType::Regular));
        assert!(write.time_exit_ns >= write.time_enter_ns);

        let close = &events[2];
        assert_eq!(close.kind, SyscallKind::Close);
        assert_eq!(close.file_tag, Some(tag));
        // close is not a data syscall: no offset enrichment.
        assert_eq!(close.offset, None);
    }

    #[test]
    fn positional_syscalls_report_the_accessed_offset() {
        let k = kernel();
        let prog = attach(&k, ProgramConfig::default());
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.pwrite64(fd, b"abcd", 1_000).unwrap();
        let mut buf = [0u8; 2];
        t.pread64(fd, &mut buf, 1_002).unwrap();
        // Cursor-based write still reports the cursor position (0).
        t.write(fd, b"x").unwrap();
        let events = prog.ring().drain_all(100);
        let pwrite = events.iter().find(|e| e.kind == SyscallKind::Pwrite64).unwrap();
        assert_eq!(pwrite.offset, Some(1_000), "pwrite64 offset from its argument");
        let pread = events.iter().find(|e| e.kind == SyscallKind::Pread64).unwrap();
        assert_eq!(pread.offset, Some(1_002));
        let write = events.iter().find(|e| e.kind == SyscallKind::Write).unwrap();
        assert_eq!(write.offset, Some(0), "plain write uses the cursor");
    }

    #[test]
    fn filter_rejections_are_counted_not_emitted() {
        let k = kernel();
        let cfg = ProgramConfig {
            filter: FilterSpec::new().syscalls([SyscallKind::Write]),
            ..ProgramConfig::default()
        };
        let prog = attach(&k, cfg);
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"x").unwrap();
        t.close(fd).unwrap();
        let events = prog.ring().drain_all(100);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SyscallKind::Write);
        // openat/close tracepoints were never enabled -> not even filtered.
        assert_eq!(prog.stats().filtered, 0);
        assert_eq!(prog.stats().admitted, 1);
    }

    #[test]
    fn pid_filter_separates_processes() {
        let k = kernel();
        let p1 = k.spawn_process("one");
        let p2 = k.spawn_process("two");
        let cfg = ProgramConfig {
            filter: FilterSpec::new().pids([p1.pid()]),
            ..ProgramConfig::default()
        };
        let prog = attach(&k, cfg);
        let t1 = p1.spawn_thread("one");
        let t2 = p2.spawn_thread("two");
        t1.creat("/a", 0o644).unwrap();
        t2.creat("/b", 0o644).unwrap();
        let events = prog.ring().drain_all(100);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].pid, p1.pid());
        assert_eq!(prog.stats().filtered, 1);
    }

    #[test]
    fn enrichment_disabled_omits_context() {
        let k = kernel();
        let cfg = ProgramConfig { enrich: false, ..ProgramConfig::default() };
        let prog = attach(&k, cfg);
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"abc").unwrap();
        let events = prog.ring().drain_all(100);
        assert!(events.iter().all(|e| e.file_tag.is_none() && e.offset.is_none()));
    }

    #[test]
    fn failed_syscalls_carry_negative_errno() {
        let k = kernel();
        let prog = attach(&k, ProgramConfig::default());
        let t = k.spawn_process("app").spawn_thread("app");
        let _ = t.openat("/missing", OpenFlags::RDONLY, 0);
        let events = prog.ring().drain_all(10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ret, -2, "ENOENT encoded as -2");
        assert!(events[0].file_tag.is_none());
    }

    #[test]
    fn into_event_stamps_session() {
        let k = kernel();
        let prog = attach(&k, ProgramConfig::default());
        let t = k.spawn_process("app").spawn_thread("worker1");
        t.creat("/f", 0o644).unwrap();
        let raw = prog.ring().drain_all(1).pop().unwrap();
        let ev = raw.into_event("sess-42");
        assert_eq!(ev.session, "sess-42");
        assert_eq!(ev.comm, "worker1");
        assert_eq!(ev.kind, SyscallKind::Creat);
        assert_eq!(ev.class, dio_syscall::SyscallClass::Metadata);
    }

    #[test]
    fn ring_overflow_drops_newest_events() {
        let k = kernel();
        let ring = Arc::new(RingBuffer::with_slots(k.num_cpus(), 2));
        let prog = TracerProgram::new(ProgramConfig::default(), ring).unwrap();
        k.tracepoints().attach(Arc::clone(&prog) as Arc<dyn SyscallProbe>);
        let p = k.spawn_process("app");
        let t = p.spawn_thread("app"); // one thread => one CPU => one 2-slot queue
        for i in 0..10 {
            t.creat(&format!("/f{i}"), 0o644).unwrap();
        }
        let stats = prog.ring().stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.dropped, 8);
        assert_eq!(prog.stats().emitted, 10);
    }

    #[test]
    fn join_capacity_overflow_counts() {
        let k = kernel();
        let ring = Arc::new(RingBuffer::with_slots(k.num_cpus(), 64));
        let cfg = ProgramConfig { join_capacity: 0, ..ProgramConfig::default() };
        let prog = TracerProgram::new(cfg, ring).unwrap();
        k.tracepoints().attach(Arc::clone(&prog) as Arc<dyn SyscallProbe>);
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/f", 0o644).unwrap();
        assert_eq!(prog.stats().join_overflow, 1);
        assert!(prog.ring().is_empty());
    }

    mod load_time_verification {
        use super::*;
        use dio_verify::Rule;

        fn load(filter: FilterSpec) -> Result<Arc<TracerProgram>, dio_verify::VerifyError> {
            let ring = Arc::new(RingBuffer::with_slots(1, 8));
            TracerProgram::new(ProgramConfig { filter, ..ProgramConfig::default() }, ring)
        }

        #[test]
        fn empty_syscall_set_fails_load() {
            let err = load(FilterSpec::new().syscalls([])).unwrap_err();
            assert!(err.violates(Rule::EmptySyscallSet));
            assert!(err.to_string().contains("error[empty-syscall-set]"));
        }

        #[test]
        fn empty_pid_set_fails_load() {
            let err = load(FilterSpec::new().pids([])).unwrap_err();
            assert!(err.violates(Rule::EmptyPidSet));
        }

        #[test]
        fn empty_tid_set_fails_load() {
            let err = load(FilterSpec::new().tids([])).unwrap_err();
            assert!(err.violates(Rule::EmptyTidSet));
        }

        #[test]
        fn unmatchable_id_fails_load() {
            let err = load(FilterSpec::new().pids([Pid(0)])).unwrap_err();
            assert!(err.violates(Rule::UnmatchableId));
            let err = load(FilterSpec::new().tids([Tid(0)])).unwrap_err();
            assert!(err.violates(Rule::UnmatchableId));
        }

        #[test]
        fn unmatchable_path_prefix_fails_load() {
            let err = load(FilterSpec::new().path_prefix("relative/never")).unwrap_err();
            assert!(err.violates(Rule::UnmatchablePathPrefix));
            let err = load(FilterSpec::new().path_prefix("")).unwrap_err();
            assert!(err.violates(Rule::UnmatchablePathPrefix));
        }

        #[test]
        fn duplicate_path_prefix_fails_load() {
            let err = load(FilterSpec::new().path_prefix("/db").path_prefix("/db")).unwrap_err();
            assert!(err.violates(Rule::DuplicatePathPrefix));
        }

        #[test]
        fn path_filter_cost_fails_load() {
            let mut spec = FilterSpec::new();
            for i in 0..=dio_verify::MAX_PATH_PREFIXES {
                spec = spec.path_prefix(format!("/p{i}"));
            }
            let err = load(spec).unwrap_err();
            assert!(err.violates(Rule::PathFilterCost));
        }

        #[test]
        fn warnings_do_not_fail_load() {
            // A shadowed prefix warns but the program still loads.
            let spec = FilterSpec::new().path_prefix("/db").path_prefix("/db/wal");
            assert_eq!(spec.verify().warnings().count(), 1);
            assert!(load(spec).is_ok());
            assert!(load(FilterSpec::new()).is_ok(), "default spec always loads");
        }
    }
}
