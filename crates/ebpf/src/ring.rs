//! Per-CPU bounded ring buffers for kernel→user event transport.
//!
//! Mirrors the BPF per-CPU ring buffer: producers (eBPF programs in the
//! syscall path) never block — when the consumer lags and a CPU's buffer is
//! full, the event is **dropped** and counted. §III-D of the paper measures
//! exactly this (3.5% of 549 M events dropped at 256 MiB/CPU).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::queue::ArrayQueue;

use dio_telemetry::span::{monotonic_ns, SpanCollector, Stage, StageStamps, StampCarrier};
use dio_telemetry::{Counter, Gauge, MetricsRegistry};

/// Sizing for the per-CPU buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RingConfig {
    /// Bytes reserved per CPU (the paper's experiments use 256 MiB).
    pub bytes_per_cpu: u64,
    /// Estimated serialized size of one event, used to convert bytes to
    /// slots (DIO events average a few hundred bytes of JSON).
    pub est_event_bytes: u64,
}

impl RingConfig {
    /// The paper's configuration: 256 MiB per CPU.
    pub fn paper_default() -> Self {
        RingConfig { bytes_per_cpu: 256 * 1024 * 1024, est_event_bytes: 512 }
    }

    /// A small buffer for tests and discard-rate experiments.
    pub fn with_bytes_per_cpu(bytes_per_cpu: u64) -> Self {
        RingConfig { bytes_per_cpu, est_event_bytes: 512 }
    }

    /// Slots per CPU implied by this configuration (at least 1).
    pub fn slots_per_cpu(&self) -> usize {
        ((self.bytes_per_cpu / self.est_event_bytes.max(1)) as usize).max(1)
    }
}

/// Counters for a single CPU's buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CpuRingStats {
    /// The CPU index.
    pub cpu: u32,
    /// Events successfully produced into this CPU's buffer.
    pub pushed: u64,
    /// Events taken out by the consumer.
    pub consumed: u64,
    /// Events dropped because this CPU's buffer was full.
    pub dropped: u64,
    /// Highest occupancy (queued events) this buffer ever reached.
    pub occupancy_hwm: u64,
}

impl CpuRingStats {
    /// Fraction of this CPU's produced-or-dropped events that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let total = self.pushed + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Counters describing ring-buffer behaviour over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Events successfully produced into some CPU buffer.
    pub pushed: u64,
    /// Events taken out by the consumer.
    pub consumed: u64,
    /// Events dropped because the target CPU buffer was full.
    pub dropped: u64,
    /// Highest occupancy any single CPU buffer ever reached.
    pub occupancy_hwm: u64,
    /// Per-CPU breakdown, indexed by CPU.
    pub per_cpu: Vec<CpuRingStats>,
}

impl RingStats {
    /// Fraction of produced-or-dropped events that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let total = self.pushed + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// Spread between the busiest and quietest CPU's drop rate — nonzero
    /// when the consumer's round-robin draining or a skewed producer load
    /// penalizes some CPUs more than others.
    pub fn drop_skew(&self) -> f64 {
        let rates: Vec<f64> = self.per_cpu.iter().map(CpuRingStats::drop_rate).collect();
        match (
            rates.iter().cloned().fold(f64::INFINITY, f64::min),
            rates.iter().cloned().fold(0.0f64, f64::max),
        ) {
            (min, max) if min.is_finite() => max - min,
            _ => 0.0,
        }
    }
}

/// Telemetry handles the ring updates on its hot paths once
/// [`RingBuffer::bind_telemetry`] is called.
#[derive(Debug)]
struct RingTelemetry {
    pushed: Arc<Counter>,
    dropped: Arc<Counter>,
    consumed: Arc<Counter>,
    occupancy_hwm: Arc<Gauge>,
}

/// Per-queue counters backing [`CpuRingStats`].
#[derive(Debug, Default)]
struct CpuCounters {
    pushed: AtomicU64,
    consumed: AtomicU64,
    dropped: AtomicU64,
    occupancy_hwm: AtomicU64,
}

/// A set of per-CPU bounded queues with drop accounting.
///
/// # Examples
///
/// ```
/// use dio_ebpf::{RingBuffer, RingConfig};
///
/// let ring: RingBuffer<u32> = RingBuffer::with_slots(2, 4);
/// ring.try_push(0, 7);
/// assert_eq!(ring.drain(0, 16), vec![7]);
/// assert_eq!(ring.stats().consumed, 1);
/// ```
#[derive(Debug)]
pub struct RingBuffer<T> {
    queues: Vec<ArrayQueue<T>>,
    counters: Vec<CpuCounters>,
    telemetry: OnceLock<RingTelemetry>,
    spans: OnceLock<Arc<SpanCollector>>,
}

impl<T> RingBuffer<T> {
    /// Creates per-CPU buffers sized by `config`.
    pub fn new(num_cpus: u32, config: RingConfig) -> Self {
        Self::with_slots(num_cpus, config.slots_per_cpu())
    }

    /// Creates per-CPU buffers with an explicit slot count.
    pub fn with_slots(num_cpus: u32, slots_per_cpu: usize) -> Self {
        let n = num_cpus.max(1) as usize;
        RingBuffer {
            queues: (0..n).map(|_| ArrayQueue::new(slots_per_cpu.max(1))).collect(),
            counters: (0..n).map(|_| CpuCounters::default()).collect(),
            telemetry: OnceLock::new(),
            spans: OnceLock::new(),
        }
    }

    /// Registers the ring's metrics (`ebpf.ring.pushed` / `.dropped` /
    /// `.consumed` / `.occupancy_hwm`) with `registry`; the hot paths
    /// update them lock-free from then on. Binding twice is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.telemetry.set(RingTelemetry {
            pushed: registry.counter("ebpf.ring.pushed"),
            dropped: registry.counter("ebpf.ring.dropped"),
            consumed: registry.counter("ebpf.ring.consumed"),
            occupancy_hwm: registry.gauge("ebpf.ring.occupancy_hwm"),
        });
    }

    /// Attaches a span collector for drop attribution: from then on,
    /// events rejected by [`RingBuffer::try_push_stamped`] are reported as
    /// drop-attributed partial spans. Binding twice is a no-op.
    pub fn bind_spans(&self, spans: Arc<SpanCollector>) {
        let _ = self.spans.set(spans);
    }

    /// Number of per-CPU queues.
    pub fn num_cpus(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Events currently queued across all CPU buffers.
    pub fn occupancy(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    /// Total slots across all CPU buffers.
    pub fn capacity(&self) -> u64 {
        self.queues.iter().map(|q| q.capacity() as u64).sum()
    }

    /// Current fill level of the *fullest* CPU buffer, 0.0 (empty) to
    /// 1.0 (every slot occupied) — the backpressure signal consumers use
    /// to shed optional work before drops begin. Per-CPU, not averaged:
    /// overflow happens per queue, so one saturated CPU is real pressure
    /// even while the others idle.
    pub fn fill_fraction(&self) -> f64 {
        self.queues
            .iter()
            .map(|q| if q.capacity() == 0 { 0.0 } else { q.len() as f64 / q.capacity() as f64 })
            .fold(0.0, f64::max)
    }

    /// The single overflow-accounting site. The per-CPU counters are the
    /// **source of truth** for drop counts; the `ebpf.ring.dropped`
    /// telemetry counter and the span collector's drop attribution are
    /// derived views updated here, in the same call, so the three can
    /// never diverge (they are reconciled against each other in tests).
    fn note_drop(&self, slot: usize, pre_push: Option<&StageStamps>) {
        self.counters[slot].dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            t.dropped.inc();
        }
        if let Some(pre) = pre_push {
            if let Some(spans) = self.spans.get() {
                spans.record_drop(pre);
            }
        }
    }

    /// Success path of a push: counters and telemetry on accept, `false`
    /// (no accounting) on overflow — the caller routes overflow through
    /// [`RingBuffer::note_drop`].
    fn push_at(&self, slot: usize, item: T) -> bool {
        let q = &self.queues[slot];
        match q.push(item) {
            Ok(()) => {
                self.counters[slot].pushed.fetch_add(1, Ordering::Relaxed);
                let occupancy = q.len() as u64;
                self.counters[slot].occupancy_hwm.fetch_max(occupancy, Ordering::Relaxed);
                if let Some(t) = self.telemetry.get() {
                    t.pushed.inc();
                    t.occupancy_hwm.set_max(occupancy);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Non-blocking push from CPU `cpu`. On overflow the event is dropped
    /// and counted; the producer never waits.
    pub fn try_push(&self, cpu: u32, item: T) -> bool {
        let slot = cpu as usize % self.queues.len();
        if self.push_at(slot, item) {
            true
        } else {
            self.note_drop(slot, None);
            false
        }
    }

    /// [`RingBuffer::try_push`] for span-carrying events: stamps
    /// [`Stage::RingPush`] on the event entering the ring, and on overflow
    /// hands the *pre-push* partial stamp record to the bound
    /// [`SpanCollector`] so the drop is attributed to the `ring_push`
    /// hand-off the event failed to clear — in the same internal
    /// `note_drop` call that bumps the counters.
    pub fn try_push_stamped(&self, cpu: u32, mut item: T) -> bool
    where
        T: StampCarrier,
    {
        let slot = cpu as usize % self.queues.len();
        let pre_push = *item.stamps();
        item.stamps_mut().stamp_now(Stage::RingPush);
        if self.push_at(slot, item) {
            true
        } else {
            self.note_drop(slot, Some(&pre_push));
            false
        }
    }

    fn count_consumed(&self, slot: usize, n: u64) {
        if n == 0 {
            return;
        }
        self.counters[slot].consumed.fetch_add(n, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            t.consumed.add(n);
        }
    }

    /// Pops up to `max` events from CPU `cpu`'s buffer.
    pub fn drain(&self, cpu: u32, max: usize) -> Vec<T> {
        let slot = cpu as usize % self.queues.len();
        let q = &self.queues[slot];
        let mut out = Vec::new();
        while out.len() < max {
            match q.pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        self.count_consumed(slot, out.len() as u64);
        out
    }

    /// Pops up to `max` events across all CPU buffers, round-robin.
    pub fn drain_all(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        let mut taken = vec![0u64; self.queues.len()];
        'outer: loop {
            let mut empty = 0;
            for (slot, q) in self.queues.iter().enumerate() {
                if out.len() >= max {
                    break 'outer;
                }
                match q.pop() {
                    Some(item) => {
                        out.push(item);
                        taken[slot] += 1;
                    }
                    None => empty += 1,
                }
            }
            if empty == self.queues.len() {
                break;
            }
        }
        for (slot, n) in taken.into_iter().enumerate() {
            self.count_consumed(slot, n);
        }
        out
    }

    /// [`RingBuffer::drain_all`] for span-carrying events: stamps
    /// [`Stage::RingDrain`] on every event leaving the ring (one clock
    /// read for the whole batch).
    pub fn drain_all_stamped(&self, max: usize) -> Vec<T>
    where
        T: StampCarrier,
    {
        let mut out = self.drain_all(max);
        if !out.is_empty() {
            let now = monotonic_ns();
            for item in &mut out {
                item.stamps_mut().stamp(Stage::RingDrain, now);
            }
        }
        out
    }

    /// Whether every CPU buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Counter snapshot, with the per-CPU breakdown.
    pub fn stats(&self) -> RingStats {
        let per_cpu: Vec<CpuRingStats> = self
            .counters
            .iter()
            .enumerate()
            .map(|(cpu, c)| CpuRingStats {
                cpu: cpu as u32,
                pushed: c.pushed.load(Ordering::Relaxed),
                consumed: c.consumed.load(Ordering::Relaxed),
                dropped: c.dropped.load(Ordering::Relaxed),
                occupancy_hwm: c.occupancy_hwm.load(Ordering::Relaxed),
            })
            .collect();
        RingStats {
            pushed: per_cpu.iter().map(|c| c.pushed).sum(),
            consumed: per_cpu.iter().map(|c| c.consumed).sum(),
            dropped: per_cpu.iter().map(|c| c.dropped).sum(),
            occupancy_hwm: per_cpu.iter().map(|c| c.occupancy_hwm).max().unwrap_or(0),
            per_cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_slot_math() {
        let c = RingConfig::paper_default();
        assert_eq!(c.slots_per_cpu(), (256 * 1024 * 1024 / 512) as usize);
        assert_eq!(RingConfig::with_bytes_per_cpu(1024).slots_per_cpu(), 2);
        assert_eq!(RingConfig { bytes_per_cpu: 1, est_event_bytes: 512 }.slots_per_cpu(), 1);
    }

    #[test]
    fn push_drain_roundtrip() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(2, 8);
        for i in 0..5 {
            assert!(ring.try_push(i % 2, i));
        }
        let cpu0 = ring.drain(0, 16);
        let cpu1 = ring.drain(1, 16);
        assert_eq!(cpu0, vec![0, 2, 4]);
        assert_eq!(cpu1, vec![1, 3]);
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(1, 2);
        assert!(ring.try_push(0, 1));
        assert!(ring.try_push(0, 2));
        assert!(!ring.try_push(0, 3));
        assert!(!ring.try_push(0, 4));
        let s = ring.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.dropped, 2);
        assert!((s.drop_rate() - 0.5).abs() < 1e-9);
        // Consumer only ever sees the events that fit.
        assert_eq!(ring.drain(0, 16), vec![1, 2]);
    }

    #[test]
    fn drain_all_round_robins() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(3, 4);
        ring.try_push(0, 0);
        ring.try_push(1, 1);
        ring.try_push(2, 2);
        ring.try_push(0, 3);
        let all = ring.drain_all(10);
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(ring.stats().consumed, 4);
    }

    #[test]
    fn drain_respects_max() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(1, 8);
        for i in 0..6 {
            ring.try_push(0, i);
        }
        assert_eq!(ring.drain(0, 4).len(), 4);
        assert_eq!(ring.drain_all(1).len(), 1);
        assert_eq!(ring.drain(0, 16).len(), 1);
    }

    #[test]
    fn cpu_index_wraps() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(2, 4);
        ring.try_push(5, 42); // cpu 5 % 2 == 1
        assert_eq!(ring.drain(1, 4), vec![42]);
    }

    #[test]
    fn empty_drop_rate_is_zero() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(1, 1);
        assert_eq!(ring.stats().drop_rate(), 0.0);
    }

    /// Regression: the aggregate occupancy high-water mark is per-CPU and
    /// must be the max of the per-CPU maxima, never their sum — HWM 3 on
    /// cpu0 plus HWM 2 on cpu1 is an aggregate of 3, not 5.
    #[test]
    fn occupancy_hwm_aggregates_max_of_maxes_not_sum() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(2, 8);
        for i in 0..3 {
            ring.try_push(0, i); // cpu0 occupancy reaches 3
        }
        for i in 0..2 {
            ring.try_push(1, i); // cpu1 occupancy reaches 2
        }
        let s = ring.stats();
        assert_eq!(s.per_cpu[0].occupancy_hwm, 3);
        assert_eq!(s.per_cpu[1].occupancy_hwm, 2);
        assert_eq!(s.occupancy_hwm, 3, "aggregate must be max(3, 2), not 3 + 2");
        // Draining never lowers a high-water mark.
        ring.drain_all(16);
        assert_eq!(ring.stats().occupancy_hwm, 3);
    }

    #[test]
    fn stamped_push_and_drain_stamp_hand_offs() {
        use dio_telemetry::span::StageStamps;

        let ring: RingBuffer<StageStamps> = RingBuffer::with_slots(1, 4);
        let mut stamps = StageStamps::new();
        stamps.stamp_now(Stage::KernelDispatch);
        assert!(ring.try_push_stamped(0, stamps));
        let drained = ring.drain_all_stamped(4);
        assert_eq!(drained.len(), 1);
        let s = drained[0];
        let push = s.get(Stage::RingPush).expect("push stamped");
        let drain = s.get(Stage::RingDrain).expect("drain stamped");
        assert!(s.get(Stage::KernelDispatch).unwrap() <= push);
        assert!(push <= drain);
        assert_eq!(s.first_missing(), Some(Stage::Parse));
    }

    #[test]
    fn capacity_and_fill_fraction_track_occupancy() {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(2, 4);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.fill_fraction(), 0.0);
        for i in 0..2 {
            ring.try_push(0, i);
        }
        // Fill is per-CPU (the fullest queue), not a workspace average:
        // CPU 0 at 2/4 while CPU 1 idles reads as 0.5, not 0.25.
        assert!((ring.fill_fraction() - 0.5).abs() < 1e-9);
        for i in 0..4 {
            ring.try_push(1, i);
        }
        assert!((ring.fill_fraction() - 1.0).abs() < 1e-9);
        ring.drain_all(16);
        assert_eq!(ring.fill_fraction(), 0.0);
    }

    /// The drop-accounting contract: the per-CPU counters are the source
    /// of truth, and both derived views — the `ebpf.ring.dropped`
    /// telemetry counter and the span collector's drop attribution — must
    /// reconcile with them exactly, because all three are updated at the
    /// single `note_drop` site.
    #[test]
    fn drop_accounting_reconciles_across_stats_telemetry_and_spans() {
        use dio_telemetry::span::StageStamps;
        use dio_telemetry::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        let ring: RingBuffer<StageStamps> = RingBuffer::with_slots(2, 2);
        ring.bind_telemetry(&registry);
        ring.bind_spans(Arc::clone(&spans));

        let mut stamps = StageStamps::new();
        stamps.stamp_now(Stage::KernelDispatch);
        let mut accepted = 0u64;
        for i in 0..20u32 {
            if ring.try_push_stamped(i % 2, stamps) {
                accepted += 1;
            }
        }
        let stats = ring.stats();
        assert_eq!(stats.pushed, accepted);
        assert_eq!(stats.dropped, 20 - accepted);
        assert!(stats.dropped > 0, "tiny ring must overflow");
        let per_cpu_sum: u64 = stats.per_cpu.iter().map(|c| c.dropped).sum();
        assert_eq!(per_cpu_sum, stats.dropped, "aggregate = sum of source-of-truth counters");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ebpf.ring.dropped"), stats.dropped);
        assert_eq!(snap.counter("ebpf.ring.pushed"), stats.pushed);
        let summary = spans.summary();
        assert_eq!(summary.dropped, stats.dropped);
        assert_eq!(summary.drops_by_stage.get("ring_push"), Some(&stats.dropped));
    }

    #[test]
    fn stamped_push_overflow_attributes_drop_to_ring_push() {
        use dio_telemetry::span::StageStamps;
        use dio_telemetry::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        let ring: RingBuffer<StageStamps> = RingBuffer::with_slots(1, 1);
        ring.bind_spans(Arc::clone(&spans));

        let mut stamps = StageStamps::new();
        stamps.stamp_now(Stage::KernelDispatch);
        assert!(ring.try_push_stamped(0, stamps));
        assert!(!ring.try_push_stamped(0, stamps), "second push overflows");

        let summary = spans.summary();
        assert_eq!(summary.dropped, 1);
        assert_eq!(summary.drops_by_stage.get("ring_push"), Some(&1));
        assert_eq!(summary.e2e.count, 0, "dropped events never reach e2e");
    }
}
