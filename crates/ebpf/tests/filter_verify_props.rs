//! Property tests for the verifier's soundness contract (ISSUE §c):
//!
//! * an **accepted** `FilterSpec` never panics during verification or
//!   admission, and is never statically empty — brute-force evaluation
//!   over a kernel-realistic event universe finds a witness it admits;
//! * a spec the verifier proves **statically empty** admits no event from
//!   that same universe.
//!
//! The universe is built from the spec's own ids/prefixes plus neutral
//! candidates, restricted to what the simulated kernel can actually
//! produce: absolute, NUL-free paths no longer than `PATH_MAX`, and
//! thread/process ids the kernel allocator can assign (never 0).

use proptest::prelude::*;

use dio_ebpf::FilterSpec;
use dio_kernel::{EnterEvent, FdInfo, KernelInspect};
use dio_syscall::{FileType, Pid, SyscallKind, Tid};
use dio_verify::PATH_MAX;

/// A kernel view resolving every fd to one configured open path.
struct OneFileView {
    path: String,
}

impl KernelInspect for OneFileView {
    fn fd_info(&self, _: Pid, _: i32) -> Option<FdInfo> {
        Some(FdInfo {
            file_type: FileType::Regular,
            offset: 0,
            dev: 1,
            ino: 1,
            first_access_ns: 1,
            path: self.path.clone(),
        })
    }
    fn process_name(&self, _: Pid) -> Option<String> {
        None
    }
}

/// Whether the simulated kernel could ever produce `path` as a resolved
/// file path: absolute, NUL-free, within `PATH_MAX`.
fn kernel_realistic(path: &str) -> bool {
    path.starts_with('/') && !path.contains('\0') && path.len() <= PATH_MAX
}

/// Brute-force search for an event the spec admits, over a universe
/// derived from the spec itself. Returns the witness, if any.
fn find_witness(spec: &FilterSpec, facts: &dio_verify::FilterFacts) -> Option<String> {
    let mut ids: Vec<u32> = vec![1000, 1001];
    ids.extend(facts.pids.iter().flatten().copied());
    ids.extend(facts.tids.iter().flatten().copied());
    ids.retain(|&id| id != 0); // the kernel never assigns id 0

    let mut paths: Vec<String> = vec!["/".into(), "/data".into(), "/data/f".into()];
    for p in facts.path_prefixes.iter().flatten() {
        paths.push(p.clone());
        paths.push(if p.ends_with('/') { format!("{p}f") } else { format!("{p}/f") });
    }
    paths.retain(|p| kernel_realistic(p));

    for &kind in SyscallKind::ALL {
        for &pid in &ids {
            for &tid in &ids {
                for path in &paths {
                    let view = OneFileView { path: path.clone() };
                    // Path-bearing syscalls carry the path inline; fd-only
                    // ones rely on fd→path resolution, as at runtime.
                    let (ev_path, ev_fd) = if kind.takes_path() {
                        (Some(path.as_str()), None)
                    } else {
                        (None, Some(3))
                    };
                    let event = EnterEvent {
                        kind,
                        pid: Pid(pid),
                        tid: Tid(tid),
                        comm: "prop",
                        cpu: 0,
                        time_ns: 1,
                        args: &[],
                        path: ev_path,
                        fd: ev_fd,
                    };
                    if spec.admits(&view, &event) {
                        return Some(format!("{} pid={pid} tid={tid} path={path}", kind.name()));
                    }
                }
            }
        }
    }
    None
}

const ID_POOL: &[u32] = &[0, 1, 2, 999, 1000, 1001, 65536];
const PREFIX_POOL: &[&str] =
    &["", "relative", "/", "/db", "/db/", "/db/wal", "/log", "/nul\0byte", "/data"];

fn ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0usize..ID_POOL.len()).prop_map(|i| ID_POOL[i]), 0..4)
}

fn prefixes() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        (0usize..PREFIX_POOL.len()).prop_map(|i| PREFIX_POOL[i].to_string()),
        0..5,
    )
}

fn kinds() -> impl Strategy<Value = Vec<SyscallKind>> {
    proptest::collection::vec((0usize..42).prop_map(|i| SyscallKind::ALL[i]), 0..6)
}

fn spec() -> impl Strategy<Value = FilterSpec> {
    (
        prop_oneof![1 => Just(None), 3 => kinds().prop_map(Some)],
        prop_oneof![1 => Just(None), 3 => ids().prop_map(Some)],
        prop_oneof![1 => Just(None), 3 => ids().prop_map(Some)],
        prop_oneof![1 => Just(None), 3 => prefixes().prop_map(Some)],
    )
        .prop_map(|(kinds, pids, tids, prefixes)| {
            let mut spec = FilterSpec::new();
            if let Some(kinds) = kinds {
                spec = spec.syscalls(kinds);
            }
            if let Some(pids) = pids {
                spec = spec.pids(pids.into_iter().map(Pid));
            }
            if let Some(tids) = tids {
                spec = spec.tids(tids.into_iter().map(Tid));
            }
            if let Some(prefixes) = prefixes {
                for p in prefixes {
                    spec = spec.path_prefix(p);
                }
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: what the verifier accepts works, what it proves empty
    /// is empty. (Verification itself panicking fails the case too.)
    #[test]
    fn verifier_verdicts_match_brute_force(spec in spec()) {
        let report = spec.verify();
        let facts = spec.facts();
        let witness = find_witness(&spec, &facts);

        if report.is_ok() {
            prop_assert!(!report.statically_empty());
            prop_assert!(
                witness.is_some(),
                "accepted spec admits no event at all: {:?}",
                facts
            );
        }
        if report.statically_empty() {
            prop_assert!(!report.is_ok(), "statically-empty specs must be rejected");
            prop_assert!(
                witness.is_none(),
                "spec proved empty but admits {}: {:?}",
                witness.unwrap(),
                facts
            );
        }
    }

    /// The report itself is well-formed for any input: diagnostics carry
    /// stable rule names and the error Display names every violated rule.
    #[test]
    fn diagnostics_are_well_formed(spec in spec()) {
        let report = spec.verify();
        for d in &report.diagnostics {
            prop_assert!(!d.rule.name().is_empty());
            prop_assert!(!d.message.is_empty());
        }
        if let Err(err) = spec.verify().into_result() {
            let rendered = err.to_string();
            for rule in err.rules() {
                prop_assert!(
                    rendered.contains(rule.name()),
                    "error text must name rule {}",
                    rule.name()
                );
            }
        }
    }
}
