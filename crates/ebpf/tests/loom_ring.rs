//! Loom model of the per-CPU ring buffer's concurrency contract.
//!
//! The ring is the paper's core tracing guarantee: producers in the
//! syscall path never block — on overflow the event is dropped and
//! counted (§III-D). This model checks the conservation invariants that
//! guarantee rests on, under concurrent producers and consumers:
//!
//! * `pushed + dropped == attempts` — no push outcome is unaccounted;
//! * `consumed + remaining == pushed` — nothing is duplicated or lost
//!   between producer and consumer;
//! * per-CPU FIFO — a consumer sees each CPU's events in push order.
//!
//! Build only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p dio-ebpf --test loom_ring
//! ```
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use dio_ebpf::RingBuffer;

/// Tags a value with its producing CPU so the drained stream can be
/// checked for per-CPU FIFO order.
#[derive(Debug, Clone, Copy)]
struct Tagged {
    cpu: u32,
    seq: u64,
}

/// Asserts the drained stream preserves each CPU's push order.
fn assert_per_cpu_fifo(drained: &[Tagged], num_cpus: u32) {
    let mut next = vec![0u64; num_cpus as usize];
    for t in drained {
        let slot = t.cpu as usize;
        assert!(
            t.seq >= next[slot],
            "cpu {} replayed seq {} after reaching {}",
            t.cpu,
            t.seq,
            next[slot]
        );
        next[slot] = t.seq + 1;
    }
}

/// Two producers on distinct CPUs race a draining consumer; every event
/// is either consumed, still queued, or counted as dropped — never lost.
#[test]
fn concurrent_producers_conserve_events() {
    loom::model(|| {
        const PER_CPU: u64 = 8;
        let ring: Arc<RingBuffer<Tagged>> = Arc::new(RingBuffer::with_slots(2, 4));

        let producers: Vec<_> = (0..2u32)
            .map(|cpu| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for seq in 0..PER_CPU {
                        // Drop-on-overflow: the return value is advisory,
                        // the producer never retries or blocks.
                        let _ = ring.try_push(cpu, Tagged { cpu, seq });
                        thread::yield_now();
                    }
                })
            })
            .collect();

        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..PER_CPU {
                    seen.extend(ring.drain_all(4));
                    thread::yield_now();
                }
                seen
            })
        };

        for p in producers {
            p.join().unwrap();
        }
        let mut seen = consumer.join().unwrap();
        seen.extend(ring.drain_all(usize::MAX));

        let stats = ring.stats();
        assert_eq!(stats.pushed + stats.dropped, 2 * PER_CPU, "every attempt accounted");
        assert_eq!(stats.consumed, stats.pushed, "drained to empty");
        assert_eq!(seen.len() as u64, stats.pushed, "consumer saw exactly the pushed events");
        assert!(ring.is_empty());
        for per_cpu in &stats.per_cpu {
            assert_eq!(per_cpu.pushed + per_cpu.dropped, PER_CPU);
            assert_eq!(per_cpu.consumed, per_cpu.pushed);
        }
        assert_per_cpu_fifo(&seen, 2);
    });
}

/// A single saturated CPU: a tiny buffer with no consumer drops the
/// overflow, and the consumer later sees a FIFO prefix of the attempts.
#[test]
fn overflow_drops_excess_and_keeps_fifo_prefix() {
    loom::model(|| {
        const ATTEMPTS: u64 = 6;
        const SLOTS: usize = 2;
        let ring: Arc<RingBuffer<Tagged>> = Arc::new(RingBuffer::with_slots(1, SLOTS));

        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut accepted = 0u64;
                for seq in 0..ATTEMPTS {
                    if ring.try_push(0, Tagged { cpu: 0, seq }) {
                        accepted += 1;
                    }
                }
                accepted
            })
        };
        let accepted = producer.join().unwrap();

        let stats = ring.stats();
        assert_eq!(stats.pushed, accepted);
        assert_eq!(stats.dropped, ATTEMPTS - accepted);
        assert!(accepted >= SLOTS as u64, "buffer capacity is always usable");

        let drained = ring.drain(0, usize::MAX);
        assert_eq!(drained.len() as u64, accepted);
        assert_per_cpu_fifo(&drained, 1);
        // With no concurrent consumer the accepted events are exactly the
        // first `SLOTS` attempts: a strict FIFO prefix.
        for (i, t) in drained.iter().enumerate() {
            assert_eq!(t.seq, i as u64);
        }
        assert_eq!(ring.stats().consumed, accepted);
    });
}

/// Two racing consumers never duplicate an event: their combined view is
/// a partition of everything pushed.
#[test]
fn racing_consumers_partition_the_stream() {
    loom::model(|| {
        const TOTAL: u64 = 12;
        let ring: Arc<RingBuffer<u64>> = Arc::new(RingBuffer::with_slots(2, 16));
        for i in 0..TOTAL {
            assert!(ring.try_push((i % 2) as u32, i));
        }

        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        let batch = ring.drain_all(3);
                        if batch.is_empty() {
                            break;
                        }
                        seen.extend(batch);
                        thread::yield_now();
                    }
                    seen
                })
            })
            .collect();

        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..TOTAL).collect();
        assert_eq!(all, want, "each event consumed exactly once");
        let stats = ring.stats();
        assert_eq!(stats.consumed, TOTAL);
        assert!(ring.is_empty());
    });
}
