#![warn(missing_docs)]

//! A faithful model of Fluent Bit's `tail` input plugin — buggy and fixed.
//!
//! The paper's first case study (§III-B) diagnoses data loss in Fluent Bit
//! v1.4.0 (issues fluent/fluent-bit#1875 and #4895): the plugin tracks each
//! file's consumed offset in a database keyed by *name + inode number*, but
//! v1.4.0 never deletes entries when files are removed. When a log file is
//! deleted and re-created, Linux reuses the inode number, the stale entry
//! matches the new file, and the plugin resumes reading at an offset past
//! the new file's content — losing everything before it.
//!
//! [`TailPlugin`] reproduces both behaviours ([`FluentBitVersion::V1_4_0`]
//! and the fixed [`FluentBitVersion::V2_0_5`]) with the exact syscall
//! sequences of Fig. 2a/2b, and [`run_issue_1875`] replays the client
//! script from the issue.

use std::collections::HashMap;

use dio_kernel::{Errno, Kernel, OpenFlags, SysResult, ThreadCtx, Whence};

/// Which Fluent Bit behaviour to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluentBitVersion {
    /// v1.4.0 — position-database entries survive file deletion (buggy).
    V1_4_0,
    /// v2.0.5 — entries are dropped when the file disappears (fixed).
    V2_0_5,
}

impl FluentBitVersion {
    /// The thread name a tracer observes, matching the paper's figures
    /// (`fluent-bit` in Fig. 2a, `flb-pipeline` in Fig. 2b).
    pub fn thread_name(self) -> &'static str {
        match self {
            FluentBitVersion::V1_4_0 => "fluent-bit",
            FluentBitVersion::V2_0_5 => "flb-pipeline",
        }
    }
}

/// What one [`TailPlugin::poll`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// The watched file does not exist (and nothing was open).
    Missing,
    /// The watched file disappeared; the open descriptor was closed.
    FileRemoved,
    /// `bytes` new bytes were consumed.
    Consumed {
        /// Bytes read this poll.
        bytes: u64,
    },
    /// The file exists but yielded no new bytes.
    NoNewData,
}

/// The tail input plugin: follows one log file and consumes appended
/// content, exactly as Fluent Bit's `in_tail` does.
#[derive(Debug)]
pub struct TailPlugin {
    ctx: ThreadCtx,
    version: FluentBitVersion,
    path: String,
    /// The position database: (file name, inode) -> consumed offset.
    /// This keying is the root cause of the bug.
    position_db: HashMap<(String, u64), u64>,
    /// Currently-open descriptor and the inode it refers to.
    open: Option<(i32, u64)>,
    bytes_consumed: u64,
    read_buf_len: usize,
}

impl TailPlugin {
    /// Creates a plugin following `path`, issuing syscalls as `ctx`.
    pub fn new(ctx: ThreadCtx, version: FluentBitVersion, path: impl Into<String>) -> Self {
        TailPlugin {
            ctx,
            version,
            path: path.into(),
            position_db: HashMap::new(),
            open: None,
            bytes_consumed: 0,
            read_buf_len: 64,
        }
    }

    /// Total bytes successfully consumed from the log.
    pub fn bytes_consumed(&self) -> u64 {
        self.bytes_consumed
    }

    /// The position database size (v1.4.0 leaks entries here).
    pub fn position_db_len(&self) -> usize {
        self.position_db.len()
    }

    /// Scans the watched file once: detects deletion/creation and consumes
    /// any new content.
    ///
    /// # Errors
    ///
    /// Propagates unexpected kernel errors (`EBADF`, `EIO`, ...); missing
    /// files are reported via [`PollOutcome`], not as errors.
    pub fn poll(&mut self) -> SysResult<PollOutcome> {
        // 1. Watch for deletion: Fluent Bit reacts to inotify events; the
        //    polling model stats the path.
        let stat = match self.ctx.stat(&self.path) {
            Ok(st) => Some(st),
            Err(Errno::ENOENT) => None,
            Err(e) => return Err(e),
        };

        match (stat, self.open) {
            (None, None) => Ok(PollOutcome::Missing),
            (None, Some((fd, ino))) => {
                // The file we were tailing is gone.
                self.ctx.close(fd)?;
                self.open = None;
                if self.version == FluentBitVersion::V2_0_5 {
                    // The fix: purge the database entry for the dead file.
                    self.position_db.remove(&(self.path.clone(), ino));
                }
                Ok(PollOutcome::FileRemoved)
            }
            (Some(st), open) => {
                // Rotation detection when the inode changed under us.
                if let Some((fd, ino)) = open {
                    if ino != st.ino {
                        self.ctx.close(fd)?;
                        self.open = None;
                        if self.version == FluentBitVersion::V2_0_5 {
                            self.position_db.remove(&(self.path.clone(), ino));
                        }
                    }
                }
                if self.open.is_none() {
                    let fd = self.ctx.openat(&self.path, OpenFlags::RDONLY, 0)?;
                    self.open = Some((fd, st.ino));
                    // Restore the consumed position from the database. In
                    // v1.4.0 a stale entry for a re-created file (same name,
                    // same reused inode) survives — THE bug.
                    let key = (self.path.clone(), st.ino);
                    let resume = self.position_db.get(&key).copied().unwrap_or(0);
                    if resume > 0 {
                        self.ctx.lseek(fd, resume as i64, Whence::Set)?;
                    }
                }
                self.consume()
            }
        }
    }

    /// Reads until EOF from the current position, updating the database.
    fn consume(&mut self) -> SysResult<PollOutcome> {
        let (fd, ino) = self.open.expect("called with an open file");
        let mut total = 0u64;
        let mut buf = vec![0u8; self.read_buf_len];
        loop {
            let n = self.ctx.read(fd, &mut buf)?;
            total += n as u64;
            if n < buf.len() {
                break;
            }
        }
        let pos = self.ctx.lseek(fd, 0, Whence::Cur)?;
        self.position_db.insert((self.path.clone(), ino), pos);
        self.bytes_consumed += total;
        if total > 0 {
            Ok(PollOutcome::Consumed { bytes: total })
        } else {
            Ok(PollOutcome::NoNewData)
        }
    }
}

/// The client program from issue #1875: creates a log file, lets the
/// tailer consume it, removes it, and re-creates it with fresh content.
#[derive(Debug)]
pub struct LogClient {
    ctx: ThreadCtx,
}

impl LogClient {
    /// Creates a client issuing syscalls as `ctx`.
    pub fn new(ctx: ThreadCtx) -> Self {
        LogClient { ctx }
    }

    /// Creates `path` and writes `content` to it (open + write + close).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (`ENOSPC`, ...).
    pub fn write_log(&self, path: &str, content: &[u8]) -> SysResult<()> {
        let fd = self.ctx.openat(path, OpenFlags::CREAT | OpenFlags::WRONLY, 0o644)?;
        self.ctx.write(fd, content)?;
        self.ctx.close(fd)?;
        Ok(())
    }

    /// Removes `path` with `unlink`.
    ///
    /// # Errors
    ///
    /// `ENOENT` when the file is missing.
    pub fn remove(&self, path: &str) -> SysResult<()> {
        self.ctx.unlink(path)
    }
}

/// Outcome of a [`run_issue_1875`] replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Bytes the client wrote across both file generations.
    pub bytes_written: u64,
    /// Bytes the tailer consumed.
    pub bytes_consumed: u64,
    /// The client's pid (for trace filtering).
    pub client_pid: dio_syscall::Pid,
    /// The plugin's pid (for trace filtering).
    pub plugin_pid: dio_syscall::Pid,
}

impl ScenarioOutcome {
    /// Bytes lost to the stale-offset bug.
    pub fn bytes_lost(&self) -> u64 {
        self.bytes_written - self.bytes_consumed
    }
}

/// Replays the issue #1875 script (the Fig. 2 experiment): 26 bytes
/// written and consumed, file removed and re-created, 16 more bytes
/// written. With v1.4.0 the final 16 bytes are lost; with v2.0.5 they are
/// consumed.
///
/// `gap_ns` separates the phases on the trace's time axis (the paper's
/// table shows multi-second gaps; tests use small values).
///
/// # Errors
///
/// Propagates kernel errors from either process.
pub fn run_issue_1875(
    kernel: &Kernel,
    version: FluentBitVersion,
    log_path: &str,
    gap_ns: u64,
) -> SysResult<ScenarioOutcome> {
    let client_proc = kernel.spawn_process("app");
    let plugin_proc = kernel.spawn_process(version.thread_name());
    let client = LogClient::new(client_proc.spawn_thread("app"));
    let mut plugin =
        TailPlugin::new(plugin_proc.spawn_thread(version.thread_name()), version, log_path);
    let pause = || {
        if gap_ns > 0 {
            kernel.clock().sleep_ns(gap_ns);
        }
    };

    // (1) app creates app.log and writes 26 bytes at offset 0.
    let first = b"2020-02-21 17:51:52: line1"; // 26 bytes
    assert_eq!(first.len(), 26);
    client.write_log(log_path, first)?;
    pause();
    // (2) fluent-bit detects the new content and reads all 26 bytes.
    plugin.poll()?;
    pause();
    // (3) app removes the file; fluent-bit closes its descriptor.
    client.remove(log_path)?;
    plugin.poll()?;
    pause();
    // (4) app creates a new file with the same name and writes 16 bytes.
    let second = b"17:52:01: line2!"; // 16 bytes
    assert_eq!(second.len(), 16);
    client.write_log(log_path, second)?;
    pause();
    // (5) fluent-bit opens the new file. v1.4.0 resumes at stale offset 26
    //     and reads 0 bytes; v2.0.5 starts at 0 and reads the 16 bytes.
    plugin.poll()?;
    pause();
    plugin.poll()?; // one more EOF poll, as in Fig. 2

    Ok(ScenarioOutcome {
        bytes_written: (first.len() + second.len()) as u64,
        bytes_consumed: plugin.bytes_consumed(),
        client_pid: client_proc.pid(),
        plugin_pid: plugin_proc.pid(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::DiskProfile;

    fn kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    #[test]
    fn v1_4_0_loses_the_second_generation() {
        let k = kernel();
        let out = run_issue_1875(&k, FluentBitVersion::V1_4_0, "/app.log", 0).unwrap();
        assert_eq!(out.bytes_written, 42);
        assert_eq!(out.bytes_consumed, 26, "only the first generation is read");
        assert_eq!(out.bytes_lost(), 16);
    }

    #[test]
    fn v2_0_5_consumes_everything() {
        let k = kernel();
        let out = run_issue_1875(&k, FluentBitVersion::V2_0_5, "/app.log", 0).unwrap();
        assert_eq!(out.bytes_consumed, 42);
        assert_eq!(out.bytes_lost(), 0);
    }

    #[test]
    fn inode_is_actually_reused_across_generations() {
        let k = kernel();
        let t = k.spawn_process("probe").spawn_thread("probe");
        let client = LogClient::new(k.spawn_process("app").spawn_thread("app"));
        client.write_log("/app.log", b"aaa").unwrap();
        let ino1 = t.stat("/app.log").unwrap().ino;
        client.remove("/app.log").unwrap();
        client.write_log("/app.log", b"bb").unwrap();
        let ino2 = t.stat("/app.log").unwrap().ino;
        assert_eq!(ino1, ino2, "the bug requires inode reuse");
    }

    #[test]
    fn plugin_consumes_incremental_appends() {
        let k = kernel();
        let proc = k.spawn_process("tailer");
        let mut plugin =
            TailPlugin::new(proc.spawn_thread("tailer"), FluentBitVersion::V2_0_5, "/x.log");
        assert_eq!(plugin.poll().unwrap(), PollOutcome::Missing);

        let writer = k.spawn_process("w").spawn_thread("w");
        let fd = writer
            .openat("/x.log", OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::APPEND, 0o644)
            .unwrap();
        writer.write(fd, b"hello ").unwrap();
        assert_eq!(plugin.poll().unwrap(), PollOutcome::Consumed { bytes: 6 });
        assert_eq!(plugin.poll().unwrap(), PollOutcome::NoNewData);
        writer.write(fd, b"world").unwrap();
        assert_eq!(plugin.poll().unwrap(), PollOutcome::Consumed { bytes: 5 });
        assert_eq!(plugin.bytes_consumed(), 11);
        writer.close(fd).unwrap();
    }

    #[test]
    fn v1_4_0_leaks_position_db_entries() {
        let k = kernel();
        let client = LogClient::new(k.spawn_process("app").spawn_thread("app"));
        let mut v1 = TailPlugin::new(
            k.spawn_process("fb1").spawn_thread("fb1"),
            FluentBitVersion::V1_4_0,
            "/l.log",
        );
        client.write_log("/l.log", b"abc").unwrap();
        v1.poll().unwrap();
        client.remove("/l.log").unwrap();
        v1.poll().unwrap();
        assert_eq!(v1.position_db_len(), 1, "stale entry survives in v1.4.0");

        let client2 = LogClient::new(k.spawn_process("app2").spawn_thread("app2"));
        let mut v2 = TailPlugin::new(
            k.spawn_process("fb2").spawn_thread("fb2"),
            FluentBitVersion::V2_0_5,
            "/m.log",
        );
        client2.write_log("/m.log", b"abc").unwrap();
        v2.poll().unwrap();
        client2.remove("/m.log").unwrap();
        v2.poll().unwrap();
        assert_eq!(v2.position_db_len(), 0, "fixed version purges the entry");
    }

    #[test]
    fn reads_spanning_multiple_buffers() {
        let k = kernel();
        let client = LogClient::new(k.spawn_process("app").spawn_thread("app"));
        let mut plugin = TailPlugin::new(
            k.spawn_process("fb").spawn_thread("fb"),
            FluentBitVersion::V2_0_5,
            "/big.log",
        );
        let content = vec![b'x'; 1000]; // > 64-byte read buffer
        client.write_log("/big.log", &content).unwrap();
        assert_eq!(plugin.poll().unwrap(), PollOutcome::Consumed { bytes: 1000 });
    }
}
