//! The simulated kernel clock.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock shared by every kernel component.
///
/// Real wall time elapses (threads really run and really wait on the disk
/// model), but timestamps are reported relative to a paper-like epoch so
/// trace tables look like the figures in the paper.
///
/// # Examples
///
/// ```
/// use dio_kernel::SimClock;
///
/// let clock = SimClock::new();
/// let a = clock.now_ns();
/// let b = clock.now_ns();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    base: Instant,
    epoch_ns: u64,
}

/// Epoch matching the figures in the paper (March 2023, ns since Unix epoch).
pub const PAPER_EPOCH_NS: u64 = 1_679_308_382_000_000_000;

impl SimClock {
    /// Creates a clock starting at [`PAPER_EPOCH_NS`].
    pub fn new() -> Self {
        Self::with_epoch(PAPER_EPOCH_NS)
    }

    /// Creates a clock starting at an arbitrary epoch (ns).
    pub fn with_epoch(epoch_ns: u64) -> Self {
        SimClock { inner: Arc::new(ClockInner { base: Instant::now(), epoch_ns }) }
    }

    /// Current time in nanoseconds since the Unix epoch (simulated).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch_ns + self.inner.base.elapsed().as_nanos() as u64
    }

    /// Nanoseconds elapsed since the clock was created.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.base.elapsed().as_nanos() as u64
    }

    /// The epoch this clock started from.
    pub fn epoch_ns(&self) -> u64 {
        self.inner.epoch_ns
    }

    /// Blocks the calling thread until the clock reaches `deadline_ns`.
    ///
    /// Uses `thread::sleep` for coarse waits and a short spin for the final
    /// stretch, giving roughly ±30 µs accuracy without burning CPU.
    pub fn sleep_until(&self, deadline_ns: u64) {
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return;
            }
            let remaining = deadline_ns - now;
            if remaining > 120_000 {
                // Leave a margin for sleep overshoot.
                std::thread::sleep(Duration::from_nanos(remaining - 60_000));
            } else if remaining > 5_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Blocks the calling thread for `dur_ns` nanoseconds of simulated time.
    pub fn sleep_ns(&self, dur_ns: u64) {
        self.sleep_until(self.now_ns() + dur_ns);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let c = SimClock::new();
        let mut prev = c.now_ns();
        for _ in 0..100 {
            let now = c.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn epoch_applied() {
        let c = SimClock::with_epoch(5_000);
        assert!(c.now_ns() >= 5_000);
        assert_eq!(c.epoch_ns(), 5_000);
        // Paper-like default epoch.
        assert!(SimClock::new().now_ns() >= PAPER_EPOCH_NS);
    }

    #[test]
    fn sleep_until_reaches_deadline() {
        let c = SimClock::new();
        let deadline = c.now_ns() + 2_000_000; // 2 ms
        c.sleep_until(deadline);
        assert!(c.now_ns() >= deadline);
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let c = SimClock::new();
        let t0 = c.now_ns();
        c.sleep_until(t0.saturating_sub(1_000_000));
        assert!(c.now_ns() - t0 < 1_000_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        let t1 = a.now_ns();
        let t2 = b.now_ns();
        assert!(t2 >= t1);
        assert!(t2 - t1 < 1_000_000_000);
    }
}
