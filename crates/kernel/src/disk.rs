//! A shared-bandwidth block device model.
//!
//! This is the substrate that makes the RocksDB experiment (Fig. 3/4)
//! reproduce: all threads of all processes that touch the same device share
//! one FCFS service channel, so concurrent compaction I/O queues behind —
//! and delays — foreground flush/WAL writes, exactly the contention SILK and
//! the paper describe.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::clock::SimClock;

/// Direction of a disk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A read from the device.
    Read,
    /// A write to the device.
    Write,
    /// A cache/metadata flush (`fsync`-style barrier).
    Flush,
}

/// Performance profile of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sequential read bandwidth, bytes per second.
    pub read_bw_bps: u64,
    /// Sequential write bandwidth, bytes per second.
    pub write_bw_bps: u64,
    /// Fixed per-operation latency in nanoseconds (seek + command overhead).
    pub base_latency_ns: u64,
    /// Cost of a flush barrier in nanoseconds.
    pub flush_latency_ns: u64,
}

impl DiskProfile {
    /// A fast NVMe-like profile (the paper's 250 GiB NVMe dataset disk),
    /// scaled down so experiments complete in seconds.
    pub fn nvme() -> Self {
        DiskProfile {
            read_bw_bps: 800 * 1024 * 1024,
            write_bw_bps: 400 * 1024 * 1024,
            base_latency_ns: 15_000,
            flush_latency_ns: 60_000,
        }
    }

    /// A slower SATA-SSD-like profile (the paper's 512 GiB logging disk).
    pub fn sata_ssd() -> Self {
        DiskProfile {
            read_bw_bps: 300 * 1024 * 1024,
            write_bw_bps: 150 * 1024 * 1024,
            base_latency_ns: 40_000,
            flush_latency_ns: 150_000,
        }
    }

    /// An infinitely fast device — useful for unit tests that should not
    /// spend wall-clock time waiting on the disk model.
    pub fn instant() -> Self {
        DiskProfile {
            read_bw_bps: u64::MAX,
            write_bw_bps: u64::MAX,
            base_latency_ns: 0,
            flush_latency_ns: 0,
        }
    }

    fn service_ns(&self, op: DiskOp, bytes: u64) -> u64 {
        match op {
            DiskOp::Read => {
                if self.read_bw_bps == u64::MAX {
                    0
                } else {
                    self.base_latency_ns + bytes.saturating_mul(1_000_000_000) / self.read_bw_bps
                }
            }
            DiskOp::Write => {
                if self.write_bw_bps == u64::MAX {
                    0
                } else {
                    self.base_latency_ns + bytes.saturating_mul(1_000_000_000) / self.write_bw_bps
                }
            }
            DiskOp::Flush => self.flush_latency_ns,
        }
    }
}

/// Cumulative device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Completed flush barriers.
    pub flushes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total nanoseconds the device channel was busy.
    pub busy_ns: u64,
}

/// A single-channel FCFS block device shared by every thread in the system.
///
/// `access` reserves a service slot (under a short lock) and then blocks the
/// *calling thread* until its slot completes — contention between threads
/// emerges naturally from the shared `next_free_ns` horizon.
#[derive(Debug)]
pub struct Disk {
    dev: u64,
    profile: DiskProfile,
    clock: SimClock,
    next_free_ns: Mutex<u64>,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    busy_ns: AtomicU64,
}

impl Disk {
    /// Creates a device with the given id and profile, on the shared clock.
    pub fn new(dev: u64, profile: DiskProfile, clock: SimClock) -> Self {
        Disk {
            dev,
            profile,
            clock,
            next_free_ns: Mutex::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// The device number (appears in file tags, e.g. `7340032` in Fig. 2).
    pub fn dev(&self) -> u64 {
        self.dev
    }

    /// The device profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Performs a device access of `bytes` bytes, blocking the caller until
    /// the FCFS channel has served it. Returns the service time in ns.
    pub fn access(&self, op: DiskOp, bytes: u64) -> u64 {
        let service = self.profile.service_ns(op, bytes);
        match op {
            DiskOp::Read => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            }
            DiskOp::Write => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
            }
            DiskOp::Flush => {
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        if service == 0 {
            return 0;
        }
        self.busy_ns.fetch_add(service, Ordering::Relaxed);
        let completion = {
            let mut next_free = self.next_free_ns.lock();
            let now = self.clock.now_ns();
            let start = now.max(*next_free);
            let completion = start + service;
            *next_free = completion;
            completion
        };
        self.clock.sleep_until(completion);
        service
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn instant_profile_is_free() {
        let d = Disk::new(0, DiskProfile::instant(), SimClock::new());
        assert_eq!(d.access(DiskOp::Write, 1 << 30), 0);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes_written, 1 << 30);
    }

    #[test]
    fn service_time_scales_with_bytes() {
        let p = DiskProfile {
            read_bw_bps: 1_000_000_000,
            write_bw_bps: 1_000_000_000,
            base_latency_ns: 100,
            flush_latency_ns: 5,
        };
        assert_eq!(p.service_ns(DiskOp::Read, 1_000), 100 + 1_000);
        assert_eq!(p.service_ns(DiskOp::Write, 0), 100);
        assert_eq!(p.service_ns(DiskOp::Flush, 123), 5);
    }

    #[test]
    fn access_blocks_for_service_time() {
        let clock = SimClock::new();
        // 1 MiB/ms => 1 GiB/s; 512 KiB write ~ 0.5 ms + base.
        let p = DiskProfile {
            read_bw_bps: 1 << 30,
            write_bw_bps: 1 << 30,
            base_latency_ns: 100_000,
            flush_latency_ns: 0,
        };
        let d = Disk::new(0, p, clock.clone());
        let t0 = clock.now_ns();
        d.access(DiskOp::Write, 512 * 1024);
        let elapsed = clock.now_ns() - t0;
        assert!(elapsed >= 500_000, "elapsed {elapsed}ns");
    }

    #[test]
    fn concurrent_access_queues_fcfs() {
        let clock = SimClock::new();
        let p = DiskProfile {
            read_bw_bps: 1 << 30,
            write_bw_bps: 1 << 30,
            base_latency_ns: 200_000,
            flush_latency_ns: 0,
        };
        let d = Arc::new(Disk::new(0, p, clock.clone()));
        let t0 = clock.now_ns();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || d.access(DiskOp::Read, 0))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = clock.now_ns() - t0;
        // Four 200 µs ops serialized on one channel take >= 800 µs.
        assert!(elapsed >= 800_000, "elapsed {elapsed}ns");
        assert_eq!(d.stats().reads, 4);
    }
}
