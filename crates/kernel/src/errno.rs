//! POSIX error numbers returned by the simulated kernel.

use serde::{Deserialize, Serialize};

/// The subset of `errno` values the simulated syscalls can produce.
///
/// Numeric values match Linux on x86-64, so a traced `ret_val` of `-2`
/// means `ENOENT` exactly as it would in a real strace/DIO capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// Permission denied.
    EACCES = 13,
    /// File exists.
    EEXIST = 17,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// File table overflow.
    ENFILE = 23,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Too many links.
    EMLINK = 31,
    /// Filename too long.
    ENAMETOOLONG = 36,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many symbolic links encountered.
    ELOOP = 40,
    /// No data available (missing xattr).
    ENODATA = 61,
    /// Operation not supported.
    EOPNOTSUPP = 95,
}

impl Errno {
    /// The syscall return encoding: `-errno`, as Linux returns to user space.
    pub fn to_ret(self) -> i64 {
        -(self as i64)
    }

    /// The symbolic name, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::EACCES => "EACCES",
            Errno::EEXIST => "EEXIST",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EMLINK => "EMLINK",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
        }
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), *self as i32)
    }
}

impl std::error::Error for Errno {}

/// Result type of every simulated syscall.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_encoding() {
        assert_eq!(Errno::ENOENT.to_ret(), -2);
        assert_eq!(Errno::EBADF.to_ret(), -9);
        assert_eq!(Errno::ENODATA.to_ret(), -61);
    }

    #[test]
    fn display_names() {
        assert_eq!(Errno::ENOENT.to_string(), "ENOENT (2)");
        assert_eq!(Errno::ENOTEMPTY.name(), "ENOTEMPTY");
    }
}
