//! Open-file descriptions and per-process file-descriptor tables.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::errno::{Errno, SysResult};
use crate::vfs::{Inode, Vfs};

/// Open flags, numerically compatible with Linux (octal values).
///
/// # Examples
///
/// ```
/// use dio_kernel::OpenFlags;
///
/// let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND;
/// assert!(f.contains(OpenFlags::CREAT));
/// assert!(f.writable());
/// assert!(!f.readable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(pub u32);

impl OpenFlags {
    /// Open read-only.
    pub const RDONLY: OpenFlags = OpenFlags(0o0);
    /// Open write-only.
    pub const WRONLY: OpenFlags = OpenFlags(0o1);
    /// Open read-write.
    pub const RDWR: OpenFlags = OpenFlags(0o2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// Fail if the file exists (with `CREAT`).
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    /// Truncate the file on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    /// All writes append to the end of the file.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);

    const ACCESS_MASK: u32 = 0o3;

    /// Whether all bits of `other` are set.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the access mode permits reading.
    pub fn readable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 0o0 | 0o2)
    }

    /// Whether the access mode permits writing.
    pub fn writable(self) -> bool {
        matches!(self.0 & Self::ACCESS_MASK, 0o1 | 0o2)
    }

    /// The raw bits, as they would appear in a traced `flags` argument.
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;

    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

/// `whence` argument of `lseek`, numerically matching Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Whence {
    /// Absolute offset.
    Set = 0,
    /// Relative to the current position.
    Cur = 1,
    /// Relative to end of file.
    End = 2,
}

/// A system-wide open file description (what an `fd` points at).
///
/// Holds the seek cursor, which is shared by duplicated descriptors in real
/// kernels; here each `open` creates one description.
#[derive(Debug)]
pub struct OpenFile {
    vfs: Arc<Vfs>,
    inode: Arc<Inode>,
    offset: Mutex<u64>,
    flags: OpenFlags,
    path: String,
}

impl OpenFile {
    pub(crate) fn new(
        vfs: Arc<Vfs>,
        inode: Arc<Inode>,
        flags: OpenFlags,
        path: String,
    ) -> Arc<Self> {
        vfs.inc_open(&inode);
        Arc::new(OpenFile { vfs, inode, offset: Mutex::new(0), flags, path })
    }

    /// The file system this description lives on.
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// The inode behind the descriptor.
    pub fn inode(&self) -> &Arc<Inode> {
        &self.inode
    }

    /// Current seek offset.
    pub fn offset(&self) -> u64 {
        *self.offset.lock()
    }

    pub(crate) fn set_offset(&self, off: u64) {
        *self.offset.lock() = off;
    }

    /// Atomically advances the cursor by `by`, returning the prior offset.
    pub fn advance_offset(&self, by: u64) -> u64 {
        let mut guard = self.offset.lock();
        let before = *guard;
        *guard = before + by;
        before
    }

    /// Flags the file was opened with.
    pub fn flags(&self) -> OpenFlags {
        self.flags
    }

    /// The absolute path used at open time (the *dentry* name; the file may
    /// since have been renamed or unlinked).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for OpenFile {
    fn drop(&mut self) {
        // Never fails: releases the open count and frees the inode number if
        // this was the last reference to an unlinked file.
        self.vfs.dec_open(&self.inode);
    }
}

/// A per-process descriptor table. Descriptors start at 3 (0-2 are reserved
/// for the standard streams, which the simulator does not model).
#[derive(Debug, Default)]
pub struct FdTable {
    inner: Mutex<HashMap<i32, Arc<OpenFile>>>,
}

/// First descriptor handed out by [`FdTable`].
pub const FIRST_FD: i32 = 3;

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an open file at the lowest free descriptor ≥ 3.
    pub fn install(&self, file: Arc<OpenFile>) -> i32 {
        let mut map = self.inner.lock();
        let mut fd = FIRST_FD;
        while map.contains_key(&fd) {
            fd += 1;
        }
        map.insert(fd, file);
        fd
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn get(&self, fd: i32) -> SysResult<Arc<OpenFile>> {
        self.inner.lock().get(&fd).cloned().ok_or(Errno::EBADF)
    }

    /// Removes a descriptor, returning its open file.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn remove(&self, fd: i32) -> SysResult<Arc<OpenFile>> {
        self.inner.lock().remove(&fd).ok_or(Errno::EBADF)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Closes every descriptor (process exit).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::disk::DiskProfile;

    fn open_file(vfs: &Arc<Vfs>, path: &str) -> Arc<OpenFile> {
        let inode = vfs.create_file(path, false).unwrap();
        OpenFile::new(Arc::clone(vfs), inode, OpenFlags::RDWR, path.to_string())
    }

    #[test]
    fn flags_access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert_eq!(f.bits(), 0o1 | 0o100 | 0o1000);
    }

    #[test]
    fn fd_allocation_lowest_first() {
        let vfs = Vfs::new(1, DiskProfile::instant(), SimClock::new());
        let table = FdTable::new();
        let fd3 = table.install(open_file(&vfs, "/a"));
        let fd4 = table.install(open_file(&vfs, "/b"));
        let fd5 = table.install(open_file(&vfs, "/c"));
        assert_eq!((fd3, fd4, fd5), (3, 4, 5));
        table.remove(4).unwrap();
        assert_eq!(table.install(open_file(&vfs, "/d")), 4);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn get_unknown_fd_is_ebadf() {
        let table = FdTable::new();
        assert_eq!(table.get(3).unwrap_err(), Errno::EBADF);
        assert_eq!(table.remove(3).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn drop_releases_open_count() {
        let vfs = Vfs::new(1, DiskProfile::instant(), SimClock::new());
        let f = open_file(&vfs, "/x");
        assert_eq!(f.inode().open_count(), 1);
        let inode = Arc::clone(f.inode());
        drop(f);
        assert_eq!(inode.open_count(), 0);
    }

    #[test]
    fn offset_tracking() {
        let vfs = Vfs::new(1, DiskProfile::instant(), SimClock::new());
        let f = open_file(&vfs, "/x");
        assert_eq!(f.offset(), 0);
        assert_eq!(f.advance_offset(10), 0);
        assert_eq!(f.offset(), 10);
        f.set_offset(3);
        assert_eq!(f.offset(), 3);
    }
}
