//! The simulated kernel: processes, mounts, tracepoints, clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

use dio_syscall::{Pid, SyscallClass, SyscallKind, Tid};
use dio_telemetry::{Counter, MetricsRegistry};

use crate::clock::SimClock;
use crate::disk::DiskProfile;
use crate::errno::{Errno, SysResult};
use crate::fd::FdTable;
use crate::syscalls::ThreadCtx;
use crate::tracepoint::{FdInfo, KernelInspect, TracepointRegistry};
use crate::vfs::Vfs;

/// Device number used for the root mount, matching the `dev_no` shown in the
/// paper's Fig. 2 trace tables.
pub const ROOT_DEV: u64 = 7_340_032;

pub(crate) struct ProcessInner {
    pub(crate) pid: Pid,
    pub(crate) name: String,
    pub(crate) fds: FdTable,
    pub(crate) threads: Mutex<Vec<Tid>>,
    pub(crate) exited: std::sync::atomic::AtomicBool,
}

/// A simulated process. Cloning shares the underlying process.
#[derive(Clone)]
pub struct Process {
    pub(crate) kernel: Kernel,
    pub(crate) inner: Arc<ProcessInner>,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.inner.pid)
            .field("name", &self.inner.name)
            .finish()
    }
}

impl Process {
    /// The process id.
    pub fn pid(&self) -> Pid {
        self.inner.pid
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Registers a thread of this process and returns its syscall context.
    ///
    /// `comm` is the thread name a tracer observes (e.g. `rocksdb:low3`).
    /// The thread is assigned to a CPU round-robin, like a default scheduler
    /// spreading runnable threads.
    pub fn spawn_thread(&self, comm: impl Into<String>) -> ThreadCtx {
        let tid = Tid(self.kernel.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        self.inner.threads.lock().push(tid);
        let cpu =
            self.kernel.inner.next_cpu.fetch_add(1, Ordering::Relaxed) % self.kernel.inner.num_cpus;
        ThreadCtx::new(self.kernel.clone(), Arc::clone(&self.inner), tid, comm.into(), cpu)
    }

    /// The thread ids registered so far.
    pub fn thread_ids(&self) -> Vec<Tid> {
        self.inner.threads.lock().clone()
    }

    /// Number of open file descriptors.
    pub fn open_fds(&self) -> usize {
        self.inner.fds.len()
    }

    /// Whether the process has exited.
    pub fn has_exited(&self) -> bool {
        self.inner.exited.load(Ordering::Acquire)
    }

    /// Marks the process as exited, closing all of its descriptors (as the
    /// kernel does on `exit_group`). The paper's tracer stops "once its
    /// main and child processes finish" — [`crate::Kernel::all_exited`]
    /// exposes that condition.
    pub fn exit(&self) {
        self.inner.fds.clear();
        self.inner.exited.store(true, Ordering::Release);
    }
}

/// Telemetry handles updated on every syscall dispatch once
/// [`Kernel::bind_telemetry`] is called.
#[derive(Debug)]
struct KernelTelemetry {
    dispatched: Arc<Counter>,
    /// Per-class counters, indexed by [`class_slot`].
    by_class: [Arc<Counter>; 4],
}

fn class_slot(class: SyscallClass) -> usize {
    match class {
        SyscallClass::Data => 0,
        SyscallClass::Metadata => 1,
        SyscallClass::ExtendedAttributes => 2,
        SyscallClass::DirectoryManagement => 3,
    }
}

pub(crate) struct KernelState {
    clock: SimClock,
    /// Mount table: `(prefix, vfs)`, longest prefix wins. `/` is always last.
    mounts: RwLock<Vec<(String, Arc<Vfs>)>>,
    processes: Mutex<HashMap<Pid, Arc<ProcessInner>>>,
    tracepoints: TracepointRegistry,
    num_cpus: u32,
    next_pid: AtomicU32,
    next_tid: AtomicU32,
    next_cpu: AtomicU32,
    syscalls_executed: AtomicU64,
    telemetry: OnceLock<KernelTelemetry>,
}

/// Handle to the simulated kernel. Cloning is cheap and shares state.
///
/// # Examples
///
/// ```
/// use dio_kernel::Kernel;
///
/// let kernel = Kernel::new();
/// let proc = kernel.spawn_process("app");
/// let thread = proc.spawn_thread("app");
/// let fd = thread.openat("/data.log", dio_kernel::OpenFlags::CREAT | dio_kernel::OpenFlags::WRONLY, 0o644)?;
/// thread.write(fd, b"hello")?;
/// thread.close(fd)?;
/// # Ok::<(), dio_kernel::Errno>(())
/// ```
#[derive(Clone)]
pub struct Kernel {
    pub(crate) inner: Arc<KernelState>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("num_cpus", &self.inner.num_cpus)
            .field("syscalls_executed", &self.inner.syscalls_executed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Builder for [`Kernel`] (CPU count, root disk profile, clock).
#[derive(Debug)]
pub struct KernelBuilder {
    num_cpus: u32,
    root_profile: DiskProfile,
    clock: Option<SimClock>,
}

impl KernelBuilder {
    /// Number of CPUs (default 4, like the paper's application server).
    pub fn num_cpus(mut self, n: u32) -> Self {
        self.num_cpus = n.max(1);
        self
    }

    /// Disk profile of the root mount (default NVMe-like).
    pub fn root_disk(mut self, profile: DiskProfile) -> Self {
        self.root_profile = profile;
        self
    }

    /// Uses a caller-provided clock (e.g. to share across kernels).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds the kernel with a root mount at `/`.
    pub fn build(self) -> Kernel {
        let clock = self.clock.unwrap_or_default();
        let root = Vfs::new(ROOT_DEV, self.root_profile, clock.clone());
        Kernel {
            inner: Arc::new(KernelState {
                clock,
                mounts: RwLock::new(vec![("/".to_string(), root)]),
                processes: Mutex::new(HashMap::new()),
                tracepoints: TracepointRegistry::new(),
                num_cpus: self.num_cpus,
                next_pid: AtomicU32::new(1000),
                next_tid: AtomicU32::new(1000),
                next_cpu: AtomicU32::new(0),
                syscalls_executed: AtomicU64::new(0),
                telemetry: OnceLock::new(),
            }),
        }
    }
}

impl Kernel {
    /// A kernel with 4 CPUs and an NVMe-like root disk.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts building a kernel.
    pub fn builder() -> KernelBuilder {
        KernelBuilder { num_cpus: 4, root_profile: DiskProfile::nvme(), clock: None }
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The tracepoint registry (probe attachment surface).
    pub fn tracepoints(&self) -> &TracepointRegistry {
        &self.inner.tracepoints
    }

    /// Number of simulated CPUs.
    pub fn num_cpus(&self) -> u32 {
        self.inner.num_cpus
    }

    /// Total syscalls executed since boot.
    pub fn syscalls_executed(&self) -> u64 {
        self.inner.syscalls_executed.load(Ordering::Relaxed)
    }

    pub(crate) fn count_syscall(&self, kind: SyscallKind) {
        self.inner.syscalls_executed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.inner.telemetry.get() {
            t.dispatched.inc();
            t.by_class[class_slot(kind.class())].inc();
        }
    }

    /// Registers the kernel's dispatch metrics (`kernel.syscalls.dispatched`
    /// and `kernel.syscalls.class.<class>`) with `registry`. Binding twice
    /// is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.inner.telemetry.set(KernelTelemetry {
            dispatched: registry.counter("kernel.syscalls.dispatched"),
            by_class: [
                registry.counter("kernel.syscalls.class.data"),
                registry.counter("kernel.syscalls.class.metadata"),
                registry.counter("kernel.syscalls.class.extended_attributes"),
                registry.counter("kernel.syscalls.class.directory_management"),
            ],
        });
    }

    /// Mounts a file system at `prefix` (e.g. `/log`). Longest prefix wins
    /// during resolution.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` does not start with `/`.
    pub fn mount(&self, prefix: impl Into<String>, vfs: Arc<Vfs>) {
        let prefix = prefix.into();
        assert!(prefix.starts_with('/'), "mount prefix must be absolute");
        let mut mounts = self.inner.mounts.write();
        mounts.push((prefix, vfs));
        mounts.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    /// The root file system.
    pub fn root_vfs(&self) -> Arc<Vfs> {
        let mounts = self.inner.mounts.read();
        mounts
            .iter()
            .find(|(p, _)| p == "/")
            .map(|(_, v)| Arc::clone(v))
            .expect("root mount always exists")
    }

    /// Resolves `path` to its mount, returning the file system and the path
    /// *within* that file system.
    ///
    /// # Errors
    ///
    /// `ENOENT` when no mount covers the path (cannot happen while `/` is
    /// mounted); `EINVAL` for relative paths.
    pub fn resolve_mount(&self, path: &str) -> SysResult<(Arc<Vfs>, String)> {
        if !path.starts_with('/') {
            return Err(Errno::EINVAL);
        }
        let mounts = self.inner.mounts.read();
        for (prefix, vfs) in mounts.iter() {
            let matched = if prefix == "/" {
                true
            } else {
                path == prefix || path.starts_with(&format!("{prefix}/"))
            };
            if matched {
                let inner =
                    if prefix == "/" { path.to_string() } else { path[prefix.len()..].to_string() };
                let inner = if inner.is_empty() { "/".to_string() } else { inner };
                return Ok((Arc::clone(vfs), inner));
            }
        }
        Err(Errno::ENOENT)
    }

    /// Creates a new process.
    pub fn spawn_process(&self, name: impl Into<String>) -> Process {
        let pid = Pid(self.inner.next_pid.fetch_add(1, Ordering::Relaxed));
        let inner = Arc::new(ProcessInner {
            pid,
            name: name.into(),
            fds: FdTable::new(),
            threads: Mutex::new(Vec::new()),
            exited: std::sync::atomic::AtomicBool::new(false),
        });
        self.inner.processes.lock().insert(pid, Arc::clone(&inner));
        Process { kernel: self.clone(), inner }
    }

    /// Looks up a process by pid.
    pub fn process(&self, pid: Pid) -> Option<Process> {
        self.inner
            .processes
            .lock()
            .get(&pid)
            .map(|inner| Process { kernel: self.clone(), inner: Arc::clone(inner) })
    }

    /// Pids of all live processes.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.inner.processes.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// Whether every process in `pids` has exited (unknown pids count as
    /// exited, as they would after reaping).
    pub fn all_exited(&self, pids: &[Pid]) -> bool {
        let processes = self.inner.processes.lock();
        pids.iter().all(|pid| processes.get(pid).is_none_or(|p| p.exited.load(Ordering::Acquire)))
    }

    /// An inspector implementing [`KernelInspect`] for probes.
    pub(crate) fn inspector(&self) -> KernelViewImpl<'_> {
        KernelViewImpl { kernel: self }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Concrete [`KernelInspect`] over a [`Kernel`].
pub(crate) struct KernelViewImpl<'a> {
    kernel: &'a Kernel,
}

impl KernelInspect for KernelViewImpl<'_> {
    fn fd_info(&self, pid: Pid, fd: i32) -> Option<FdInfo> {
        let proc = self.kernel.inner.processes.lock().get(&pid).cloned()?;
        let file = proc.fds.get(fd).ok()?;
        let inode = file.inode();
        Some(FdInfo {
            file_type: inode.file_type(),
            offset: file.offset(),
            dev: inode.dev(),
            ino: inode.ino(),
            first_access_ns: inode.first_access_ns(),
            path: file.path().to_string(),
        })
    }

    fn process_name(&self, pid: Pid) -> Option<String> {
        self.kernel.inner.processes.lock().get(&pid).map(|p| p.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    #[test]
    fn pids_and_tids_are_unique() {
        let k = fast_kernel();
        let p1 = k.spawn_process("a");
        let p2 = k.spawn_process("b");
        assert_ne!(p1.pid(), p2.pid());
        let t1 = p1.spawn_thread("a0");
        let t2 = p1.spawn_thread("a1");
        assert_ne!(t1.tid(), t2.tid());
        assert_eq!(p1.thread_ids().len(), 2);
        assert_eq!(k.pids().len(), 2);
    }

    #[test]
    fn cpu_assignment_round_robins() {
        let k = Kernel::builder().num_cpus(2).root_disk(DiskProfile::instant()).build();
        let p = k.spawn_process("a");
        let cpus: Vec<u32> = (0..4).map(|i| p.spawn_thread(format!("t{i}")).cpu()).collect();
        assert_eq!(cpus, vec![0, 1, 0, 1]);
    }

    #[test]
    fn mount_resolution_longest_prefix() {
        let k = fast_kernel();
        let log_vfs = Vfs::new(999, DiskProfile::instant(), k.clock().clone());
        k.mount("/log", log_vfs);
        let (vfs, inner) = k.resolve_mount("/log/app.log").unwrap();
        assert_eq!(vfs.dev(), 999);
        assert_eq!(inner, "/app.log");
        let (vfs, inner) = k.resolve_mount("/data/x").unwrap();
        assert_eq!(vfs.dev(), ROOT_DEV);
        assert_eq!(inner, "/data/x");
        // `/logs` must NOT match the `/log` mount.
        let (vfs, _) = k.resolve_mount("/logs/x").unwrap();
        assert_eq!(vfs.dev(), ROOT_DEV);
        assert!(k.resolve_mount("relative").is_err());
    }

    #[test]
    fn process_lookup() {
        let k = fast_kernel();
        let p = k.spawn_process("svc");
        let found = k.process(p.pid()).unwrap();
        assert_eq!(found.name(), "svc");
        assert!(k.process(Pid(1)).is_none());
    }

    #[test]
    fn inspector_reads_fd_state() {
        let k = fast_kernel();
        let p = k.spawn_process("app");
        let t = p.spawn_thread("app");
        let fd = t
            .openat("/f", crate::fd::OpenFlags::CREAT | crate::fd::OpenFlags::RDWR, 0o644)
            .unwrap();
        t.write(fd, b"abcd").unwrap();
        let view = k.inspector();
        let info = KernelInspect::fd_info(&view, p.pid(), fd).unwrap();
        assert_eq!(info.offset, 4);
        assert_eq!(info.path, "/f");
        assert_eq!(info.dev, ROOT_DEV);
        assert!(info.first_access_ns > 0);
        assert_eq!(KernelInspect::process_name(&view, p.pid()).as_deref(), Some("app"));
        assert!(KernelInspect::fd_info(&view, p.pid(), 99).is_none());
    }
}
