#![warn(missing_docs)]

//! A simulated POSIX kernel: the substrate DIO traces.
//!
//! The real DIO attaches eBPF programs to Linux syscall tracepoints. This
//! crate provides the equivalent surface without privileges or a testbed:
//!
//! * a virtual file system ([`Vfs`]) with Linux-style **inode-number reuse**
//!   (lowest free number first) — the mechanism behind the Fluent Bit
//!   data-loss case study (Fig. 2 of the paper);
//! * processes and threads ([`Kernel::spawn_process`],
//!   [`Process::spawn_thread`]) whose [`ThreadCtx`] exposes the 42 storage
//!   syscalls of Table I with Linux argument/return conventions;
//! * `sys_enter`/`sys_exit` tracepoints ([`TracepointRegistry`]) where
//!   probes — DIO's eBPF programs, or the strace/sysdig baselines — attach
//!   and run synchronously in the syscall path;
//! * a shared-bandwidth FCFS disk model ([`Disk`]) that reproduces the I/O
//!   contention between foreground and background threads studied in the
//!   RocksDB experiment (Fig. 3/4).
//!
//! # Examples
//!
//! ```
//! use dio_kernel::{Kernel, OpenFlags};
//!
//! let kernel = Kernel::new();
//! let app = kernel.spawn_process("app");
//! let thread = app.spawn_thread("app");
//!
//! let fd = thread.openat("/app.log", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644)?;
//! thread.write(fd, b"hello syscalls")?;
//! thread.close(fd)?;
//!
//! assert_eq!(kernel.syscalls_executed(), 3);
//! # Ok::<(), dio_kernel::Errno>(())
//! ```

mod clock;
mod disk;
mod errno;
mod fd;
mod kernel;
mod syscalls;
mod tracepoint;
mod vfs;

pub use clock::{SimClock, PAPER_EPOCH_NS};
pub use disk::{Disk, DiskOp, DiskProfile, DiskStats};
pub use errno::{Errno, SysResult};
pub use fd::{FdTable, OpenFile, OpenFlags, Whence, FIRST_FD};
pub use kernel::{Kernel, KernelBuilder, Process, ROOT_DEV};
pub use syscalls::{ThreadCtx, AT_FDCWD, AT_REMOVEDIR, RENAME_NOREPLACE};
pub use tracepoint::{
    EnterEvent, ExitEvent, FdInfo, KernelInspect, ProbeId, SyscallProbe, TracepointRegistry,
};
pub use vfs::{Inode, InodeContent, StatBuf, StatFs, Vfs};
