//! The syscall interface of the simulated kernel.
//!
//! [`ThreadCtx`] is what an application thread holds; its methods are the 42
//! storage syscalls of Table I. Every invocation fires the `sys_enter` /
//! `sys_exit` tracepoints (when probed) around the actual VFS work, with the
//! same argument/return conventions as Linux — including `-errno` returns in
//! the exit event.

use std::sync::Arc;

use dio_syscall::{Arg, FileType, Pid, SyscallKind, Tid};

use crate::errno::{Errno, SysResult};
use crate::fd::{OpenFile, OpenFlags, Whence};
use crate::kernel::{Kernel, ProcessInner};
use crate::tracepoint::{EnterEvent, ExitEvent};
use crate::vfs::{StatBuf, StatFs, Vfs};

/// `dirfd` value meaning "relative to the current directory" for `*at`
/// syscalls. The simulator only supports absolute paths, so this is the only
/// meaningful value and appears in traces just as on Linux.
pub const AT_FDCWD: i64 = -100;

/// `unlinkat` flag selecting directory removal.
pub const AT_REMOVEDIR: u32 = 0x200;

/// `renameat2` flag forbidding replacement of an existing target.
pub const RENAME_NOREPLACE: u32 = 1;

/// The syscall context of one simulated thread.
///
/// Obtained from [`crate::Process::spawn_thread`]. Each method performs the
/// syscall, firing tracepoints exactly once per invocation.
pub struct ThreadCtx {
    kernel: Kernel,
    process: Arc<ProcessInner>,
    tid: Tid,
    comm: String,
    cpu: u32,
}

impl std::fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("pid", &self.process.pid)
            .field("tid", &self.tid)
            .field("comm", &self.comm)
            .field("cpu", &self.cpu)
            .finish()
    }
}

impl ThreadCtx {
    pub(crate) fn new(
        kernel: Kernel,
        process: Arc<ProcessInner>,
        tid: Tid,
        comm: String,
        cpu: u32,
    ) -> Self {
        ThreadCtx { kernel, process, tid, comm, cpu }
    }

    /// The owning process id.
    pub fn pid(&self) -> Pid {
        self.process.pid
    }

    /// This thread's id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The thread name a tracer observes.
    pub fn comm(&self) -> &str {
        &self.comm
    }

    /// The CPU this thread is pinned to.
    pub fn cpu(&self) -> u32 {
        self.cpu
    }

    /// The kernel this thread runs on.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    // ------------------------------------------------------------ plumbing

    /// Runs `op` as the syscall `kind`, firing tracepoints around it.
    fn invoke<T>(
        &self,
        kind: SyscallKind,
        args: Vec<Arg>,
        path: Option<&str>,
        fd: Option<i32>,
        op: impl FnOnce() -> SysResult<(i64, T)>,
    ) -> SysResult<T> {
        self.kernel.count_syscall(kind);
        let registry = self.kernel.tracepoints();
        if !registry.is_traced(kind) {
            return op().map(|(_, v)| v);
        }
        let view = self.kernel.inspector();
        let enter = EnterEvent {
            kind,
            pid: self.process.pid,
            tid: self.tid,
            comm: &self.comm,
            cpu: self.cpu,
            time_ns: self.kernel.clock().now_ns(),
            args: &args,
            path,
            fd,
        };
        registry.dispatch_enter(&view, &enter);
        let result = op();
        let ret = match &result {
            Ok((ret, _)) => *ret,
            Err(e) => e.to_ret(),
        };
        let exit = ExitEvent {
            kind,
            pid: self.process.pid,
            tid: self.tid,
            cpu: self.cpu,
            time_ns: self.kernel.clock().now_ns(),
            ret,
            mono_ns: dio_telemetry::monotonic_ns(),
        };
        registry.dispatch_exit(&view, &exit);
        result.map(|(_, v)| v)
    }

    fn resolve(&self, path: &str) -> SysResult<(Arc<Vfs>, String)> {
        self.kernel.resolve_mount(path)
    }

    fn file(&self, fd: i32) -> SysResult<Arc<OpenFile>> {
        self.process.fds.get(fd)
    }

    // ---------------------------------------------------------------- open

    fn do_open(&self, path: &str, flags: OpenFlags) -> SysResult<(i64, i32)> {
        let (vfs, inner) = self.resolve(path)?;
        let inode = if flags.contains(OpenFlags::CREAT) {
            vfs.create_file(&inner, flags.contains(OpenFlags::EXCL))?
        } else {
            vfs.lookup(&inner, true)?
        };
        if inode.file_type() == FileType::Directory && flags.writable() {
            return Err(Errno::EISDIR);
        }
        if flags.contains(OpenFlags::TRUNC)
            && flags.writable()
            && inode.file_type() == FileType::Regular
        {
            vfs.truncate(&inode, 0)?;
        }
        inode.touch_first_access(self.kernel.clock().now_ns());
        let file = OpenFile::new(vfs, inode, flags, path.to_string());
        let fd = self.process.fds.install(file);
        Ok((fd as i64, fd))
    }

    /// `open(path, flags, mode)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EEXIST` (with `O_CREAT|O_EXCL`), `EISDIR`, `EINVAL`.
    pub fn open(&self, path: &str, flags: OpenFlags, mode: u32) -> SysResult<i32> {
        let args =
            vec![Arg::new("path", path), Arg::new("flags", flags.bits()), Arg::new("mode", mode)];
        self.invoke(SyscallKind::Open, args, Some(path), None, || self.do_open(path, flags))
    }

    /// `openat(AT_FDCWD, path, flags, mode)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::open`].
    pub fn openat(&self, path: &str, flags: OpenFlags, mode: u32) -> SysResult<i32> {
        let args = vec![
            Arg::new("dfd", AT_FDCWD),
            Arg::new("path", path),
            Arg::new("flags", flags.bits()),
            Arg::new("mode", mode),
        ];
        self.invoke(SyscallKind::Openat, args, Some(path), None, || self.do_open(path, flags))
    }

    /// `creat(path, mode)` — equivalent to `open(path, O_WRONLY|O_CREAT|O_TRUNC)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::open`].
    pub fn creat(&self, path: &str, mode: u32) -> SysResult<i32> {
        let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        let args = vec![Arg::new("path", path), Arg::new("mode", mode)];
        self.invoke(SyscallKind::Creat, args, Some(path), None, || self.do_open(path, flags))
    }

    /// `close(fd)`.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn close(&self, fd: i32) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Close, args, None, Some(fd), || {
            self.process.fds.remove(fd)?;
            Ok((0, ()))
        })
    }

    // ------------------------------------------------------------ data path

    /// `read(fd, buf)` — reads at the current offset, advancing it.
    ///
    /// # Errors
    ///
    /// `EBADF` when `fd` is unknown or not readable; `EISDIR`.
    pub fn read(&self, fd: i32, buf: &mut [u8]) -> SysResult<usize> {
        let args = vec![Arg::new("fd", fd), Arg::new("count", buf.len())];
        self.invoke(SyscallKind::Read, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().readable() {
                return Err(Errno::EBADF);
            }
            let off = file.offset();
            let n = file.vfs().read_at(file.inode(), off, buf)?;
            file.set_offset(off + n as u64);
            Ok((n as i64, n))
        })
    }

    /// `pread64(fd, buf, offset)` — positional read; the cursor is unchanged.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::read`].
    pub fn pread64(&self, fd: i32, buf: &mut [u8], offset: u64) -> SysResult<usize> {
        let args =
            vec![Arg::new("fd", fd), Arg::new("count", buf.len()), Arg::new("offset", offset)];
        self.invoke(SyscallKind::Pread64, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().readable() {
                return Err(Errno::EBADF);
            }
            let n = file.vfs().read_at(file.inode(), offset, buf)?;
            Ok((n as i64, n))
        })
    }

    /// `readv(fd, iov)` — scatter read into multiple buffers.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::read`].
    pub fn readv(&self, fd: i32, bufs: &mut [&mut [u8]]) -> SysResult<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let args =
            vec![Arg::new("fd", fd), Arg::new("iovcnt", bufs.len()), Arg::new("count", total)];
        self.invoke(SyscallKind::Readv, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().readable() {
                return Err(Errno::EBADF);
            }
            let mut off = file.offset();
            let mut done = 0usize;
            for buf in bufs.iter_mut() {
                let n = file.vfs().read_at(file.inode(), off, buf)?;
                off += n as u64;
                done += n;
                if n < buf.len() {
                    break;
                }
            }
            file.set_offset(off);
            Ok((done as i64, done))
        })
    }

    /// `write(fd, buf)` — writes at the current offset (or EOF with
    /// `O_APPEND`), advancing the cursor.
    ///
    /// # Errors
    ///
    /// `EBADF` when `fd` is unknown or not writable; `EISDIR`; `ENOSPC`.
    pub fn write(&self, fd: i32, buf: &[u8]) -> SysResult<usize> {
        let args = vec![Arg::new("fd", fd), Arg::new("count", buf.len())];
        self.invoke(SyscallKind::Write, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().writable() {
                return Err(Errno::EBADF);
            }
            let append = file.flags().contains(OpenFlags::APPEND);
            let off = file.offset();
            let (n, wrote_at) = file.vfs().write_at(file.inode(), off, buf, append)?;
            file.set_offset(wrote_at + n as u64);
            Ok((n as i64, n))
        })
    }

    /// `pwrite64(fd, buf, offset)` — positional write; cursor unchanged.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::write`].
    pub fn pwrite64(&self, fd: i32, buf: &[u8], offset: u64) -> SysResult<usize> {
        let args =
            vec![Arg::new("fd", fd), Arg::new("count", buf.len()), Arg::new("offset", offset)];
        self.invoke(SyscallKind::Pwrite64, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().writable() {
                return Err(Errno::EBADF);
            }
            let (n, _) = file.vfs().write_at(file.inode(), offset, buf, false)?;
            Ok((n as i64, n))
        })
    }

    /// `writev(fd, iov)` — gather write from multiple buffers.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::write`].
    pub fn writev(&self, fd: i32, bufs: &[&[u8]]) -> SysResult<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let args =
            vec![Arg::new("fd", fd), Arg::new("iovcnt", bufs.len()), Arg::new("count", total)];
        self.invoke(SyscallKind::Writev, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if !file.flags().writable() {
                return Err(Errno::EBADF);
            }
            let append = file.flags().contains(OpenFlags::APPEND);
            let mut done = 0usize;
            for buf in bufs {
                let off = file.offset();
                let (n, wrote_at) = file.vfs().write_at(file.inode(), off, buf, append)?;
                file.set_offset(wrote_at + n as u64);
                done += n;
            }
            Ok((done as i64, done))
        })
    }

    /// `lseek(fd, offset, whence)` — repositions the cursor, returning the
    /// new absolute offset.
    ///
    /// # Errors
    ///
    /// `EBADF`; `EINVAL` for a resulting negative offset; `ESPIPE` on pipes.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> SysResult<u64> {
        let args =
            vec![Arg::new("fd", fd), Arg::new("offset", offset), Arg::new("whence", whence as u32)];
        self.invoke(SyscallKind::Lseek, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if file.inode().file_type() == FileType::Pipe {
                return Err(Errno::ESPIPE);
            }
            let base: i64 = match whence {
                Whence::Set => 0,
                Whence::Cur => file.offset() as i64,
                Whence::End => file.inode().size() as i64,
            };
            let new = base + offset;
            if new < 0 {
                return Err(Errno::EINVAL);
            }
            file.set_offset(new as u64);
            Ok((new, new as u64))
        })
    }

    /// `readahead(fd, offset, count)` — populates the (modelled) page cache.
    ///
    /// # Errors
    ///
    /// `EBADF`; `EINVAL` on non-regular files.
    pub fn readahead(&self, fd: i32, offset: u64, count: usize) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd), Arg::new("offset", offset), Arg::new("count", count)];
        self.invoke(SyscallKind::Readahead, args, None, Some(fd), || {
            let file = self.file(fd)?;
            if file.inode().file_type() != FileType::Regular {
                return Err(Errno::EINVAL);
            }
            file.vfs().readahead(file.inode(), offset, count as u64)?;
            Ok((0, ()))
        })
    }

    // ------------------------------------------------------------ metadata

    /// `truncate(path, length)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`; `EISDIR`; `EINVAL` for non-regular files.
    pub fn truncate(&self, path: &str, length: u64) -> SysResult<()> {
        let args = vec![Arg::new("path", path), Arg::new("length", length)];
        self.invoke(SyscallKind::Truncate, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            let inode = vfs.lookup(&inner, true)?;
            vfs.truncate(&inode, length)?;
            Ok((0, ()))
        })
    }

    /// `ftruncate(fd, length)`.
    ///
    /// # Errors
    ///
    /// `EBADF`; `EINVAL` for non-regular files.
    pub fn ftruncate(&self, fd: i32, length: u64) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd), Arg::new("length", length)];
        self.invoke(SyscallKind::Ftruncate, args, None, Some(fd), || {
            let file = self.file(fd)?;
            file.vfs().truncate(file.inode(), length)?;
            Ok((0, ()))
        })
    }

    /// `fsync(fd)` — flush data and metadata.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn fsync(&self, fd: i32) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Fsync, args, None, Some(fd), || {
            let file = self.file(fd)?;
            file.vfs().sync();
            Ok((0, ()))
        })
    }

    /// `fdatasync(fd)` — flush data only.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn fdatasync(&self, fd: i32) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Fdatasync, args, None, Some(fd), || {
            let file = self.file(fd)?;
            file.vfs().sync();
            Ok((0, ()))
        })
    }

    /// `stat(path)` — follows symlinks.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `ENOTDIR`, `ELOOP`.
    pub fn stat(&self, path: &str) -> SysResult<StatBuf> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Stat, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            let inode = vfs.lookup(&inner, true)?;
            Ok((0, vfs.getattr(&inode)))
        })
    }

    /// `lstat(path)` — does not follow a final symlink.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::stat`].
    pub fn lstat(&self, path: &str) -> SysResult<StatBuf> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Lstat, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            let inode = vfs.lookup(&inner, false)?;
            Ok((0, vfs.getattr(&inode)))
        })
    }

    /// `fstat(fd)`.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn fstat(&self, fd: i32) -> SysResult<StatBuf> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Fstat, args, None, Some(fd), || {
            let file = self.file(fd)?;
            Ok((0, file.vfs().getattr(file.inode())))
        })
    }

    /// `fstatfs(fd)`.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn fstatfs(&self, fd: i32) -> SysResult<StatFs> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Fstatfs, args, None, Some(fd), || {
            let file = self.file(fd)?;
            Ok((0, file.vfs().statfs()))
        })
    }

    // ----------------------------------------------------- rename / unlink

    fn do_rename(&self, old: &str, new: &str, noreplace: bool) -> SysResult<(i64, ())> {
        let (vfs_old, inner_old) = self.resolve(old)?;
        let (vfs_new, inner_new) = self.resolve(new)?;
        if !Arc::ptr_eq(&vfs_old, &vfs_new) {
            // Cross-device rename, as on Linux.
            return Err(Errno::EINVAL);
        }
        vfs_old.rename(&inner_old, &inner_new, noreplace)?;
        Ok((0, ()))
    }

    /// `rename(old, new)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `ENOTEMPTY`, `EINVAL` (cross-device).
    pub fn rename(&self, old: &str, new: &str) -> SysResult<()> {
        let args = vec![Arg::new("oldpath", old), Arg::new("newpath", new)];
        self.invoke(SyscallKind::Rename, args, Some(old), None, || self.do_rename(old, new, false))
    }

    /// `renameat(AT_FDCWD, old, AT_FDCWD, new)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::rename`].
    pub fn renameat(&self, old: &str, new: &str) -> SysResult<()> {
        let args = vec![
            Arg::new("olddfd", AT_FDCWD),
            Arg::new("oldpath", old),
            Arg::new("newdfd", AT_FDCWD),
            Arg::new("newpath", new),
        ];
        self.invoke(SyscallKind::Renameat, args, Some(old), None, || {
            self.do_rename(old, new, false)
        })
    }

    /// `renameat2(AT_FDCWD, old, AT_FDCWD, new, flags)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::rename`], plus `EEXIST` with `RENAME_NOREPLACE`.
    pub fn renameat2(&self, old: &str, new: &str, flags: u32) -> SysResult<()> {
        let args = vec![
            Arg::new("olddfd", AT_FDCWD),
            Arg::new("oldpath", old),
            Arg::new("newdfd", AT_FDCWD),
            Arg::new("newpath", new),
            Arg::new("flags", flags),
        ];
        self.invoke(SyscallKind::Renameat2, args, Some(old), None, || {
            self.do_rename(old, new, flags & RENAME_NOREPLACE != 0)
        })
    }

    /// `unlink(path)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`; `EISDIR` for directories.
    pub fn unlink(&self, path: &str) -> SysResult<()> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Unlink, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.unlink(&inner)?;
            Ok((0, ()))
        })
    }

    /// `unlinkat(AT_FDCWD, path, flags)` — removes a file, or a directory
    /// with [`AT_REMOVEDIR`].
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::unlink`] / [`ThreadCtx::rmdir`].
    pub fn unlinkat(&self, path: &str, flags: u32) -> SysResult<()> {
        let args =
            vec![Arg::new("dfd", AT_FDCWD), Arg::new("path", path), Arg::new("flags", flags)];
        self.invoke(SyscallKind::Unlinkat, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            if flags & AT_REMOVEDIR != 0 {
                vfs.rmdir(&inner)?;
            } else {
                vfs.unlink(&inner)?;
            }
            Ok((0, ()))
        })
    }

    // --------------------------------------------------------------- xattr

    fn xattr_target(
        &self,
        path: &str,
        follow: bool,
    ) -> SysResult<(Arc<Vfs>, Arc<crate::vfs::Inode>)> {
        let (vfs, inner) = self.resolve(path)?;
        let inode = vfs.lookup(&inner, follow)?;
        Ok((vfs, inode))
    }

    /// `getxattr(path, name)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`; `ENODATA` when the attribute is absent.
    pub fn getxattr(&self, path: &str, name: &str) -> SysResult<Vec<u8>> {
        let args = vec![Arg::new("path", path), Arg::new("name", name)];
        self.invoke(SyscallKind::Getxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, true)?;
            let v = vfs.getxattr(&inode, name)?;
            Ok((v.len() as i64, v))
        })
    }

    /// `lgetxattr(path, name)` — on the link itself.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::getxattr`].
    pub fn lgetxattr(&self, path: &str, name: &str) -> SysResult<Vec<u8>> {
        let args = vec![Arg::new("path", path), Arg::new("name", name)];
        self.invoke(SyscallKind::Lgetxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, false)?;
            let v = vfs.getxattr(&inode, name)?;
            Ok((v.len() as i64, v))
        })
    }

    /// `fgetxattr(fd, name)`.
    ///
    /// # Errors
    ///
    /// `EBADF`; `ENODATA`.
    pub fn fgetxattr(&self, fd: i32, name: &str) -> SysResult<Vec<u8>> {
        let args = vec![Arg::new("fd", fd), Arg::new("name", name)];
        self.invoke(SyscallKind::Fgetxattr, args, None, Some(fd), || {
            let file = self.file(fd)?;
            let v = file.vfs().getxattr(file.inode(), name)?;
            Ok((v.len() as i64, v))
        })
    }

    /// `setxattr(path, name, value)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`; `EINVAL` for invalid names.
    pub fn setxattr(&self, path: &str, name: &str, value: &[u8]) -> SysResult<()> {
        let args =
            vec![Arg::new("path", path), Arg::new("name", name), Arg::new("size", value.len())];
        self.invoke(SyscallKind::Setxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, true)?;
            vfs.setxattr(&inode, name, value)?;
            Ok((0, ()))
        })
    }

    /// `lsetxattr(path, name, value)` — on the link itself.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::setxattr`].
    pub fn lsetxattr(&self, path: &str, name: &str, value: &[u8]) -> SysResult<()> {
        let args =
            vec![Arg::new("path", path), Arg::new("name", name), Arg::new("size", value.len())];
        self.invoke(SyscallKind::Lsetxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, false)?;
            vfs.setxattr(&inode, name, value)?;
            Ok((0, ()))
        })
    }

    /// `fsetxattr(fd, name, value)`.
    ///
    /// # Errors
    ///
    /// `EBADF`; `EINVAL`.
    pub fn fsetxattr(&self, fd: i32, name: &str, value: &[u8]) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd), Arg::new("name", name), Arg::new("size", value.len())];
        self.invoke(SyscallKind::Fsetxattr, args, None, Some(fd), || {
            let file = self.file(fd)?;
            file.vfs().setxattr(file.inode(), name, value)?;
            Ok((0, ()))
        })
    }

    /// `listxattr(path)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`.
    pub fn listxattr(&self, path: &str) -> SysResult<Vec<String>> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Listxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, true)?;
            let names = vfs.listxattr(&inode);
            let size: i64 = names.iter().map(|n| n.len() as i64 + 1).sum();
            Ok((size, names))
        })
    }

    /// `llistxattr(path)` — on the link itself.
    ///
    /// # Errors
    ///
    /// `ENOENT`.
    pub fn llistxattr(&self, path: &str) -> SysResult<Vec<String>> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Llistxattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, false)?;
            let names = vfs.listxattr(&inode);
            let size: i64 = names.iter().map(|n| n.len() as i64 + 1).sum();
            Ok((size, names))
        })
    }

    /// `flistxattr(fd)`.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn flistxattr(&self, fd: i32) -> SysResult<Vec<String>> {
        let args = vec![Arg::new("fd", fd)];
        self.invoke(SyscallKind::Flistxattr, args, None, Some(fd), || {
            let file = self.file(fd)?;
            let names = file.vfs().listxattr(file.inode());
            let size: i64 = names.iter().map(|n| n.len() as i64 + 1).sum();
            Ok((size, names))
        })
    }

    /// `removexattr(path, name)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`; `ENODATA`.
    pub fn removexattr(&self, path: &str, name: &str) -> SysResult<()> {
        let args = vec![Arg::new("path", path), Arg::new("name", name)];
        self.invoke(SyscallKind::Removexattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, true)?;
            vfs.removexattr(&inode, name)?;
            Ok((0, ()))
        })
    }

    /// `lremovexattr(path, name)` — on the link itself.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::removexattr`].
    pub fn lremovexattr(&self, path: &str, name: &str) -> SysResult<()> {
        let args = vec![Arg::new("path", path), Arg::new("name", name)];
        self.invoke(SyscallKind::Lremovexattr, args, Some(path), None, || {
            let (vfs, inode) = self.xattr_target(path, false)?;
            vfs.removexattr(&inode, name)?;
            Ok((0, ()))
        })
    }

    /// `fremovexattr(fd, name)`.
    ///
    /// # Errors
    ///
    /// `EBADF`; `ENODATA`.
    pub fn fremovexattr(&self, fd: i32, name: &str) -> SysResult<()> {
        let args = vec![Arg::new("fd", fd), Arg::new("name", name)];
        self.invoke(SyscallKind::Fremovexattr, args, None, Some(fd), || {
            let file = self.file(fd)?;
            file.vfs().removexattr(file.inode(), name)?;
            Ok((0, ()))
        })
    }

    // -------------------------------------------------- directory management

    /// `mknod(path, type)` — creates a special file (or a regular file).
    ///
    /// # Errors
    ///
    /// `EEXIST`; `EINVAL` for unsupported types.
    pub fn mknod(&self, path: &str, file_type: FileType) -> SysResult<()> {
        let args = vec![Arg::new("path", path), Arg::new("mode", mode_bits(file_type))];
        self.invoke(SyscallKind::Mknod, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.mknod(&inner, file_type)?;
            Ok((0, ()))
        })
    }

    /// `mknodat(AT_FDCWD, path, type)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::mknod`].
    pub fn mknodat(&self, path: &str, file_type: FileType) -> SysResult<()> {
        let args = vec![
            Arg::new("dfd", AT_FDCWD),
            Arg::new("path", path),
            Arg::new("mode", mode_bits(file_type)),
        ];
        self.invoke(SyscallKind::Mknodat, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.mknod(&inner, file_type)?;
            Ok((0, ()))
        })
    }

    /// `mkdir(path, mode)`.
    ///
    /// # Errors
    ///
    /// `EEXIST`; `ENOENT` for missing parents.
    pub fn mkdir(&self, path: &str, mode: u32) -> SysResult<()> {
        let args = vec![Arg::new("path", path), Arg::new("mode", mode)];
        self.invoke(SyscallKind::Mkdir, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.mkdir(&inner)?;
            Ok((0, ()))
        })
    }

    /// `mkdirat(AT_FDCWD, path, mode)`.
    ///
    /// # Errors
    ///
    /// As [`ThreadCtx::mkdir`].
    pub fn mkdirat(&self, path: &str, mode: u32) -> SysResult<()> {
        let args = vec![Arg::new("dfd", AT_FDCWD), Arg::new("path", path), Arg::new("mode", mode)];
        self.invoke(SyscallKind::Mkdirat, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.mkdir(&inner)?;
            Ok((0, ()))
        })
    }

    /// `rmdir(path)`.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY`; `ENOTDIR`; `ENOENT`.
    pub fn rmdir(&self, path: &str) -> SysResult<()> {
        let args = vec![Arg::new("path", path)];
        self.invoke(SyscallKind::Rmdir, args, Some(path), None, || {
            let (vfs, inner) = self.resolve(path)?;
            vfs.rmdir(&inner)?;
            Ok((0, ()))
        })
    }
}

/// `mode` bits (file-type part) used in `mknod` trace arguments.
fn mode_bits(file_type: FileType) -> u32 {
    match file_type {
        FileType::Regular => 0o100000,
        FileType::Directory => 0o040000,
        FileType::CharDevice => 0o020000,
        FileType::BlockDevice => 0o060000,
        FileType::Pipe => 0o010000,
        FileType::Socket => 0o140000,
        FileType::Symlink => 0o120000,
        FileType::Unknown => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use crate::kernel::Kernel;

    fn thread() -> ThreadCtx {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        k.spawn_process("test").spawn_thread("test")
    }

    #[test]
    fn open_write_read_close() {
        let t = thread();
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        assert_eq!(fd, 3);
        assert_eq!(t.write(fd, b"hello").unwrap(), 5);
        assert_eq!(t.lseek(fd, 0, Whence::Set).unwrap(), 0);
        let mut buf = [0u8; 5];
        assert_eq!(t.read(fd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        t.close(fd).unwrap();
        assert_eq!(t.close(fd).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn sequential_reads_advance_offset() {
        let t = thread();
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"abcdef").unwrap();
        t.lseek(fd, 0, Whence::Set).unwrap();
        let mut buf = [0u8; 2];
        t.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        t.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"cd");
    }

    #[test]
    fn pread_pwrite_do_not_move_cursor() {
        let t = thread();
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"0123456789").unwrap();
        let before = t.lseek(fd, 0, Whence::Cur).unwrap();
        t.pwrite64(fd, b"XX", 2).unwrap();
        let mut buf = [0u8; 4];
        t.pread64(fd, &mut buf, 1).unwrap();
        assert_eq!(&buf, b"1XX4");
        assert_eq!(t.lseek(fd, 0, Whence::Cur).unwrap(), before);
    }

    #[test]
    fn append_mode() {
        let t = thread();
        let fd = t
            .openat("/log", OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::APPEND, 0o644)
            .unwrap();
        t.write(fd, b"aa").unwrap();
        // Even after seeking back, append writes land at EOF.
        t.lseek(fd, 0, Whence::Set).unwrap();
        t.write(fd, b"bb").unwrap();
        t.close(fd).unwrap();
        let fd = t.openat("/log", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(t.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"aabb");
    }

    #[test]
    fn readv_writev() {
        let t = thread();
        let fd = t.openat("/v", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        assert_eq!(t.writev(fd, &[b"ab", b"cd", b"ef"]).unwrap(), 6);
        t.lseek(fd, 0, Whence::Set).unwrap();
        let mut b1 = [0u8; 3];
        let mut b2 = [0u8; 3];
        assert_eq!(t.readv(fd, &mut [&mut b1, &mut b2]).unwrap(), 6);
        assert_eq!(&b1, b"abc");
        assert_eq!(&b2, b"def");
    }

    #[test]
    fn lseek_whence_variants() {
        let t = thread();
        let fd = t.openat("/s", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"0123456789").unwrap();
        assert_eq!(t.lseek(fd, 4, Whence::Set).unwrap(), 4);
        assert_eq!(t.lseek(fd, 2, Whence::Cur).unwrap(), 6);
        assert_eq!(t.lseek(fd, -1, Whence::End).unwrap(), 9);
        assert_eq!(t.lseek(fd, -100, Whence::Cur).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn read_requires_read_access() {
        let t = thread();
        let fd = t.openat("/w", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(t.read(fd, &mut buf).unwrap_err(), Errno::EBADF);
        let fd2 = t.openat("/w", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(t.write(fd2, b"x").unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn open_trunc_clears_file() {
        let t = thread();
        let fd = t.creat("/t", 0o644).unwrap();
        t.write(fd, b"data").unwrap();
        t.close(fd).unwrap();
        let fd = t.openat("/t", OpenFlags::WRONLY | OpenFlags::TRUNC, 0).unwrap();
        assert_eq!(t.fstat(fd).unwrap().size, 0);
    }

    #[test]
    fn stat_family() {
        let t = thread();
        let fd = t.creat("/x", 0o644).unwrap();
        t.write(fd, b"12345").unwrap();
        let st = t.stat("/x").unwrap();
        assert_eq!(st.size, 5);
        assert_eq!(st.file_type, FileType::Regular);
        assert_eq!(t.fstat(fd).unwrap().ino, st.ino);
        let sfs = t.fstatfs(fd).unwrap();
        assert_eq!(sfs.dev, crate::kernel::ROOT_DEV);
        assert!(t.stat("/missing").is_err());
    }

    #[test]
    fn rename_family() {
        let t = thread();
        t.creat("/a", 0o644).unwrap();
        t.rename("/a", "/b").unwrap();
        assert!(t.stat("/b").is_ok());
        t.renameat("/b", "/c").unwrap();
        t.creat("/d", 0o644).unwrap();
        assert_eq!(t.renameat2("/c", "/d", RENAME_NOREPLACE).unwrap_err(), Errno::EEXIST);
        t.renameat2("/c", "/e", 0).unwrap();
        assert!(t.stat("/e").is_ok());
    }

    #[test]
    fn unlink_family_and_dirs() {
        let t = thread();
        t.mkdir("/d", 0o755).unwrap();
        t.mkdirat("/d/sub", 0o755).unwrap();
        t.creat("/d/f", 0o644).unwrap();
        assert_eq!(t.unlinkat("/d", 0).unwrap_err(), Errno::EISDIR);
        t.unlinkat("/d/f", 0).unwrap();
        t.unlinkat("/d/sub", AT_REMOVEDIR).unwrap();
        t.rmdir("/d").unwrap();
        assert!(t.stat("/d").is_err());
    }

    #[test]
    fn xattr_family() {
        let t = thread();
        let fd = t.creat("/x", 0o644).unwrap();
        t.setxattr("/x", "user.a", b"1").unwrap();
        t.fsetxattr(fd, "user.b", b"2").unwrap();
        assert_eq!(t.getxattr("/x", "user.a").unwrap(), b"1");
        assert_eq!(t.fgetxattr(fd, "user.b").unwrap(), b"2");
        assert_eq!(t.listxattr("/x").unwrap().len(), 2);
        assert_eq!(t.flistxattr(fd).unwrap().len(), 2);
        t.removexattr("/x", "user.a").unwrap();
        t.fremovexattr(fd, "user.b").unwrap();
        assert!(t.listxattr("/x").unwrap().is_empty());
        assert_eq!(t.getxattr("/x", "user.a").unwrap_err(), Errno::ENODATA);
    }

    #[test]
    fn xattr_on_symlink_vs_target() {
        let t = thread();
        let k = t.kernel();
        t.creat("/real", 0o644).unwrap();
        k.root_vfs().symlink("/real", "/ln").unwrap();
        t.setxattr("/ln", "user.x", b"target").unwrap();
        t.lsetxattr("/ln", "user.x", b"link").unwrap();
        assert_eq!(t.getxattr("/real", "user.x").unwrap(), b"target");
        assert_eq!(t.lgetxattr("/ln", "user.x").unwrap(), b"link");
        assert_eq!(t.llistxattr("/ln").unwrap(), vec!["user.x".to_string()]);
        t.lremovexattr("/ln", "user.x").unwrap();
        assert!(t.llistxattr("/ln").unwrap().is_empty());
    }

    #[test]
    fn mknod_and_lseek_on_pipe() {
        let t = thread();
        t.mknod("/pipe", FileType::Pipe).unwrap();
        t.mknodat("/sock", FileType::Socket).unwrap();
        assert_eq!(t.stat("/pipe").unwrap().file_type, FileType::Pipe);
        let fd = t.openat("/pipe", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(t.lseek(fd, 0, Whence::Set).unwrap_err(), Errno::ESPIPE);
    }

    #[test]
    fn truncate_and_ftruncate() {
        let t = thread();
        let fd = t.creat("/tr", 0o644).unwrap();
        t.write(fd, b"123456").unwrap();
        t.truncate("/tr", 3).unwrap();
        assert_eq!(t.stat("/tr").unwrap().size, 3);
        t.ftruncate(fd, 1).unwrap();
        assert_eq!(t.stat("/tr").unwrap().size, 1);
    }

    #[test]
    fn fsync_family_and_readahead() {
        let t = thread();
        let fd = t.creat("/s", 0o644).unwrap();
        t.write(fd, &[0u8; 1024]).unwrap();
        t.fsync(fd).unwrap();
        t.fdatasync(fd).unwrap();
        t.readahead(fd, 0, 512).unwrap();
        assert!(t.kernel().root_vfs().disk().stats().flushes >= 2);
    }

    #[test]
    fn syscall_counter_increments() {
        let t = thread();
        let before = t.kernel().syscalls_executed();
        t.creat("/c", 0o644).unwrap();
        t.stat("/c").unwrap();
        assert_eq!(t.kernel().syscalls_executed(), before + 2);
    }

    #[test]
    fn open_missing_without_creat_fails() {
        let t = thread();
        assert_eq!(t.openat("/nope", OpenFlags::RDONLY, 0).unwrap_err(), Errno::ENOENT);
        assert_eq!(t.open("/nope", OpenFlags::RDONLY, 0).unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn open_directory_for_write_fails() {
        let t = thread();
        t.mkdir("/d", 0o755).unwrap();
        assert_eq!(t.openat("/d", OpenFlags::WRONLY, 0).unwrap_err(), Errno::EISDIR);
        // Read-only open of a directory is allowed (e.g. for fstat).
        let fd = t.openat("/d", OpenFlags::RDONLY, 0).unwrap();
        assert_eq!(t.fstat(fd).unwrap().file_type, FileType::Directory);
    }
}
