//! Syscall tracepoints: the kernel-side attachment points for eBPF-style
//! probes.
//!
//! The simulated kernel fires `sys_enter`/`sys_exit` for every executed
//! syscall whose kind has at least one attached probe, mirroring Linux's
//! `tracepoint:syscalls:sys_enter_*` / `sys_exit_*` pairs. Probes run
//! *synchronously in the syscall path* — whatever work they do is overhead
//! charged to the traced application, exactly as with real eBPF programs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use dio_syscall::{Arg, FileTag, FileType, Pid, SyscallKind, SyscallSet, Tid};

/// Snapshot of an open file description, as an eBPF program would recover it
/// from `task_struct`/`files_struct` at probe time.
#[derive(Debug, Clone, PartialEq)]
pub struct FdInfo {
    /// Type of the file behind the descriptor.
    pub file_type: FileType,
    /// Current seek offset (before the syscall applies).
    pub offset: u64,
    /// Device number.
    pub dev: u64,
    /// Inode number.
    pub ino: u64,
    /// First-access timestamp of this inode generation (file-tag component).
    pub first_access_ns: u64,
    /// The dentry path recorded at open time.
    pub path: String,
}

impl FdInfo {
    /// The DIO file tag for this description.
    pub fn tag(&self) -> FileTag {
        FileTag::new(self.dev, self.ino, self.first_access_ns)
    }
}

/// Read-only view of kernel state offered to probes (what eBPF programs get
/// via helpers and direct struct access).
pub trait KernelInspect {
    /// Resolves a descriptor of process `pid` to its open-file snapshot.
    fn fd_info(&self, pid: Pid, fd: i32) -> Option<FdInfo>;

    /// The name of a process.
    fn process_name(&self, pid: Pid) -> Option<String>;
}

/// Payload of a `sys_enter` tracepoint.
#[derive(Debug)]
pub struct EnterEvent<'a> {
    /// Which syscall is entering.
    pub kind: SyscallKind,
    /// Calling process.
    pub pid: Pid,
    /// Calling thread.
    pub tid: Tid,
    /// Thread `comm` name.
    pub comm: &'a str,
    /// CPU executing the syscall.
    pub cpu: u32,
    /// Entry timestamp (ns).
    pub time_ns: u64,
    /// Raw syscall arguments.
    pub args: &'a [Arg],
    /// The primary target path for path-bearing syscalls.
    pub path: Option<&'a str>,
    /// The file descriptor argument for fd-bearing syscalls.
    pub fd: Option<i32>,
}

/// Payload of a `sys_exit` tracepoint.
#[derive(Debug)]
pub struct ExitEvent {
    /// Which syscall is exiting.
    pub kind: SyscallKind,
    /// Calling process.
    pub pid: Pid,
    /// Calling thread.
    pub tid: Tid,
    /// CPU executing the syscall.
    pub cpu: u32,
    /// Exit timestamp (ns).
    pub time_ns: u64,
    /// Return value (`-errno` on failure).
    pub ret: i64,
    /// Monotonic dispatch stamp ([`dio_telemetry::monotonic_ns`]) taken
    /// when the kernel fired the tracepoint — the span's
    /// `Stage::KernelDispatch` anchor. Unlike `time_ns` (simulated clock)
    /// this is comparable with user-space stamps.
    pub mono_ns: u64,
}

/// A kernel-side probe attached to syscall tracepoints.
///
/// Implementors must be cheap and non-blocking on the happy path: they run
/// inside the traced application's syscall. (The strace baseline exploits
/// this deliberately — its probe blocks, as the real ptrace stop does.)
pub trait SyscallProbe: Send + Sync {
    /// The syscall kinds this probe wants to observe. Checked once at
    /// attach time; tracepoints for other kinds stay disabled.
    fn kinds(&self) -> SyscallSet {
        SyscallSet::all()
    }

    /// Called at `sys_enter`.
    fn on_enter(&self, view: &dyn KernelInspect, event: &EnterEvent<'_>);

    /// Called at `sys_exit`.
    fn on_exit(&self, view: &dyn KernelInspect, event: &ExitEvent);
}

/// Identifier returned by [`TracepointRegistry::attach`], used to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(u64);

/// Probes attached to one syscall kind's tracepoint pair.
type ProbeList = Vec<(ProbeId, Arc<dyn SyscallProbe>)>;

/// The registry of attached probes, indexed by syscall kind.
pub struct TracepointRegistry {
    per_kind: Vec<RwLock<ProbeList>>,
    /// Bitmap of kinds with ≥1 probe: lets untraced syscalls skip all
    /// tracepoint work with a single atomic load.
    active: AtomicU64,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TracepointRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracepointRegistry")
            .field("active_kinds", &self.active.load(Ordering::Relaxed).count_ones())
            .finish()
    }
}

impl TracepointRegistry {
    /// Creates a registry with no probes.
    pub fn new() -> Self {
        TracepointRegistry {
            per_kind: (0..SyscallKind::ALL.len()).map(|_| RwLock::new(Vec::new())).collect(),
            active: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Attaches a probe to the tracepoints of every kind in `probe.kinds()`.
    pub fn attach(&self, probe: Arc<dyn SyscallProbe>) -> ProbeId {
        let id = ProbeId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let kinds = probe.kinds();
        for kind in kinds.iter() {
            self.per_kind[kind as usize].write().push((id, Arc::clone(&probe)));
        }
        let mut bits = 0u64;
        for kind in kinds.iter() {
            bits |= 1 << kind as u32;
        }
        self.active.fetch_or(bits, Ordering::Release);
        id
    }

    /// Detaches a probe from all tracepoints.
    pub fn detach(&self, id: ProbeId) {
        let mut still_active = 0u64;
        for (i, slot) in self.per_kind.iter().enumerate() {
            let mut probes = slot.write();
            probes.retain(|(pid, _)| *pid != id);
            if !probes.is_empty() {
                still_active |= 1 << i as u32;
            }
        }
        self.active.store(still_active, Ordering::Release);
    }

    /// Whether any probe observes `kind` (hot-path check).
    #[inline]
    pub fn is_traced(&self, kind: SyscallKind) -> bool {
        self.active.load(Ordering::Acquire) & (1 << kind as u32) != 0
    }

    /// Fires `sys_enter` for `event.kind`.
    pub fn dispatch_enter(&self, view: &dyn KernelInspect, event: &EnterEvent<'_>) {
        for (_, probe) in self.per_kind[event.kind as usize].read().iter() {
            probe.on_enter(view, event);
        }
    }

    /// Fires `sys_exit` for `event.kind`.
    pub fn dispatch_exit(&self, view: &dyn KernelInspect, event: &ExitEvent) {
        for (_, probe) in self.per_kind[event.kind as usize].read().iter() {
            probe.on_exit(view, event);
        }
    }
}

impl Default for TracepointRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingProbe {
        kinds: SyscallSet,
        enters: AtomicUsize,
        exits: AtomicUsize,
    }

    impl SyscallProbe for CountingProbe {
        fn kinds(&self) -> SyscallSet {
            self.kinds
        }
        fn on_enter(&self, _: &dyn KernelInspect, _: &EnterEvent<'_>) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn on_exit(&self, _: &dyn KernelInspect, _: &ExitEvent) {
            self.exits.fetch_add(1, Ordering::Relaxed);
        }
    }

    struct NullView;
    impl KernelInspect for NullView {
        fn fd_info(&self, _: Pid, _: i32) -> Option<FdInfo> {
            None
        }
        fn process_name(&self, _: Pid) -> Option<String> {
            None
        }
    }

    fn enter(kind: SyscallKind) -> EnterEvent<'static> {
        EnterEvent {
            kind,
            pid: Pid(1),
            tid: Tid(1),
            comm: "t",
            cpu: 0,
            time_ns: 0,
            args: &[],
            path: None,
            fd: None,
        }
    }

    #[test]
    fn attach_dispatch_detach() {
        let reg = TracepointRegistry::new();
        let probe = Arc::new(CountingProbe {
            kinds: [SyscallKind::Read].into_iter().collect(),
            enters: AtomicUsize::new(0),
            exits: AtomicUsize::new(0),
        });
        assert!(!reg.is_traced(SyscallKind::Read));
        let id = reg.attach(Arc::clone(&probe) as Arc<dyn SyscallProbe>);
        assert!(reg.is_traced(SyscallKind::Read));
        assert!(!reg.is_traced(SyscallKind::Write));

        reg.dispatch_enter(&NullView, &enter(SyscallKind::Read));
        reg.dispatch_enter(&NullView, &enter(SyscallKind::Write));
        assert_eq!(probe.enters.load(Ordering::Relaxed), 2 - 1); // only Read routed

        reg.detach(id);
        assert!(!reg.is_traced(SyscallKind::Read));
        reg.dispatch_enter(&NullView, &enter(SyscallKind::Read));
        assert_eq!(probe.enters.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn multiple_probes_share_a_tracepoint() {
        let reg = TracepointRegistry::new();
        let mk = || {
            Arc::new(CountingProbe {
                kinds: [SyscallKind::Close].into_iter().collect(),
                enters: AtomicUsize::new(0),
                exits: AtomicUsize::new(0),
            })
        };
        let (a, b) = (mk(), mk());
        let id_a = reg.attach(Arc::clone(&a) as Arc<dyn SyscallProbe>);
        reg.attach(Arc::clone(&b) as Arc<dyn SyscallProbe>);
        reg.dispatch_exit(
            &NullView,
            &ExitEvent {
                kind: SyscallKind::Close,
                pid: Pid(1),
                tid: Tid(1),
                cpu: 0,
                time_ns: 0,
                ret: 0,
                mono_ns: 1,
            },
        );
        assert_eq!(a.exits.load(Ordering::Relaxed), 1);
        assert_eq!(b.exits.load(Ordering::Relaxed), 1);
        // Detaching one keeps the kind active for the other.
        reg.detach(id_a);
        assert!(reg.is_traced(SyscallKind::Close));
    }

    #[test]
    fn fd_info_tag() {
        let info = FdInfo {
            file_type: FileType::Regular,
            offset: 0,
            dev: 7,
            ino: 12,
            first_access_ns: 99,
            path: "/f".into(),
        };
        assert_eq!(info.tag(), FileTag::new(7, 12, 99));
    }
}
