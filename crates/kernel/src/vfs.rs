//! An in-memory POSIX-like file system with Linux-style inode-number reuse.
//!
//! The reuse policy (lowest free inode number first) is load-bearing: it is
//! what lets the Fluent Bit experiment (Fig. 2) reproduce — a file deleted
//! and re-created with the same name receives the *same inode number*, and
//! only the file tag's first-access timestamp distinguishes the generations.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dio_syscall::FileType;

use crate::clock::SimClock;
use crate::disk::{Disk, DiskOp, DiskProfile};
use crate::errno::{Errno, SysResult};

/// Maximum symlink traversals during path resolution.
const MAX_SYMLINK_DEPTH: u32 = 8;

/// Maximum path component length, as on Linux.
const NAME_MAX: usize = 255;

/// The contents of an inode.
#[derive(Debug)]
pub enum InodeContent {
    /// A regular file and its bytes.
    Regular(Vec<u8>),
    /// A directory mapping names to child inode numbers.
    Directory(BTreeMap<String, u64>),
    /// A symbolic link and its target path.
    Symlink(String),
    /// A special file (pipe, device, socket) with no byte contents.
    Special(FileType),
}

/// An in-memory inode.
#[derive(Debug)]
pub struct Inode {
    ino: u64,
    dev: u64,
    content: RwLock<InodeContent>,
    xattrs: Mutex<BTreeMap<String, Vec<u8>>>,
    nlink: AtomicU32,
    open_count: AtomicU32,
    first_access_ns: AtomicU64,
}

impl Inode {
    /// Inode number.
    pub fn ino(&self) -> u64 {
        self.ino
    }

    /// Device number hosting the inode.
    pub fn dev(&self) -> u64 {
        self.dev
    }

    /// The file type of this inode.
    pub fn file_type(&self) -> FileType {
        match &*self.content.read() {
            InodeContent::Regular(_) => FileType::Regular,
            InodeContent::Directory(_) => FileType::Directory,
            InodeContent::Symlink(_) => FileType::Symlink,
            InodeContent::Special(t) => *t,
        }
    }

    /// Current size in bytes (0 for non-regular files).
    pub fn size(&self) -> u64 {
        match &*self.content.read() {
            InodeContent::Regular(data) => data.len() as u64,
            InodeContent::Directory(children) => children.len() as u64,
            _ => 0,
        }
    }

    /// Link count.
    pub fn nlink(&self) -> u32 {
        self.nlink.load(Ordering::Acquire)
    }

    /// Number of open file descriptions referring to this inode.
    pub fn open_count(&self) -> u32 {
        self.open_count.load(Ordering::Acquire)
    }

    /// Records the first access timestamp if unset, and returns it.
    ///
    /// This is the timestamp component of the DIO file tag.
    pub fn touch_first_access(&self, now_ns: u64) -> u64 {
        match self.first_access_ns.compare_exchange(0, now_ns, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => now_ns,
            Err(existing) => existing,
        }
    }

    /// The recorded first-access timestamp (0 if never accessed).
    pub fn first_access_ns(&self) -> u64 {
        self.first_access_ns.load(Ordering::Acquire)
    }
}

/// `stat`-style metadata snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatBuf {
    /// Device number.
    pub dev: u64,
    /// Inode number.
    pub ino: u64,
    /// File type.
    pub file_type: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u32,
}

/// `statfs`-style file-system metadata snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Device number.
    pub dev: u64,
    /// Block size used for accounting.
    pub block_size: u64,
    /// Total capacity in bytes (`u64::MAX` when unbounded).
    pub capacity: u64,
    /// Bytes currently used by regular file data.
    pub used: u64,
    /// Number of live inodes.
    pub inodes: u64,
}

struct InodeTable {
    map: HashMap<u64, Arc<Inode>>,
    free: BinaryHeap<Reverse<u64>>,
    next: u64,
}

/// An in-memory file system living on one simulated [`Disk`].
///
/// All data-path operations charge the disk model; directory and metadata
/// operations are memory-only (the paper's testbed had warm metadata caches).
#[derive(Debug)]
pub struct Vfs {
    dev: u64,
    disk: Arc<Disk>,
    clock: SimClock,
    inodes: Mutex<InodeTable>,
    root_ino: u64,
    capacity: Option<u64>,
    used_bytes: AtomicU64,
}

impl std::fmt::Debug for InodeTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InodeTable")
            .field("live", &self.map.len())
            .field("free", &self.free.len())
            .field("next", &self.next)
            .finish()
    }
}

impl Vfs {
    /// Creates a file system on a new disk with the given profile.
    pub fn new(dev: u64, profile: DiskProfile, clock: SimClock) -> Arc<Self> {
        let disk = Arc::new(Disk::new(dev, profile, clock.clone()));
        Self::on_disk(disk, clock)
    }

    /// Creates a file system on an existing disk.
    pub fn on_disk(disk: Arc<Disk>, clock: SimClock) -> Arc<Self> {
        let dev = disk.dev();
        let vfs = Vfs {
            dev,
            disk,
            clock,
            inodes: Mutex::new(InodeTable {
                map: HashMap::new(),
                free: BinaryHeap::new(),
                next: 1,
            }),
            root_ino: 1,
            capacity: None,
            used_bytes: AtomicU64::new(0),
        };
        let root = vfs.alloc_inode(InodeContent::Directory(BTreeMap::new()));
        debug_assert_eq!(root.ino(), 1);
        root.nlink.store(2, Ordering::Release);
        Arc::new(vfs)
    }

    /// Creates a capacity-bounded file system (writes past the limit fail
    /// with `ENOSPC`) — used for failure-injection tests.
    pub fn with_capacity(
        dev: u64,
        profile: DiskProfile,
        clock: SimClock,
        capacity: u64,
    ) -> Arc<Self> {
        let vfs = Self::new(dev, profile, clock);
        // Arc::new_cyclic is overkill; rebuild with capacity set.
        let Vfs { dev, disk, clock, inodes, root_ino, used_bytes, .. } =
            Arc::try_unwrap(vfs).expect("fresh vfs has a single owner");
        Arc::new(Vfs { dev, disk, clock, inodes, root_ino, capacity: Some(capacity), used_bytes })
    }

    /// The device number of this file system.
    pub fn dev(&self) -> u64 {
        self.dev
    }

    /// The underlying disk model.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn alloc_inode(&self, content: InodeContent) -> Arc<Inode> {
        let mut table = self.inodes.lock();
        let ino = match table.free.pop() {
            Some(Reverse(i)) => i,
            None => {
                let i = table.next;
                table.next += 1;
                i
            }
        };
        let inode = Arc::new(Inode {
            ino,
            dev: self.dev,
            content: RwLock::new(content),
            xattrs: Mutex::new(BTreeMap::new()),
            nlink: AtomicU32::new(1),
            open_count: AtomicU32::new(0),
            first_access_ns: AtomicU64::new(0),
        });
        table.map.insert(ino, Arc::clone(&inode));
        inode
    }

    fn get_inode(&self, ino: u64) -> Option<Arc<Inode>> {
        self.inodes.lock().map.get(&ino).cloned()
    }

    /// Frees the inode number if the inode has no links and no open
    /// descriptions. Called after unlink/rmdir and after close.
    pub(crate) fn maybe_free(&self, inode: &Arc<Inode>) {
        if inode.nlink() == 0 && inode.open_count() == 0 {
            let mut table = self.inodes.lock();
            // Re-check under the table lock to avoid double-free races.
            if inode.nlink() == 0 && inode.open_count() == 0 {
                if let Some(existing) = table.map.get(&inode.ino) {
                    if Arc::ptr_eq(existing, inode) {
                        table.map.remove(&inode.ino);
                        table.free.push(Reverse(inode.ino));
                        if let InodeContent::Regular(data) = &*inode.content.read() {
                            self.used_bytes.fetch_sub(data.len() as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn inc_open(&self, inode: &Arc<Inode>) {
        inode.open_count.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn dec_open(&self, inode: &Arc<Inode>) {
        inode.open_count.fetch_sub(1, Ordering::AcqRel);
        self.maybe_free(inode);
    }

    // ---------------------------------------------------------------- paths

    fn components(path: &str) -> SysResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(Errno::EINVAL);
        }
        let mut out = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    out.pop();
                }
                name => {
                    if name.len() > NAME_MAX {
                        return Err(Errno::ENAMETOOLONG);
                    }
                    out.push(name);
                }
            }
        }
        Ok(out)
    }

    fn resolve_from(
        &self,
        start: Arc<Inode>,
        comps: &[&str],
        follow_last: bool,
        depth: u32,
    ) -> SysResult<Arc<Inode>> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::ELOOP);
        }
        let mut cur = start;
        for (i, comp) in comps.iter().enumerate() {
            let is_last = i + 1 == comps.len();
            let next_ino = match &*cur.content.read() {
                InodeContent::Directory(children) => *children.get(*comp).ok_or(Errno::ENOENT)?,
                _ => return Err(Errno::ENOTDIR),
            };
            let next = self.get_inode(next_ino).ok_or(Errno::ENOENT)?;
            let is_symlink = matches!(&*next.content.read(), InodeContent::Symlink(_));
            if is_symlink && (!is_last || follow_last) {
                let target = match &*next.content.read() {
                    InodeContent::Symlink(t) => t.clone(),
                    _ => unreachable!(),
                };
                let target_comps = Self::components(&target)?;
                let root = self.get_inode(self.root_ino).ok_or(Errno::ENOENT)?;
                let resolved = self.resolve_from(root, &target_comps, true, depth + 1)?;
                // Continue walking the remaining components from the target.
                let rest = &comps[i + 1..];
                return self.resolve_from(resolved, rest, follow_last, depth + 1);
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves an absolute path to an inode.
    ///
    /// # Errors
    ///
    /// `ENOENT` for missing components, `ENOTDIR` when an intermediate
    /// component is not a directory, `ELOOP` for symlink cycles, `EINVAL`
    /// for relative paths.
    pub fn lookup(&self, path: &str, follow_symlinks: bool) -> SysResult<Arc<Inode>> {
        let comps = Self::components(path)?;
        let root = self.get_inode(self.root_ino).ok_or(Errno::ENOENT)?;
        self.resolve_from(root, &comps, follow_symlinks, 0)
    }

    /// Resolves the parent directory of `path`, returning it and the final
    /// component name.
    fn lookup_parent(&self, path: &str) -> SysResult<(Arc<Inode>, String)> {
        let comps = Self::components(path)?;
        let (name, parents) = comps.split_last().ok_or(Errno::EINVAL)?;
        let root = self.get_inode(self.root_ino).ok_or(Errno::ENOENT)?;
        let dir = self.resolve_from(root, parents, true, 0)?;
        if !matches!(&*dir.content.read(), InodeContent::Directory(_)) {
            return Err(Errno::ENOTDIR);
        }
        Ok((dir, name.to_string()))
    }

    // ------------------------------------------------------------- creation

    /// Creates (or opens) a regular file at `path`.
    ///
    /// # Errors
    ///
    /// `EEXIST` when `exclusive` and the file exists; `EISDIR` when the path
    /// is an existing directory; `ENOENT` when the parent is missing.
    pub fn create_file(&self, path: &str, exclusive: bool) -> SysResult<Arc<Inode>> {
        let (dir, name) = self.lookup_parent(path)?;
        // Fast path: existing entry.
        let existing = match &*dir.content.read() {
            InodeContent::Directory(children) => children.get(&name).copied(),
            _ => return Err(Errno::ENOTDIR),
        };
        if let Some(ino) = existing {
            if exclusive {
                return Err(Errno::EEXIST);
            }
            let inode = self.get_inode(ino).ok_or(Errno::ENOENT)?;
            return match inode.file_type() {
                FileType::Directory => Err(Errno::EISDIR),
                _ => Ok(inode),
            };
        }
        let inode = self.alloc_inode(InodeContent::Regular(Vec::new()));
        let mut content = dir.content.write();
        match &mut *content {
            InodeContent::Directory(children) => {
                if children.contains_key(&name) {
                    // Lost a race: fall back to the existing entry.
                    drop(content);
                    inode.nlink.store(0, Ordering::Release);
                    self.maybe_free(&inode);
                    return self.create_file(path, exclusive);
                }
                children.insert(name, inode.ino());
            }
            _ => return Err(Errno::ENOTDIR),
        }
        Ok(inode)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the entry exists; `ENOENT`/`ENOTDIR` on bad parents.
    pub fn mkdir(&self, path: &str) -> SysResult<Arc<Inode>> {
        let (dir, name) = self.lookup_parent(path)?;
        let inode = self.alloc_inode(InodeContent::Directory(BTreeMap::new()));
        inode.nlink.store(2, Ordering::Release);
        let mut content = dir.content.write();
        match &mut *content {
            InodeContent::Directory(children) => {
                if children.contains_key(&name) {
                    drop(content);
                    inode.nlink.store(0, Ordering::Release);
                    self.maybe_free(&inode);
                    return Err(Errno::EEXIST);
                }
                children.insert(name, inode.ino());
            }
            _ => return Err(Errno::ENOTDIR),
        }
        Ok(inode)
    }

    /// Recursively creates directories, ignoring existing ones (test helper).
    pub fn mkdir_all(&self, path: &str) -> SysResult<()> {
        let comps = Self::components(path)?;
        let mut cur = String::new();
        for c in comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur) {
                Ok(_) | Err(Errno::EEXIST) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Creates a special file (pipe, device node, socket).
    ///
    /// # Errors
    ///
    /// `EEXIST` if the entry exists; `EINVAL` for non-special types.
    pub fn mknod(&self, path: &str, file_type: FileType) -> SysResult<Arc<Inode>> {
        match file_type {
            FileType::Pipe | FileType::BlockDevice | FileType::CharDevice | FileType::Socket => {}
            FileType::Regular => return self.create_file(path, true),
            _ => return Err(Errno::EINVAL),
        }
        let (dir, name) = self.lookup_parent(path)?;
        let inode = self.alloc_inode(InodeContent::Special(file_type));
        let mut content = dir.content.write();
        match &mut *content {
            InodeContent::Directory(children) => {
                if children.contains_key(&name) {
                    drop(content);
                    inode.nlink.store(0, Ordering::Release);
                    self.maybe_free(&inode);
                    return Err(Errno::EEXIST);
                }
                children.insert(name, inode.ino());
            }
            _ => return Err(Errno::ENOTDIR),
        }
        Ok(inode)
    }

    /// Creates a symbolic link at `path` pointing to `target` (test helper;
    /// `symlink` is not one of the 42 traced syscalls).
    pub fn symlink(&self, target: &str, path: &str) -> SysResult<Arc<Inode>> {
        let (dir, name) = self.lookup_parent(path)?;
        let inode = self.alloc_inode(InodeContent::Symlink(target.to_string()));
        let mut content = dir.content.write();
        match &mut *content {
            InodeContent::Directory(children) => {
                if children.contains_key(&name) {
                    drop(content);
                    inode.nlink.store(0, Ordering::Release);
                    self.maybe_free(&inode);
                    return Err(Errno::EEXIST);
                }
                children.insert(name, inode.ino());
            }
            _ => return Err(Errno::ENOTDIR),
        }
        Ok(inode)
    }

    // -------------------------------------------------------------- removal

    /// Unlinks a non-directory entry.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories (use [`Vfs::rmdir`]); `ENOENT` if missing.
    pub fn unlink(&self, path: &str) -> SysResult<()> {
        let (dir, name) = self.lookup_parent(path)?;
        let inode = {
            let mut content = dir.content.write();
            let children = match &mut *content {
                InodeContent::Directory(children) => children,
                _ => return Err(Errno::ENOTDIR),
            };
            let ino = *children.get(&name).ok_or(Errno::ENOENT)?;
            let inode = self.get_inode(ino).ok_or(Errno::ENOENT)?;
            if inode.file_type() == FileType::Directory {
                return Err(Errno::EISDIR);
            }
            children.remove(&name);
            inode
        };
        inode.nlink.fetch_sub(1, Ordering::AcqRel);
        self.maybe_free(&inode);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY` when the directory has entries; `ENOTDIR` for files.
    pub fn rmdir(&self, path: &str) -> SysResult<()> {
        let (dir, name) = self.lookup_parent(path)?;
        let inode = {
            let mut content = dir.content.write();
            let children = match &mut *content {
                InodeContent::Directory(children) => children,
                _ => return Err(Errno::ENOTDIR),
            };
            let ino = *children.get(&name).ok_or(Errno::ENOENT)?;
            let inode = self.get_inode(ino).ok_or(Errno::ENOENT)?;
            match &*inode.content.read() {
                InodeContent::Directory(grandchildren) => {
                    if !grandchildren.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                }
                _ => return Err(Errno::ENOTDIR),
            }
            children.remove(&name);
            inode
        };
        inode.nlink.store(0, Ordering::Release);
        self.maybe_free(&inode);
        Ok(())
    }

    /// Renames `old` to `new`, replacing a non-directory target.
    ///
    /// # Errors
    ///
    /// `ENOENT` when `old` is missing; `EEXIST` when `noreplace` and the
    /// target exists; `EISDIR`/`ENOTEMPTY` for invalid directory targets.
    pub fn rename(&self, old: &str, new: &str, noreplace: bool) -> SysResult<()> {
        let (old_dir, old_name) = self.lookup_parent(old)?;
        let (new_dir, new_name) = self.lookup_parent(new)?;

        fn as_dir(content: &mut InodeContent) -> SysResult<&mut BTreeMap<String, u64>> {
            match content {
                InodeContent::Directory(children) => Ok(children),
                _ => Err(Errno::ENOTDIR),
            }
        }

        // The displaced target's link drop happens after the dir locks are
        // released, so `maybe_free` can take the inode-table lock safely.
        let displaced = if Arc::ptr_eq(&old_dir, &new_dir) {
            let mut guard = old_dir.content.write();
            let children = as_dir(&mut guard)?;
            let moving_ino = *children.get(&old_name).ok_or(Errno::ENOENT)?;
            if old_name == new_name {
                return Ok(());
            }
            let displaced = self.check_rename_target(children, &new_name, noreplace)?;
            children.remove(&old_name);
            children.insert(new_name, moving_ino);
            displaced
        } else {
            // Lock ordering by inode number avoids deadlock between two dirs.
            let (mut guard_a, mut guard_b) = if old_dir.ino() < new_dir.ino() {
                let a = old_dir.content.write();
                let b = new_dir.content.write();
                (a, b)
            } else {
                let b = new_dir.content.write();
                let a = old_dir.content.write();
                (a, b)
            };
            let old_children = as_dir(&mut guard_a)?;
            let new_children = as_dir(&mut guard_b)?;
            let moving_ino = *old_children.get(&old_name).ok_or(Errno::ENOENT)?;
            let displaced = self.check_rename_target(new_children, &new_name, noreplace)?;
            old_children.remove(&old_name);
            new_children.insert(new_name, moving_ino);
            displaced
        };
        if let Some(target) = displaced {
            target.nlink.fetch_sub(1, Ordering::AcqRel);
            self.maybe_free(&target);
        }
        Ok(())
    }

    /// Validates the destination entry of a rename, returning the inode it
    /// displaces (if any).
    fn check_rename_target(
        &self,
        new_children: &BTreeMap<String, u64>,
        new_name: &str,
        noreplace: bool,
    ) -> SysResult<Option<Arc<Inode>>> {
        let Some(target_ino) = new_children.get(new_name).copied() else {
            return Ok(None);
        };
        if noreplace {
            return Err(Errno::EEXIST);
        }
        let target = self.get_inode(target_ino).ok_or(Errno::ENOENT)?;
        if let InodeContent::Directory(c) = &*target.content.read() {
            if !c.is_empty() {
                return Err(Errno::ENOTEMPTY);
            }
        }
        Ok(Some(target))
    }

    // ------------------------------------------------------------ data path

    /// Reads up to `buf.len()` bytes from `inode` at `offset`.
    ///
    /// Charges the disk model for the bytes actually transferred.
    ///
    /// # Errors
    ///
    /// `EISDIR` when reading a directory.
    pub fn read_at(&self, inode: &Inode, offset: u64, buf: &mut [u8]) -> SysResult<usize> {
        let n = {
            let content = inode.content.read();
            match &*content {
                InodeContent::Regular(data) => {
                    let start = offset.min(data.len() as u64) as usize;
                    let end = (start + buf.len()).min(data.len());
                    let n = end - start;
                    buf[..n].copy_from_slice(&data[start..end]);
                    n
                }
                InodeContent::Directory(_) => return Err(Errno::EISDIR),
                InodeContent::Special(_) | InodeContent::Symlink(_) => 0,
            }
        };
        if n > 0 {
            self.disk.access(DiskOp::Read, n as u64);
        }
        Ok(n)
    }

    /// Writes `data` to `inode` at `offset` (or at EOF when `append`),
    /// returning the number of bytes written and the offset *at which* the
    /// write happened.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories; `ENOSPC` when a capacity limit is exceeded.
    pub fn write_at(
        &self,
        inode: &Inode,
        offset: u64,
        data: &[u8],
        append: bool,
    ) -> SysResult<(usize, u64)> {
        let write_off = {
            let mut content = inode.content.write();
            match &mut *content {
                InodeContent::Regular(file) => {
                    let write_off = if append { file.len() as u64 } else { offset };
                    let end = write_off as usize + data.len();
                    let grow = end.saturating_sub(file.len());
                    if let Some(cap) = self.capacity {
                        if self.used_bytes.load(Ordering::Relaxed) + grow as u64 > cap {
                            return Err(Errno::ENOSPC);
                        }
                    }
                    if file.len() < end {
                        file.resize(end, 0);
                        self.used_bytes.fetch_add(grow as u64, Ordering::Relaxed);
                    }
                    file[write_off as usize..end].copy_from_slice(data);
                    write_off
                }
                InodeContent::Directory(_) => return Err(Errno::EISDIR),
                InodeContent::Special(_) | InodeContent::Symlink(_) => offset,
            }
        };
        if !data.is_empty() {
            self.disk.access(DiskOp::Write, data.len() as u64);
        }
        Ok((data.len(), write_off))
    }

    /// Truncates (or extends with zeros) a regular file to `len` bytes.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories; `EINVAL` for other non-regular files.
    pub fn truncate(&self, inode: &Inode, len: u64) -> SysResult<()> {
        let mut content = inode.content.write();
        match &mut *content {
            InodeContent::Regular(file) => {
                let old = file.len() as u64;
                file.resize(len as usize, 0);
                if len >= old {
                    self.used_bytes.fetch_add(len - old, Ordering::Relaxed);
                } else {
                    self.used_bytes.fetch_sub(old - len, Ordering::Relaxed);
                }
                Ok(())
            }
            InodeContent::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Issues a flush barrier on the backing device (`fsync` cost model).
    pub fn sync(&self) {
        self.disk.access(DiskOp::Flush, 0);
    }

    /// Simulates `readahead`: charges a read of `len` bytes without copying.
    pub fn readahead(&self, inode: &Inode, offset: u64, len: u64) -> SysResult<u64> {
        let size = inode.size();
        let start = offset.min(size);
        let n = (size - start).min(len);
        if n > 0 {
            self.disk.access(DiskOp::Read, n);
        }
        Ok(n)
    }

    // ------------------------------------------------------------- metadata

    /// Returns `stat`-style metadata for an inode.
    pub fn getattr(&self, inode: &Inode) -> StatBuf {
        StatBuf {
            dev: self.dev,
            ino: inode.ino(),
            file_type: inode.file_type(),
            size: inode.size(),
            nlink: inode.nlink(),
        }
    }

    /// Returns `statfs`-style metadata for the file system.
    pub fn statfs(&self) -> StatFs {
        StatFs {
            dev: self.dev,
            block_size: 4096,
            capacity: self.capacity.unwrap_or(u64::MAX),
            used: self.used_bytes.load(Ordering::Relaxed),
            inodes: self.inodes.lock().map.len() as u64,
        }
    }

    /// Lists the entries of a directory.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` when the inode is not a directory.
    pub fn readdir(&self, inode: &Inode) -> SysResult<Vec<String>> {
        match &*inode.content.read() {
            InodeContent::Directory(children) => Ok(children.keys().cloned().collect()),
            _ => Err(Errno::ENOTDIR),
        }
    }

    // --------------------------------------------------------------- xattrs

    /// Sets an extended attribute.
    pub fn setxattr(&self, inode: &Inode, name: &str, value: &[u8]) -> SysResult<()> {
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(Errno::EINVAL);
        }
        inode.xattrs.lock().insert(name.to_string(), value.to_vec());
        Ok(())
    }

    /// Gets an extended attribute.
    ///
    /// # Errors
    ///
    /// `ENODATA` when the attribute does not exist.
    pub fn getxattr(&self, inode: &Inode, name: &str) -> SysResult<Vec<u8>> {
        inode.xattrs.lock().get(name).cloned().ok_or(Errno::ENODATA)
    }

    /// Lists extended attribute names.
    pub fn listxattr(&self, inode: &Inode) -> Vec<String> {
        inode.xattrs.lock().keys().cloned().collect()
    }

    /// Removes an extended attribute.
    ///
    /// # Errors
    ///
    /// `ENODATA` when the attribute does not exist.
    pub fn removexattr(&self, inode: &Inode, name: &str) -> SysResult<()> {
        inode.xattrs.lock().remove(name).map(|_| ()).ok_or(Errno::ENODATA)
    }

    /// Number of live inodes (diagnostics).
    pub fn live_inodes(&self) -> usize {
        self.inodes.lock().map.len()
    }

    /// Reads a symlink target without following it.
    ///
    /// # Errors
    ///
    /// `EINVAL` when the inode is not a symlink.
    pub fn readlink(&self, inode: &Inode) -> SysResult<String> {
        match &*inode.content.read() {
            InodeContent::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_vfs() -> Arc<Vfs> {
        Vfs::new(7340032, DiskProfile::instant(), SimClock::new())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let vfs = test_vfs();
        let f = vfs.create_file("/a.txt", false).unwrap();
        let (n, off) = vfs.write_at(&f, 0, b"hello world", false).unwrap();
        assert_eq!((n, off), (11, 0));
        let mut buf = [0u8; 16];
        let n = vfs.read_at(&f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
        assert_eq!(f.size(), 11);
    }

    #[test]
    fn read_past_eof_returns_zero() {
        let vfs = test_vfs();
        let f = vfs.create_file("/a", false).unwrap();
        vfs.write_at(&f, 0, b"abc", false).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(vfs.read_at(&f, 3, &mut buf).unwrap(), 0);
        assert_eq!(vfs.read_at(&f, 100, &mut buf).unwrap(), 0);
        assert_eq!(vfs.read_at(&f, 1, &mut buf).unwrap(), 2);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let vfs = test_vfs();
        let f = vfs.create_file("/s", false).unwrap();
        vfs.write_at(&f, 5, b"xy", false).unwrap();
        let mut buf = [9u8; 7];
        assert_eq!(vfs.read_at(&f, 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, &[0, 0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn append_writes_at_eof() {
        let vfs = test_vfs();
        let f = vfs.create_file("/log", false).unwrap();
        vfs.write_at(&f, 0, b"aaa", false).unwrap();
        let (_, off) = vfs.write_at(&f, 0, b"bb", true).unwrap();
        assert_eq!(off, 3);
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn inode_numbers_are_reused_lowest_first() {
        let vfs = test_vfs();
        let a = vfs.create_file("/a", false).unwrap();
        let b = vfs.create_file("/b", false).unwrap();
        let (ia, ib) = (a.ino(), b.ino());
        assert!(ib > ia);
        drop((a, b));
        vfs.unlink("/a").unwrap();
        vfs.unlink("/b").unwrap();
        // Both freed; new files must take the lowest numbers first.
        let c = vfs.create_file("/c", false).unwrap();
        let d = vfs.create_file("/d", false).unwrap();
        assert_eq!(c.ino(), ia, "lowest free inode reused first");
        assert_eq!(d.ino(), ib);
    }

    #[test]
    fn inode_not_reused_while_open() {
        let vfs = test_vfs();
        let a = vfs.create_file("/a", false).unwrap();
        let ino = a.ino();
        vfs.inc_open(&a);
        vfs.unlink("/a").unwrap();
        // Still open: number must not be reused.
        let b = vfs.create_file("/b", false).unwrap();
        assert_ne!(b.ino(), ino);
        // After close it becomes available again.
        vfs.dec_open(&a);
        let c = vfs.create_file("/c", false).unwrap();
        assert_eq!(c.ino(), ino);
    }

    #[test]
    fn unlinked_but_open_file_remains_readable() {
        let vfs = test_vfs();
        let f = vfs.create_file("/tmpfile", false).unwrap();
        vfs.write_at(&f, 0, b"data", false).unwrap();
        vfs.inc_open(&f);
        vfs.unlink("/tmpfile").unwrap();
        assert!(vfs.lookup("/tmpfile", true).is_err());
        let mut buf = [0u8; 4];
        assert_eq!(vfs.read_at(&f, 0, &mut buf).unwrap(), 4);
        vfs.dec_open(&f);
    }

    #[test]
    fn mkdir_and_nested_files() {
        let vfs = test_vfs();
        vfs.mkdir("/dir").unwrap();
        vfs.mkdir("/dir/sub").unwrap();
        let f = vfs.create_file("/dir/sub/f", false).unwrap();
        assert_eq!(vfs.lookup("/dir/sub/f", true).unwrap().ino(), f.ino());
        assert_eq!(vfs.mkdir("/dir").unwrap_err(), Errno::EEXIST);
        assert_eq!(vfs.mkdir("/missing/x").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn mkdir_all_is_idempotent() {
        let vfs = test_vfs();
        vfs.mkdir_all("/a/b/c").unwrap();
        vfs.mkdir_all("/a/b/c").unwrap();
        assert!(vfs.lookup("/a/b/c", true).is_ok());
    }

    #[test]
    fn rmdir_requires_empty_dir() {
        let vfs = test_vfs();
        vfs.mkdir("/d").unwrap();
        vfs.create_file("/d/f", false).unwrap();
        assert_eq!(vfs.rmdir("/d").unwrap_err(), Errno::ENOTEMPTY);
        vfs.unlink("/d/f").unwrap();
        vfs.rmdir("/d").unwrap();
        assert!(vfs.lookup("/d", true).is_err());
        let f = vfs.create_file("/f", false).unwrap();
        drop(f);
        assert_eq!(vfs.rmdir("/f").unwrap_err(), Errno::ENOTDIR);
    }

    #[test]
    fn unlink_rejects_directories() {
        let vfs = test_vfs();
        vfs.mkdir("/d").unwrap();
        assert_eq!(vfs.unlink("/d").unwrap_err(), Errno::EISDIR);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let vfs = test_vfs();
        let a = vfs.create_file("/a", false).unwrap();
        vfs.write_at(&a, 0, b"A", false).unwrap();
        let b = vfs.create_file("/b", false).unwrap();
        let b_ino = b.ino();
        drop(b);
        vfs.rename("/a", "/b", false).unwrap();
        assert!(vfs.lookup("/a", true).is_err());
        assert_eq!(vfs.lookup("/b", true).unwrap().ino(), a.ino());
        // The displaced inode was freed and is reusable.
        let c = vfs.create_file("/c", false).unwrap();
        assert_eq!(c.ino(), b_ino);
    }

    #[test]
    fn rename_noreplace_fails_on_existing() {
        let vfs = test_vfs();
        vfs.create_file("/a", false).unwrap();
        vfs.create_file("/b", false).unwrap();
        assert_eq!(vfs.rename("/a", "/b", true).unwrap_err(), Errno::EEXIST);
    }

    #[test]
    fn rename_across_directories() {
        let vfs = test_vfs();
        vfs.mkdir("/src").unwrap();
        vfs.mkdir("/dst").unwrap();
        let f = vfs.create_file("/src/f", false).unwrap();
        vfs.rename("/src/f", "/dst/g", false).unwrap();
        assert_eq!(vfs.lookup("/dst/g", true).unwrap().ino(), f.ino());
        assert!(vfs.lookup("/src/f", true).is_err());
    }

    #[test]
    fn rename_same_path_is_noop() {
        let vfs = test_vfs();
        let f = vfs.create_file("/x", false).unwrap();
        vfs.rename("/x", "/x", false).unwrap();
        assert_eq!(vfs.lookup("/x", true).unwrap().ino(), f.ino());
    }

    #[test]
    fn truncate_shrinks_and_grows() {
        let vfs = test_vfs();
        let f = vfs.create_file("/t", false).unwrap();
        vfs.write_at(&f, 0, b"123456", false).unwrap();
        vfs.truncate(&f, 2).unwrap();
        assert_eq!(f.size(), 2);
        vfs.truncate(&f, 4).unwrap();
        let mut buf = [9u8; 4];
        vfs.read_at(&f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"12\0\0");
    }

    #[test]
    fn symlinks_resolve_and_loop_detection() {
        let vfs = test_vfs();
        let f = vfs.create_file("/real", false).unwrap();
        vfs.symlink("/real", "/link").unwrap();
        assert_eq!(vfs.lookup("/link", true).unwrap().ino(), f.ino());
        // lstat-style: do not follow.
        assert_eq!(vfs.lookup("/link", false).unwrap().file_type(), FileType::Symlink);
        vfs.symlink("/loop2", "/loop1").unwrap();
        vfs.symlink("/loop1", "/loop2").unwrap();
        assert_eq!(vfs.lookup("/loop1", true).unwrap_err(), Errno::ELOOP);
    }

    #[test]
    fn symlink_in_intermediate_component() {
        let vfs = test_vfs();
        vfs.mkdir("/data").unwrap();
        vfs.create_file("/data/f", false).unwrap();
        vfs.symlink("/data", "/d").unwrap();
        assert!(vfs.lookup("/d/f", true).is_ok());
    }

    #[test]
    fn xattr_roundtrip() {
        let vfs = test_vfs();
        let f = vfs.create_file("/x", false).unwrap();
        vfs.setxattr(&f, "user.tag", b"v1").unwrap();
        assert_eq!(vfs.getxattr(&f, "user.tag").unwrap(), b"v1");
        assert_eq!(vfs.listxattr(&f), vec!["user.tag".to_string()]);
        vfs.removexattr(&f, "user.tag").unwrap();
        assert_eq!(vfs.getxattr(&f, "user.tag").unwrap_err(), Errno::ENODATA);
        assert_eq!(vfs.removexattr(&f, "user.tag").unwrap_err(), Errno::ENODATA);
    }

    #[test]
    fn capacity_limit_enforced() {
        let vfs = Vfs::with_capacity(1, DiskProfile::instant(), SimClock::new(), 10);
        let f = vfs.create_file("/f", false).unwrap();
        vfs.write_at(&f, 0, b"12345", false).unwrap();
        assert_eq!(vfs.write_at(&f, 5, b"678901", false).unwrap_err(), Errno::ENOSPC);
        // Overwrites within the file do not grow usage.
        vfs.write_at(&f, 0, b"abcde", false).unwrap();
        assert_eq!(vfs.statfs().used, 5);
    }

    #[test]
    fn statfs_tracks_usage() {
        let vfs = test_vfs();
        let f = vfs.create_file("/f", false).unwrap();
        vfs.write_at(&f, 0, &[0u8; 100], false).unwrap();
        assert_eq!(vfs.statfs().used, 100);
        drop(f);
        vfs.unlink("/f").unwrap();
        assert_eq!(vfs.statfs().used, 0);
    }

    #[test]
    fn first_access_timestamp_is_sticky() {
        let vfs = test_vfs();
        let f = vfs.create_file("/f", false).unwrap();
        assert_eq!(f.first_access_ns(), 0);
        assert_eq!(f.touch_first_access(42), 42);
        assert_eq!(f.touch_first_access(99), 42);
        assert_eq!(f.first_access_ns(), 42);
    }

    #[test]
    fn relative_paths_rejected() {
        let vfs = test_vfs();
        assert_eq!(vfs.lookup("a/b", true).unwrap_err(), Errno::EINVAL);
        assert_eq!(vfs.create_file("rel", false).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn dot_and_dotdot_components() {
        let vfs = test_vfs();
        vfs.mkdir("/a").unwrap();
        let f = vfs.create_file("/a/f", false).unwrap();
        assert_eq!(vfs.lookup("/a/./f", true).unwrap().ino(), f.ino());
        assert_eq!(vfs.lookup("/a/../a/f", true).unwrap().ino(), f.ino());
        assert_eq!(vfs.lookup("/../a/f", true).unwrap().ino(), f.ino());
    }

    #[test]
    fn mknod_special_files() {
        let vfs = test_vfs();
        let p = vfs.mknod("/pipe", FileType::Pipe).unwrap();
        assert_eq!(p.file_type(), FileType::Pipe);
        let d = vfs.mknod("/dev0", FileType::BlockDevice).unwrap();
        assert_eq!(d.file_type(), FileType::BlockDevice);
        assert_eq!(vfs.mknod("/pipe", FileType::Pipe).unwrap_err(), Errno::EEXIST);
        assert_eq!(vfs.mknod("/bad", FileType::Directory).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn create_exclusive() {
        let vfs = test_vfs();
        vfs.create_file("/f", true).unwrap();
        assert_eq!(vfs.create_file("/f", true).unwrap_err(), Errno::EEXIST);
        assert!(vfs.create_file("/f", false).is_ok());
    }

    #[test]
    fn lookup_through_file_is_enotdir() {
        let vfs = test_vfs();
        vfs.create_file("/f", false).unwrap();
        assert_eq!(vfs.lookup("/f/x", true).unwrap_err(), Errno::ENOTDIR);
    }

    #[test]
    fn readdir_lists_entries() {
        let vfs = test_vfs();
        vfs.mkdir("/d").unwrap();
        vfs.create_file("/d/a", false).unwrap();
        vfs.create_file("/d/b", false).unwrap();
        let dir = vfs.lookup("/d", true).unwrap();
        assert_eq!(vfs.readdir(&dir).unwrap(), vec!["a".to_string(), "b".to_string()]);
        let f = vfs.lookup("/d/a", true).unwrap();
        assert_eq!(vfs.readdir(&f).unwrap_err(), Errno::ENOTDIR);
    }
}
