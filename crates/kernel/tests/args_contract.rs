//! The kernel↔catalog argument-decoding contract, checked end to end.
//!
//! `dio_syscall::expected_args` declares, per syscall, the argument names a
//! tracepoint records; the probe dispatch in `dio-kernel` builds the actual
//! `Arg` vectors. `dio-verify --check-catalog` cross-checks the two by
//! *source scanning*; this test checks the same contract *dynamically* by
//! attaching a capturing probe, invoking all 42 syscalls, and comparing the
//! observed argument names against the table.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dio_kernel::{EnterEvent, ExitEvent, Kernel, KernelInspect, OpenFlags, SyscallProbe, Whence};
use dio_syscall::{expected_args, FileType, SyscallKind};

/// Records the argument-name vector of every `sys_enter` it observes.
#[derive(Default)]
struct ArgRecorder {
    seen: Mutex<BTreeMap<SyscallKind, Vec<Vec<String>>>>,
}

impl SyscallProbe for ArgRecorder {
    fn on_enter(&self, _: &dyn KernelInspect, event: &EnterEvent<'_>) {
        let names: Vec<String> = event.args.iter().map(|a| a.name.to_string()).collect();
        self.seen.lock().unwrap().entry(event.kind).or_default().push(names);
    }

    fn on_exit(&self, _: &dyn KernelInspect, _: &ExitEvent) {}
}

/// Invokes every one of the 42 traced syscalls at least once.
fn drive_all_syscalls(kernel: &Kernel) {
    let t = kernel.spawn_process("contract").spawn_thread("contract");

    // Data class.
    let fd = t.open("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
    t.write(fd, b"hello world").unwrap();
    t.pwrite64(fd, b"xy", 0).unwrap();
    t.writev(fd, &[b"ab".as_slice(), b"cd"]).unwrap();
    t.lseek(fd, 0, Whence::Set).unwrap();
    let mut buf = [0u8; 4];
    t.read(fd, &mut buf).unwrap();
    t.pread64(fd, &mut buf, 0).unwrap();
    let (mut a, mut b) = ([0u8; 2], [0u8; 2]);
    t.readv(fd, &mut [&mut a[..], &mut b[..]]).unwrap();
    t.readahead(fd, 0, 4).unwrap();

    // Metadata class.
    let fd2 = t.creat("/c", 0o644).unwrap();
    t.close(fd2).unwrap();
    let fd3 = t.openat("/oa", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
    t.close(fd3).unwrap();
    t.truncate("/f", 8).unwrap();
    t.ftruncate(fd, 4).unwrap();
    t.fsync(fd).unwrap();
    t.fdatasync(fd).unwrap();
    kernel.root_vfs().symlink("/f", "/ln").unwrap();
    t.stat("/f").unwrap();
    t.lstat("/ln").unwrap();
    t.fstat(fd).unwrap();
    t.fstatfs(fd).unwrap();
    t.rename("/c", "/c2").unwrap();
    t.renameat("/c2", "/c3").unwrap();
    t.renameat2("/c3", "/c4", 0).unwrap();
    t.unlink("/c4").unwrap();
    t.close(t.creat("/u", 0o644).unwrap()).unwrap();
    t.unlinkat("/u", 0).unwrap();

    // Extended attributes class.
    t.setxattr("/f", "user.a", b"1").unwrap();
    t.lsetxattr("/ln", "user.b", b"2").unwrap();
    t.fsetxattr(fd, "user.c", b"3").unwrap();
    t.getxattr("/f", "user.a").unwrap();
    t.lgetxattr("/ln", "user.b").unwrap();
    t.fgetxattr(fd, "user.c").unwrap();
    t.listxattr("/f").unwrap();
    t.llistxattr("/ln").unwrap();
    t.flistxattr(fd).unwrap();
    t.removexattr("/f", "user.a").unwrap();
    t.lremovexattr("/ln", "user.b").unwrap();
    t.fremovexattr(fd, "user.c").unwrap();

    // Directory management class.
    t.mknod("/pipe", FileType::Pipe).unwrap();
    t.mknodat("/sock", FileType::Socket).unwrap();
    t.mkdir("/d", 0o755).unwrap();
    t.mkdirat("/d2", 0o755).unwrap();
    t.rmdir("/d2").unwrap();

    t.close(fd).unwrap();
}

#[test]
fn every_syscall_emits_exactly_the_catalogued_args() {
    let kernel = Kernel::new();
    let recorder = Arc::new(ArgRecorder::default());
    kernel.tracepoints().attach(Arc::clone(&recorder) as Arc<dyn SyscallProbe>);

    drive_all_syscalls(&kernel);

    let seen = recorder.seen.lock().unwrap();
    for &kind in SyscallKind::ALL {
        let invocations = seen.get(&kind).unwrap_or_else(|| {
            panic!("driver never invoked {} — coverage hole in the contract test", kind.name())
        });
        let want: Vec<String> = expected_args(kind).iter().map(|s| s.to_string()).collect();
        assert!(
            !want.is_empty(),
            "expected_args({}) is empty — the args.rs arm was removed",
            kind.name()
        );
        for got in invocations {
            assert_eq!(
                got,
                &want,
                "arg drift for {}: kernel dispatch recorded {:?}, catalog expects {:?}",
                kind.name(),
                got,
                want
            );
        }
    }
    assert_eq!(seen.len(), SyscallKind::ALL.len(), "all 42 syscalls observed");
}

/// The enter-side fd/path hints agree with the catalog's `takes_fd` /
/// `takes_path` bits — the filter layer relies on them to resolve paths.
#[test]
fn enter_hints_match_catalog_bits() {
    #[derive(Default)]
    struct HintRecorder {
        seen: Mutex<BTreeMap<SyscallKind, (bool, bool)>>,
    }
    impl SyscallProbe for HintRecorder {
        fn on_enter(&self, _: &dyn KernelInspect, event: &EnterEvent<'_>) {
            let mut seen = self.seen.lock().unwrap();
            let entry = seen.entry(event.kind).or_insert((false, false));
            entry.0 |= event.fd.is_some();
            entry.1 |= event.path.is_some();
        }
        fn on_exit(&self, _: &dyn KernelInspect, _: &ExitEvent) {}
    }

    let kernel = Kernel::new();
    let recorder = Arc::new(HintRecorder::default());
    kernel.tracepoints().attach(Arc::clone(&recorder) as Arc<dyn SyscallProbe>);
    drive_all_syscalls(&kernel);

    let seen = recorder.seen.lock().unwrap();
    for (&kind, &(saw_fd, saw_path)) in seen.iter() {
        assert_eq!(
            saw_fd,
            kind.takes_fd(),
            "{}: fd hint disagrees with catalog takes_fd",
            kind.name()
        );
        assert_eq!(
            saw_path,
            kind.takes_path(),
            "{}: path hint disagrees with catalog takes_path",
            kind.name()
        );
    }
}
