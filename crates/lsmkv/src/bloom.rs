//! A double-hashing Bloom filter for SSTables.

/// A serializable Bloom filter over byte keys.
///
/// Uses the Kirsch–Mitzenmacher double-hashing scheme over FNV-1a, the
/// standard construction in LSM stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl BloomFilter {
    /// Builds a filter for `keys` with `bits_per_key` bits of budget each.
    pub fn build<'a>(
        keys: impl IntoIterator<Item = &'a [u8]>,
        n_keys: usize,
        bits_per_key: usize,
    ) -> Self {
        let nbits = (n_keys * bits_per_key).max(64);
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut filter = BloomFilter { bits: vec![0u8; nbits.div_ceil(8)], k };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    fn insert(&mut self, key: &[u8]) {
        let nbits = (self.bits.len() * 8) as u64;
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// Whether `key` may be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = (self.bits.len() * 8) as u64;
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9e37_79b9_7f4a_7c15);
        (0..self.k as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }

    /// Serializes as `[k: u32][len: u32][bits]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserializes from [`BloomFilter::to_bytes`] output.
    ///
    /// Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 8 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let len = u32::from_le_bytes(data[4..8].try_into().ok()?) as usize;
        if data.len() < 8 + len || k == 0 {
            return None;
        }
        Some(BloomFilter { bits: data[8..8 + len].to_vec(), k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key{i:05}").into_bytes()).collect();
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), keys.len(), 10);
        for k in &keys {
            assert!(filter.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key{i:05}").into_bytes()).collect();
        let filter = BloomFilter::build(keys.iter().map(Vec::as_slice), keys.len(), 10);
        let fps =
            (0..10_000).filter(|i| filter.may_contain(format!("absent{i}").as_bytes())).count();
        // 10 bits/key gives ~1% theoretical; allow generous slack.
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn serialization_roundtrip() {
        let keys = [b"a".as_slice(), b"b".as_slice()];
        let filter = BloomFilter::build(keys, 2, 10);
        let back = BloomFilter::from_bytes(&filter.to_bytes()).unwrap();
        assert_eq!(filter, back);
        assert!(back.may_contain(b"a"));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(BloomFilter::from_bytes(&[]).is_none());
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_none());
        assert!(BloomFilter::from_bytes(&[0, 0, 0, 0, 255, 255, 255, 255]).is_none());
    }

    #[test]
    fn empty_filter_has_minimum_size() {
        let filter = BloomFilter::build(std::iter::empty(), 0, 10);
        assert!(!filter.may_contain(b"anything"));
    }
}
