//! The LSM key-value store: write path, read path, flush and compaction.
//!
//! Thread roles mirror the paper's RocksDB deployment (§III-C):
//!
//! * **client threads** call [`Db::put`]/[`Db::get`] directly (they appear
//!   in traces under their own names, e.g. `db_bench`);
//! * one **flush thread** (`rocksdb:high0`) turns immutable memtables into
//!   L0 SSTables;
//! * N **compaction threads** (`rocksdb:low0..`) merge SSTables down the
//!   levels; L0→L1 compactions are exclusive, as in RocksDB.
//!
//! Writes stall (slowdown trigger) and eventually stop (stop trigger) when
//! L0 grows faster than compactions drain it — the exact mechanism behind
//! the client latency spikes of Fig. 3.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use dio_kernel::{Errno, Process, SysResult, ThreadCtx};
use dio_telemetry::{Counter, MetricsRegistry};

use crate::memtable::{Entry, MemTable};
use crate::options::LsmOptions;
use crate::sstable::{write_sst, SstReader};
use crate::wal::Wal;

/// Cumulative store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Memtable flushes completed.
    pub flushes: u64,
    /// Compactions completed (including L0→L1).
    pub compactions: u64,
    /// L0→L1 compactions completed.
    pub l0_compactions: u64,
    /// Writes that hit the slowdown regime.
    pub slowed_writes: u64,
    /// Writes that hit the stop regime.
    pub stopped_writes: u64,
    /// Total nanoseconds writers spent stalled.
    pub stall_ns: u64,
    /// Bytes written by flushes.
    pub bytes_flushed: u64,
    /// Bytes written by compactions.
    pub bytes_compacted: u64,
}

#[derive(Debug)]
struct TableMeta {
    id: u64,
    path: String,
    size: u64,
    min: Vec<u8>,
    max: Vec<u8>,
    reader: SstReader,
}

impl TableMeta {
    fn overlaps(&self, min: &[u8], max: &[u8]) -> bool {
        self.min.as_slice() <= max && min <= self.max.as_slice()
    }
}

#[derive(Debug, Default)]
struct Levels {
    /// L0: newest table first; key ranges may overlap.
    l0: Vec<Arc<TableMeta>>,
    /// L1..=max: disjoint ranges, sorted by min key.
    lower: Vec<Vec<Arc<TableMeta>>>,
    compacting: HashSet<u64>,
    l0_compaction_running: bool,
    /// Tables removed from the tree but possibly still referenced by
    /// in-flight reads; their descriptors are closed once unreferenced.
    graveyard: Vec<Arc<TableMeta>>,
}

struct WriteState {
    wal: Wal,
    next_wal_id: u64,
}

struct CompactionJob {
    upper: Vec<Arc<TableMeta>>,
    lower: Vec<Arc<TableMeta>>,
    target_level: usize, // 1-based
    is_l0: bool,
}

/// Telemetry handles mirrored by the store's internal counters once
/// [`Db::bind_telemetry`] is called.
#[derive(Debug)]
struct DbTelemetry {
    flushes: Arc<Counter>,
    compactions: Arc<Counter>,
    stall_ns: Arc<Counter>,
}

struct DbInner {
    opts: LsmOptions,
    wal: Mutex<WriteState>,
    mem: RwLock<Arc<MemTable>>,
    imm: Mutex<VecDeque<(String, Arc<MemTable>)>>,
    imm_cv: Condvar,
    levels: Mutex<Levels>,
    levels_cv: Condvar,
    manifest_lock: Mutex<()>,
    next_table_id: AtomicU64,
    stop: AtomicBool,
    // stats
    flushes: AtomicU64,
    compactions: AtomicU64,
    l0_compactions: AtomicU64,
    slowed_writes: AtomicU64,
    stopped_writes: AtomicU64,
    stall_ns: AtomicU64,
    bytes_flushed: AtomicU64,
    bytes_compacted: AtomicU64,
    telemetry: OnceLock<DbTelemetry>,
}

/// An embedded LSM key-value store running on the simulated kernel.
///
/// # Examples
///
/// ```
/// use dio_kernel::{DiskProfile, Kernel};
/// use dio_lsmkv::{Db, LsmOptions};
///
/// let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
/// let proc = kernel.spawn_process("kvstore");
/// let client = proc.spawn_thread("client");
/// let db = Db::open(&proc, LsmOptions::new("/db"))?;
///
/// db.put(&client, b"hello", b"world")?;
/// assert_eq!(db.get(&client, b"hello")?, Some(b"world".to_vec()));
/// db.shutdown(&client)?;
/// # Ok::<(), dio_kernel::Errno>(())
/// ```
pub struct Db {
    inner: Arc<DbInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("path", &self.inner.opts.db_path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Db {
    /// Opens (or recovers) a store under `opts.db_path`, spawning the
    /// flush thread and the compaction pool as threads of `process`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors during directory setup and recovery.
    pub fn open(process: &Process, opts: LsmOptions) -> SysResult<Db> {
        let setup = process.spawn_thread("rocksdb:open");
        match setup.mkdir(&opts.db_path, 0o755) {
            Ok(()) | Err(Errno::EEXIST) => {}
            Err(e) => return Err(e),
        }

        let mut mem = MemTable::new();
        let mut levels = Levels { lower: vec![Vec::new(); opts.max_levels], ..Default::default() };
        let mut next_table_id = 1u64;
        let mut next_wal_id = 1u64;

        // ---- recovery: manifest, SSTables, then WAL replay ----
        let manifest_path = format!("{}/MANIFEST", opts.db_path);
        if let Ok(lines) = read_all_lines(&setup, &manifest_path) {
            for line in lines {
                let parts: Vec<&str> = line.split(' ').collect();
                match parts.as_slice() {
                    ["next_table_id", n] => next_table_id = n.parse().unwrap_or(1),
                    ["next_wal_id", n] => next_wal_id = n.parse().unwrap_or(1),
                    ["table", level, id, size, path] => {
                        let Ok(reader) = SstReader::open(&setup, path) else {
                            continue;
                        };
                        let (Some(min), Some(max)) = (reader.min_key(), reader.max_key()) else {
                            continue;
                        };
                        let meta = Arc::new(TableMeta {
                            id: id.parse().unwrap_or(0),
                            path: (*path).to_string(),
                            size: size.parse().unwrap_or(0),
                            min: min.to_vec(),
                            max: max.to_vec(),
                            reader,
                        });
                        let level: usize = level.parse().unwrap_or(0);
                        if level == 0 {
                            levels.l0.push(meta);
                        } else if level <= levels.lower.len() {
                            levels.lower[level - 1].push(meta);
                        }
                    }
                    _ => {}
                }
            }
            levels.l0.sort_by_key(|t| std::cmp::Reverse(t.id));
            for lvl in &mut levels.lower {
                lvl.sort_by(|a, b| a.min.cmp(&b.min));
            }
        }
        // Replay any WALs left behind. The directory listing is the source
        // of truth: a crash may have left WALs the manifest never recorded.
        let mut orphan_wals: Vec<u64> = list_dir(&setup, &opts.db_path)
            .unwrap_or_default()
            .iter()
            .filter_map(|name| name.strip_prefix("wal_")?.strip_suffix(".log")?.parse::<u64>().ok())
            .collect();
        orphan_wals.sort_unstable();
        for wal_id in orphan_wals {
            let path = wal_path(&opts.db_path, wal_id);
            let _ = Wal::replay(&setup, &path, |k, v| match v {
                Some(v) => mem.put(k, v),
                None => mem.delete(k),
            });
            Wal::remove(&setup, &path)?;
            next_wal_id = next_wal_id.max(wal_id + 1);
        }

        let wal = Wal::create(&setup, wal_path(&opts.db_path, next_wal_id), opts.wal_sync_every)?;
        let compaction_threads = opts.compaction_threads;
        let inner = Arc::new(DbInner {
            opts,
            wal: Mutex::new(WriteState { wal, next_wal_id: next_wal_id + 1 }),
            mem: RwLock::new(Arc::new(mem)),
            imm: Mutex::new(VecDeque::new()),
            imm_cv: Condvar::new(),
            levels: Mutex::new(levels),
            levels_cv: Condvar::new(),
            manifest_lock: Mutex::new(()),
            next_table_id: AtomicU64::new(next_table_id),
            stop: AtomicBool::new(false),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            l0_compactions: AtomicU64::new(0),
            slowed_writes: AtomicU64::new(0),
            stopped_writes: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            bytes_flushed: AtomicU64::new(0),
            bytes_compacted: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        });

        let mut threads = Vec::new();
        {
            // The flush thread: rocksdb:high0, as in the paper.
            let inner = Arc::clone(&inner);
            let ctx = process.spawn_thread("rocksdb:high0");
            threads.push(
                std::thread::Builder::new()
                    .name("rocksdb:high0".into())
                    .spawn(move || flush_loop(&inner, &ctx))
                    .expect("spawn flush thread"),
            );
        }
        for i in 0..compaction_threads {
            let inner = Arc::clone(&inner);
            let name = format!("rocksdb:low{i}");
            let ctx = process.spawn_thread(&name);
            threads.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || compaction_loop(&inner, &ctx))
                    .expect("spawn compaction thread"),
            );
        }
        Ok(Db { inner, threads: Mutex::new(threads) })
    }

    /// Registers the store's background-activity metrics (`lsmkv.flushes`,
    /// `lsmkv.compactions`, `lsmkv.stall_ns`) with `registry`. Binding
    /// twice is a no-op.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.inner.telemetry.set(DbTelemetry {
            flushes: registry.counter("lsmkv.flushes"),
            compactions: registry.counter("lsmkv.compactions"),
            stall_ns: registry.counter("lsmkv.stall_ns"),
        });
    }

    /// Store statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let i = &self.inner;
        DbStats {
            flushes: i.flushes.load(Ordering::Relaxed),
            compactions: i.compactions.load(Ordering::Relaxed),
            l0_compactions: i.l0_compactions.load(Ordering::Relaxed),
            slowed_writes: i.slowed_writes.load(Ordering::Relaxed),
            stopped_writes: i.stopped_writes.load(Ordering::Relaxed),
            stall_ns: i.stall_ns.load(Ordering::Relaxed),
            bytes_flushed: i.bytes_flushed.load(Ordering::Relaxed),
            bytes_compacted: i.bytes_compacted.load(Ordering::Relaxed),
        }
    }

    /// Current number of L0 files (write-stall input).
    pub fn l0_files(&self) -> usize {
        self.inner.levels.lock().l0.len()
    }

    /// Table count per level, L0 first.
    pub fn level_table_counts(&self) -> Vec<usize> {
        let levels = self.inner.levels.lock();
        let mut out = vec![levels.l0.len()];
        out.extend(levels.lower.iter().map(Vec::len));
        out
    }

    /// Inserts a key/value pair, stalling in the slowdown/stop regimes.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the WAL append.
    pub fn put(&self, ctx: &ThreadCtx, key: &[u8], value: &[u8]) -> SysResult<()> {
        self.write(ctx, key, Some(value))
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// As [`Db::put`].
    pub fn delete(&self, ctx: &ThreadCtx, key: &[u8]) -> SysResult<()> {
        self.write(ctx, key, None)
    }

    fn write(&self, ctx: &ThreadCtx, key: &[u8], value: Option<&[u8]>) -> SysResult<()> {
        self.maybe_stall(ctx);
        // Writers are serialized by the WAL lock, so log order and
        // memtable apply order agree.
        let mut wal = self.inner.wal.lock();
        wal.wal.append(ctx, key, value)?;
        self.write_locked(ctx, &mut wal, key, value)
    }

    /// Applies the mutation to the current memtable and rotates when full.
    fn write_locked(
        &self,
        ctx: &ThreadCtx,
        wal: &mut WriteState,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> SysResult<()> {
        let inner = &self.inner;
        let full = {
            let mut mem_guard = inner.mem.write();
            let mem = Arc::get_mut(&mut mem_guard).map(|m| {
                match value {
                    Some(v) => m.put(key, v),
                    None => m.delete(key),
                }
                m.approx_bytes()
            });
            match mem {
                Some(bytes) => bytes >= inner.opts.memtable_bytes,
                None => {
                    // A reader holds a snapshot Arc: clone-on-write.
                    let mut cloned = MemTable::new();
                    for (k, e) in mem_guard.iter() {
                        match e {
                            Some(v) => cloned.put(k, v),
                            None => cloned.delete(k),
                        }
                    }
                    match value {
                        Some(v) => cloned.put(key, v),
                        None => cloned.delete(key),
                    }
                    let bytes = cloned.approx_bytes();
                    *mem_guard = Arc::new(cloned);
                    bytes >= inner.opts.memtable_bytes
                }
            }
        };
        if full {
            self.rotate(ctx, wal)?;
        }
        Ok(())
    }

    /// Swaps in a fresh memtable + WAL and queues the old pair for flush.
    fn rotate(&self, ctx: &ThreadCtx, wal: &mut WriteState) -> SysResult<()> {
        let inner = &self.inner;
        let new_wal_id = wal.next_wal_id;
        let new_wal =
            Wal::create(ctx, wal_path(&inner.opts.db_path, new_wal_id), inner.opts.wal_sync_every)?;
        let mut old_wal = std::mem::replace(&mut wal.wal, new_wal);
        wal.next_wal_id += 1;
        old_wal.sync(ctx)?;
        let old_path = old_wal.close(ctx)?;
        let old_mem = {
            let mut mem_guard = inner.mem.write();
            std::mem::replace(&mut *mem_guard, Arc::new(MemTable::new()))
        };
        let mut imm = inner.imm.lock();
        imm.push_back((old_path, old_mem));
        inner.imm_cv.notify_all();
        Ok(())
    }

    /// Blocks or slows the writer per the L0 triggers.
    fn maybe_stall(&self, ctx: &ThreadCtx) {
        let inner = &self.inner;
        let clock = ctx.kernel().clock().clone();
        let mut levels = inner.levels.lock();
        if levels.l0.len() >= inner.opts.l0_stop_trigger {
            inner.stopped_writes.fetch_add(1, Ordering::Relaxed);
            let start = clock.now_ns();
            while levels.l0.len() >= inner.opts.l0_stop_trigger
                && !inner.stop.load(Ordering::Acquire)
            {
                inner.levels_cv.wait_for(&mut levels, Duration::from_millis(50));
            }
            let stalled = clock.now_ns() - start;
            inner.stall_ns.fetch_add(stalled, Ordering::Relaxed);
            if let Some(t) = inner.telemetry.get() {
                t.stall_ns.add(stalled);
            }
        } else if levels.l0.len() >= inner.opts.l0_slowdown_trigger {
            inner.slowed_writes.fetch_add(1, Ordering::Relaxed);
            drop(levels);
            let pause = inner.opts.slowdown_write_ns;
            clock.sleep_ns(pause);
            inner.stall_ns.fetch_add(pause, Ordering::Relaxed);
            if let Some(t) = inner.telemetry.get() {
                t.stall_ns.add(pause);
            }
        }
    }

    /// Point lookup through memtable, immutables, L0 (newest first) and
    /// the lower levels.
    ///
    /// # Errors
    ///
    /// Propagates kernel read errors.
    pub fn get(&self, ctx: &ThreadCtx, key: &[u8]) -> SysResult<Option<Vec<u8>>> {
        let inner = &self.inner;
        {
            let mem = Arc::clone(&*inner.mem.read());
            if let Some(entry) = mem.get(key) {
                return Ok(entry.clone());
            }
        }
        {
            let imm = inner.imm.lock();
            for (_, mem) in imm.iter().rev() {
                if let Some(entry) = mem.get(key) {
                    return Ok(entry.clone());
                }
            }
        }
        let (l0, lower) = {
            let levels = inner.levels.lock();
            (levels.l0.clone(), levels.lower.clone())
        };
        for table in &l0 {
            if table.overlaps(key, key) {
                if let Some(entry) = table.reader.get(ctx, key)? {
                    return Ok(entry);
                }
            }
        }
        for level in &lower {
            // Disjoint ranges: binary search for the containing table.
            let idx = level.partition_point(|t| t.max.as_slice() < key);
            if let Some(table) = level.get(idx) {
                if table.overlaps(key, key) {
                    if let Some(entry) = table.reader.get(ctx, key)? {
                        return Ok(entry);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Range scan: up to `limit` live entries with `key >= from`, merged
    /// across all sources with correct shadowing.
    ///
    /// # Errors
    ///
    /// Propagates kernel read errors.
    pub fn scan(
        &self,
        ctx: &ThreadCtx,
        from: &[u8],
        limit: usize,
    ) -> SysResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = &self.inner;
        let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
        let (l0, lower) = {
            let levels = inner.levels.lock();
            (levels.l0.clone(), levels.lower.clone())
        };
        // Lowest precedence first: deep levels, then L0 oldest→newest,
        // then immutables oldest→newest, then the memtable.
        for level in lower.iter().rev() {
            for table in level {
                if table.max.as_slice() >= from {
                    for (k, v) in table.reader.scan_all(ctx)? {
                        if k.as_slice() >= from {
                            merged.insert(k, v);
                        }
                    }
                }
            }
        }
        for table in l0.iter().rev() {
            if table.max.as_slice() >= from {
                for (k, v) in table.reader.scan_all(ctx)? {
                    if k.as_slice() >= from {
                        merged.insert(k, v);
                    }
                }
            }
        }
        {
            let imm = inner.imm.lock();
            for (_, mem) in imm.iter() {
                for (k, v) in mem.range_from(from) {
                    merged.insert(k.clone(), v.clone());
                }
            }
        }
        {
            let mem = Arc::clone(&*inner.mem.read());
            for (k, v) in mem.range_from(from) {
                merged.insert(k.clone(), v.clone());
            }
        }
        Ok(merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).take(limit).collect())
    }

    /// Forces the current memtable to rotate and waits until every queued
    /// flush completed.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from WAL rotation.
    pub fn flush_now(&self, ctx: &ThreadCtx) -> SysResult<()> {
        {
            let mut wal = self.inner.wal.lock();
            let non_empty = !self.inner.mem.read().is_empty();
            if non_empty {
                self.rotate(ctx, &mut wal)?;
            }
        }
        let mut imm = self.inner.imm.lock();
        while !imm.is_empty() {
            self.inner.imm_cv.wait_for(&mut imm, Duration::from_millis(20));
        }
        Ok(())
    }

    /// Flushes outstanding writes, stops background threads and closes the
    /// store. The data remains recoverable via [`Db::open`].
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the final flush.
    pub fn shutdown(&self, ctx: &ThreadCtx) -> SysResult<()> {
        self.flush_now(ctx)?;
        self.inner.stop.store(true, Ordering::Release);
        self.inner.imm_cv.notify_all();
        self.inner.levels_cv.notify_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
        // Persist the final tree shape.
        write_manifest(&self.inner, ctx);
        Ok(())
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // Never fails / never blocks long: signal and detach.
        self.inner.stop.store(true, Ordering::Release);
        self.inner.imm_cv.notify_all();
        self.inner.levels_cv.notify_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn wal_path(db_path: &str, id: u64) -> String {
    format!("{db_path}/wal_{id:06}.log")
}

fn sst_path(db_path: &str, id: u64) -> String {
    format!("{db_path}/{id:06}.sst")
}

/// Lists a directory through the kernel's VFS (directory reads are not one
/// of the 42 traced syscalls, so this bypasses the syscall layer).
fn list_dir(ctx: &ThreadCtx, path: &str) -> SysResult<Vec<String>> {
    let (vfs, inner) = ctx.kernel().resolve_mount(path)?;
    let dir = vfs.lookup(&inner, true)?;
    vfs.readdir(&dir)
}

fn read_all_lines(ctx: &ThreadCtx, path: &str) -> SysResult<Vec<String>> {
    let fd = ctx.openat(path, dio_kernel::OpenFlags::RDONLY, 0)?;
    let size = ctx.fstat(fd)?.size as usize;
    let mut data = vec![0u8; size];
    let n = ctx.pread64(fd, &mut data, 0)?;
    data.truncate(n);
    ctx.close(fd)?;
    Ok(String::from_utf8_lossy(&data).lines().map(str::to_string).collect())
}

/// Serializes the level tree to `MANIFEST` (last-writer-wins snapshot).
fn write_manifest(inner: &DbInner, ctx: &ThreadCtx) {
    let _guard = inner.manifest_lock.lock();
    let mut content = String::new();
    {
        let levels = inner.levels.lock();
        content
            .push_str(&format!("next_table_id {}\n", inner.next_table_id.load(Ordering::Relaxed)));
        content.push_str(&format!("next_wal_id {}\n", inner.wal.lock().next_wal_id));
        for t in &levels.l0 {
            content.push_str(&format!("table 0 {} {} {}\n", t.id, t.size, t.path));
        }
        for (i, level) in levels.lower.iter().enumerate() {
            for t in level {
                content.push_str(&format!("table {} {} {} {}\n", i + 1, t.id, t.size, t.path));
            }
        }
    }
    let path = format!("{}/MANIFEST", inner.opts.db_path);
    let result = (|| -> SysResult<()> {
        let fd = ctx.openat(
            &path,
            dio_kernel::OpenFlags::CREAT
                | dio_kernel::OpenFlags::WRONLY
                | dio_kernel::OpenFlags::TRUNC,
            0o644,
        )?;
        ctx.write(fd, content.as_bytes())?;
        ctx.fsync(fd)?;
        ctx.close(fd)
    })();
    debug_assert!(result.is_ok(), "manifest write failed: {result:?}");
}

// ------------------------------------------------------------------ flush

fn flush_loop(inner: &Arc<DbInner>, ctx: &ThreadCtx) {
    loop {
        let job = {
            let mut imm = inner.imm.lock();
            loop {
                if let Some(front) = imm.front().cloned() {
                    break Some(front);
                }
                if inner.stop.load(Ordering::Acquire) {
                    break None;
                }
                inner.imm_cv.wait_for(&mut imm, Duration::from_millis(20));
            }
        };
        let Some((wal_file, mem)) = job else {
            return;
        };
        if flush_one(inner, ctx, &wal_file, &mem).is_ok() {
            let mut imm = inner.imm.lock();
            imm.pop_front();
            inner.imm_cv.notify_all();
        }
    }
}

fn flush_one(
    inner: &Arc<DbInner>,
    ctx: &ThreadCtx,
    wal_file: &str,
    mem: &MemTable,
) -> SysResult<()> {
    let entries: Vec<(Vec<u8>, Entry)> = mem.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    if entries.is_empty() {
        return Wal::remove(ctx, wal_file);
    }
    let id = inner.next_table_id.fetch_add(1, Ordering::Relaxed);
    let path = sst_path(&inner.opts.db_path, id);
    let size = write_sst(ctx, &path, &entries, inner.opts.bloom_bits_per_key)?;
    let reader = SstReader::open(ctx, &path)?;
    let meta = Arc::new(TableMeta {
        id,
        path,
        size,
        min: entries.first().expect("non-empty").0.clone(),
        max: entries.last().expect("non-empty").0.clone(),
        reader,
    });
    {
        let mut levels = inner.levels.lock();
        levels.l0.insert(0, meta);
    }
    inner.flushes.fetch_add(1, Ordering::Relaxed);
    inner.bytes_flushed.fetch_add(size, Ordering::Relaxed);
    if let Some(t) = inner.telemetry.get() {
        t.flushes.inc();
    }
    Wal::remove(ctx, wal_file)?;
    write_manifest(inner, ctx);
    Ok(())
}

// ------------------------------------------------------------- compaction

fn compaction_loop(inner: &Arc<DbInner>, ctx: &ThreadCtx) {
    while !inner.stop.load(Ordering::Acquire) {
        reap_graveyard(inner, ctx);
        match pick_job(inner) {
            Some(job) => {
                if let Err(e) = run_compaction(inner, ctx, job) {
                    debug_assert!(false, "compaction failed: {e}");
                }
            }
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Closes descriptors of removed tables nobody references anymore.
fn reap_graveyard(inner: &Arc<DbInner>, ctx: &ThreadCtx) {
    let dead: Vec<Arc<TableMeta>> = {
        let mut levels = inner.levels.lock();
        let (dead, alive): (Vec<_>, Vec<_>) =
            levels.graveyard.drain(..).partition(|t| Arc::strong_count(t) == 1);
        levels.graveyard = alive;
        dead
    };
    for table in dead {
        let _ = table.reader.close(ctx);
    }
}

fn pick_job(inner: &Arc<DbInner>) -> Option<CompactionJob> {
    let mut levels = inner.levels.lock();
    let opts = &inner.opts;

    // L0 -> L1, exclusive, takes every L0 file (RocksDB semantics).
    if !levels.l0_compaction_running
        && levels.l0.len() >= opts.l0_compaction_trigger
        && levels.l0.iter().all(|t| !levels.compacting.contains(&t.id))
    {
        let upper: Vec<_> = levels.l0.clone();
        let min = upper.iter().map(|t| t.min.clone()).min().expect("l0 non-empty");
        let max = upper.iter().map(|t| t.max.clone()).max().expect("l0 non-empty");
        let lower_tables: Vec<_> =
            levels.lower[0].iter().filter(|t| t.overlaps(&min, &max)).cloned().collect();
        if lower_tables.iter().all(|t| !levels.compacting.contains(&t.id)) {
            for t in upper.iter().chain(lower_tables.iter()) {
                levels.compacting.insert(t.id);
            }
            levels.l0_compaction_running = true;
            return Some(CompactionJob {
                upper,
                lower: lower_tables,
                target_level: 1,
                is_l0: true,
            });
        }
    }

    // Size-triggered compactions of L1.. (parallel).
    for lvl in 1..opts.max_levels {
        let total: u64 = levels.lower[lvl - 1].iter().map(|t| t.size).sum();
        if total <= opts.max_bytes_for_level(lvl) {
            continue;
        }
        let candidates: Vec<Arc<TableMeta>> = levels.lower[lvl - 1]
            .iter()
            .filter(|t| !levels.compacting.contains(&t.id))
            .cloned()
            .collect();
        for candidate in candidates {
            let overlaps: Vec<Arc<TableMeta>> = levels.lower[lvl]
                .iter()
                .filter(|t| t.overlaps(&candidate.min, &candidate.max))
                .cloned()
                .collect();
            if overlaps.iter().any(|t| levels.compacting.contains(&t.id)) {
                continue;
            }
            levels.compacting.insert(candidate.id);
            for t in &overlaps {
                levels.compacting.insert(t.id);
            }
            return Some(CompactionJob {
                upper: vec![candidate],
                lower: overlaps,
                target_level: lvl + 1,
                is_l0: false,
            });
        }
    }
    None
}

fn run_compaction(inner: &Arc<DbInner>, ctx: &ThreadCtx, job: CompactionJob) -> SysResult<()> {
    let opts = &inner.opts;
    // Merge with correct precedence: lower level is older, upper newer;
    // within L0, smaller id is older. Insert old→new so new wins.
    let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
    for table in &job.lower {
        for (k, v) in table.reader.scan_all(ctx)? {
            merged.insert(k, v);
        }
    }
    let mut upper_sorted: Vec<&Arc<TableMeta>> = job.upper.iter().collect();
    upper_sorted.sort_by_key(|t| t.id);
    for table in upper_sorted {
        for (k, v) in table.reader.scan_all(ctx)? {
            merged.insert(k, v);
        }
    }
    // Drop tombstones at the bottom level.
    let is_bottom = job.target_level == opts.max_levels;
    let entries: Vec<(Vec<u8>, Entry)> =
        merged.into_iter().filter(|(_, v)| !(is_bottom && v.is_none())).collect();

    // Split into target-sized output files.
    let mut outputs: Vec<Arc<TableMeta>> = Vec::new();
    let mut chunk: Vec<(Vec<u8>, Entry)> = Vec::new();
    let mut chunk_bytes = 0usize;
    let mut total_bytes = 0u64;
    let mut finalize = |chunk: &mut Vec<(Vec<u8>, Entry)>| -> SysResult<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let id = inner.next_table_id.fetch_add(1, Ordering::Relaxed);
        let path = sst_path(&opts.db_path, id);
        let entries = std::mem::take(chunk);
        let size = write_sst(ctx, &path, &entries, opts.bloom_bits_per_key)?;
        total_bytes += size;
        let reader = SstReader::open(ctx, &path)?;
        outputs.push(Arc::new(TableMeta {
            id,
            path,
            size,
            min: entries.first().expect("non-empty").0.clone(),
            max: entries.last().expect("non-empty").0.clone(),
            reader,
        }));
        Ok(())
    };
    for (k, v) in entries {
        chunk_bytes += k.len() + v.as_ref().map_or(0, Vec::len) + 16;
        chunk.push((k, v));
        if chunk_bytes >= opts.target_file_bytes {
            finalize(&mut chunk)?;
            chunk_bytes = 0;
        }
    }
    finalize(&mut chunk)?;

    // Install the result.
    {
        let mut levels = inner.levels.lock();
        let input_ids: HashSet<u64> =
            job.upper.iter().chain(job.lower.iter()).map(|t| t.id).collect();
        if job.is_l0 {
            levels.l0.retain(|t| !input_ids.contains(&t.id));
            levels.l0_compaction_running = false;
        }
        for level in &mut levels.lower {
            level.retain(|t| !input_ids.contains(&t.id));
        }
        let target = &mut levels.lower[job.target_level - 1];
        target.extend(outputs.iter().cloned());
        target.sort_by(|a, b| a.min.cmp(&b.min));
        for id in &input_ids {
            levels.compacting.remove(id);
        }
        levels.graveyard.extend(job.upper.iter().cloned().chain(job.lower.iter().cloned()));
        inner.levels_cv.notify_all();
    }
    // Unlink input files (descriptors stay valid for in-flight reads).
    for table in job.upper.iter().chain(job.lower.iter()) {
        let _ = ctx.unlink(&table.path);
    }
    inner.compactions.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = inner.telemetry.get() {
        t.compactions.inc();
    }
    if job.is_l0 {
        inner.l0_compactions.fetch_add(1, Ordering::Relaxed);
    }
    inner.bytes_compacted.fetch_add(total_bytes, Ordering::Relaxed);
    write_manifest(inner, ctx);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LsmOptions;
    use dio_kernel::{DiskProfile, Kernel};

    fn kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    fn small_opts() -> LsmOptions {
        LsmOptions {
            db_path: "/db".into(),
            memtable_bytes: 2 * 1024,
            l0_compaction_trigger: 2,
            l0_slowdown_trigger: 50,
            l0_stop_trigger: 100,
            max_levels: 3,
            l1_max_bytes: 8 * 1024,
            target_file_bytes: 4 * 1024,
            compaction_threads: 2,
            wal_sync_every: 16,
            bloom_bits_per_key: 10,
            slowdown_write_ns: 0,
        }
    }

    #[test]
    fn put_get_roundtrip_through_memtable() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let db = Db::open(&proc, small_opts()).unwrap();
        db.put(&client, b"a", b"1").unwrap();
        assert_eq!(db.get(&client, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(&client, b"missing").unwrap(), None);
        db.delete(&client, b"a").unwrap();
        assert_eq!(db.get(&client, b"a").unwrap(), None);
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn reads_after_flush_come_from_sstables() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let db = Db::open(&proc, small_opts()).unwrap();
        for i in 0..200u32 {
            db.put(&client, format!("key{i:04}").as_bytes(), &[i as u8; 32]).unwrap();
        }
        db.flush_now(&client).unwrap();
        assert!(db.stats().flushes > 0, "memtable rotated and flushed");
        for i in (0..200u32).step_by(17) {
            assert_eq!(
                db.get(&client, format!("key{i:04}").as_bytes()).unwrap(),
                Some(vec![i as u8; 32]),
                "key{i:04}"
            );
        }
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn overwrites_and_deletes_survive_flush_and_compaction() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let db = Db::open(&proc, small_opts()).unwrap();
        for round in 0..6u32 {
            for i in 0..100u32 {
                db.put(&client, format!("k{i:03}").as_bytes(), format!("r{round}-{i}").as_bytes())
                    .unwrap();
            }
            db.delete(&client, format!("k{:03}", round).as_bytes()).unwrap();
            db.flush_now(&client).unwrap();
        }
        // Wait for compactions to settle.
        std::thread::sleep(Duration::from_millis(100));
        for i in 0..100u32 {
            let got = db.get(&client, format!("k{i:03}").as_bytes()).unwrap();
            if i == 5 {
                assert_eq!(got, None, "k005 deleted in the final round");
            } else if i < 6 {
                // Deleted in round i but rewritten in every later round.
                assert_eq!(got, Some(format!("r5-{i}").into_bytes()), "k{i:03}");
            } else {
                assert_eq!(got, Some(format!("r5-{i}").into_bytes()), "k{i:03}");
            }
        }
        assert!(db.stats().compactions > 0, "compactions ran");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn scan_merges_all_sources() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let db = Db::open(&proc, small_opts()).unwrap();
        for i in 0..50u32 {
            db.put(&client, format!("s{i:03}").as_bytes(), b"old").unwrap();
        }
        db.flush_now(&client).unwrap();
        // Overwrite a few in the memtable, delete one.
        db.put(&client, b"s010", b"new").unwrap();
        db.delete(&client, b"s011").unwrap();
        let result = db.scan(&client, b"s005", 10).unwrap();
        assert_eq!(result.len(), 10);
        assert_eq!(result[0].0, b"s005");
        let as_map: std::collections::HashMap<_, _> = result.into_iter().collect();
        assert_eq!(as_map[&b"s010".to_vec()], b"new".to_vec());
        assert!(!as_map.contains_key(b"s011".as_slice()), "tombstone hides the key");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn recovery_from_wal_after_crash() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        {
            let db = Db::open(&proc, small_opts()).unwrap();
            db.put(&client, b"persist", b"me").unwrap();
            db.put(&client, b"and", b"me2").unwrap();
            // Simulated crash: drop without shutdown (WAL not flushed to SST).
            drop(db);
        }
        let db = Db::open(&proc, small_opts()).unwrap();
        assert_eq!(db.get(&client, b"persist").unwrap(), Some(b"me".to_vec()));
        assert_eq!(db.get(&client, b"and").unwrap(), Some(b"me2".to_vec()));
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn recovery_from_manifest_after_clean_shutdown() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        {
            let db = Db::open(&proc, small_opts()).unwrap();
            for i in 0..300u32 {
                db.put(&client, format!("m{i:04}").as_bytes(), &[7u8; 24]).unwrap();
            }
            db.shutdown(&client).unwrap();
        }
        let db = Db::open(&proc, small_opts()).unwrap();
        for i in (0..300u32).step_by(31) {
            assert_eq!(
                db.get(&client, format!("m{i:04}").as_bytes()).unwrap(),
                Some(vec![7u8; 24])
            );
        }
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let db = Arc::new(Db::open(&proc, small_opts()).unwrap());
        let mut handles = Vec::new();
        for w in 0..4 {
            let db = Arc::clone(&db);
            let ctx = proc.spawn_thread(format!("writer{w}"));
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    db.put(&ctx, format!("w{w}-{i:04}").as_bytes(), &[w as u8; 16]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let client = proc.spawn_thread("reader");
        for w in 0..4 {
            for i in (0..200u32).step_by(37) {
                assert_eq!(
                    db.get(&client, format!("w{w}-{i:04}").as_bytes()).unwrap(),
                    Some(vec![w as u8; 16])
                );
            }
        }
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn l0_stop_trigger_blocks_writers_until_compaction() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let opts = LsmOptions {
            l0_compaction_trigger: 2,
            l0_slowdown_trigger: 3,
            l0_stop_trigger: 4,
            memtable_bytes: 512,
            compaction_threads: 1,
            slowdown_write_ns: 10_000,
            ..small_opts()
        };
        let db = Db::open(&proc, opts).unwrap();
        // The writer races the single compaction thread for the L0 file
        // count, so a fixed put count is flaky when compaction keeps L0
        // drained; keep the storm going (bounded) until L0 backs up.
        let mut i = 0u32;
        while db.stats().slowed_writes + db.stats().stopped_writes == 0 && i < 20_000 {
            db.put(&client, format!("x{i:05}").as_bytes(), &[0u8; 64]).unwrap();
            i += 1;
        }
        db.flush_now(&client).unwrap();
        // Give the single compaction thread time to drain L0.
        for _ in 0..100 {
            if db.stats().l0_compactions > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = db.stats();
        assert!(stats.flushes > 4, "{stats:?}");
        assert!(stats.l0_compactions > 0, "L0 compactions must have run: {stats:?}");
        assert!(stats.slowed_writes + stats.stopped_writes > 0, "write stalls expected: {stats:?}");
        db.shutdown(&client).unwrap();
    }

    #[test]
    fn tombstones_dropped_at_bottom_level() {
        let k = kernel();
        let proc = k.spawn_process("kv");
        let client = proc.spawn_thread("client");
        let opts = LsmOptions { max_levels: 1, l1_max_bytes: 1 << 30, ..small_opts() };
        let db = Db::open(&proc, opts).unwrap();
        db.put(&client, b"gone", b"soon").unwrap();
        db.flush_now(&client).unwrap();
        db.delete(&client, b"gone").unwrap();
        db.flush_now(&client).unwrap();
        // Two L0 files trigger an L0->L1(bottom) compaction.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(db.get(&client, b"gone").unwrap(), None);
        let counts = db.level_table_counts();
        assert_eq!(counts[0], 0, "L0 drained: {counts:?}");
        db.shutdown(&client).unwrap();
    }
}
