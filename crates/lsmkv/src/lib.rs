#![warn(missing_docs)]

//! An LSM-tree key-value store built entirely on the simulated kernel —
//! the reproduction's stand-in for RocksDB (§III-C of the paper).
//!
//! Every byte of I/O (WAL appends, SSTable reads/writes, fsyncs, unlinks)
//! goes through [`dio_kernel::ThreadCtx`] syscalls, so DIO traces this
//! store exactly as the paper traces RocksDB. The architecture follows the
//! paper's deployment:
//!
//! * foreground client threads served in arrival order;
//! * one high-priority **flush** thread (`rocksdb:high0`);
//! * a pool of low-priority **compaction** threads (`rocksdb:low0..6`),
//!   with exclusive L0→L1 compactions and parallel lower-level ones;
//! * L0-based **write slowdown/stop triggers**, the mechanism that turns
//!   compaction backlog into client latency spikes (Fig. 3).
//!
//! Components: [`MemTable`], [`Wal`], SSTables with Bloom filters
//! ([`sstable`]), and the leveled [`Db`] engine.

mod bloom;
mod db;
mod memtable;
mod options;
pub mod sstable;
mod wal;

pub use bloom::BloomFilter;
pub use db::{Db, DbStats};
pub use memtable::{Entry, MemTable};
pub use options::LsmOptions;
pub use wal::Wal;
