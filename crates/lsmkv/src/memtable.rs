//! The in-memory write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A value or a deletion marker.
pub type Entry = Option<Vec<u8>>;

/// A sorted in-memory buffer of recent writes. `None` values are
/// tombstones (deletions that must mask older on-disk values).
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Entry>,
    approx_bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Inserts a tombstone.
    pub fn delete(&mut self, key: &[u8]) {
        self.insert(key.to_vec(), None);
    }

    fn insert(&mut self, key: Vec<u8>, entry: Entry) {
        let add = key.len() + entry.as_ref().map_or(0, Vec::len) + 16;
        if let Some(old) = self.map.insert(key, entry) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
        }
        self.approx_bytes += add;
    }

    /// Looks up a key. `Some(None)` means "deleted here" (masks lower
    /// levels); `None` means "not present in this memtable".
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Entry)> {
        self.map.iter()
    }

    /// Iterates entries with `key >= from` in key order.
    pub fn range_from<'a>(&'a self, from: &[u8]) -> impl Iterator<Item = (&'a Vec<u8>, &'a Entry)> {
        self.map.range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
    }

    /// Drains the memtable into a sorted vector (for flushing).
    pub fn into_sorted(self) -> Vec<(Vec<u8>, Entry)> {
        self.map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        assert_eq!(m.get(b"a"), Some(&Some(b"1".to_vec())));
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(&None), "tombstone, not absence");
        assert_eq!(m.get(b"zz"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_updates_size_accounting() {
        let mut m = MemTable::new();
        m.put(b"k", &[0u8; 100]);
        let after_first = m.approx_bytes();
        m.put(b"k", &[0u8; 10]);
        assert!(m.approx_bytes() < after_first + 100, "old value accounted out");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sorted_iteration() {
        let mut m = MemTable::new();
        m.put(b"c", b"3");
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        let keys: Vec<_> = m.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        let from_b: Vec<_> = m.range_from(b"b").map(|(k, _)| k.clone()).collect();
        assert_eq!(from_b.len(), 2);
    }

    #[test]
    fn into_sorted_preserves_tombstones() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.delete(b"b");
        let v = m.into_sorted();
        assert_eq!(v[0], (b"a".to_vec(), Some(b"1".to_vec())));
        assert_eq!(v[1], (b"b".to_vec(), None));
    }
}
