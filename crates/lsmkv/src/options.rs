//! Tuning options for the LSM store.

/// Configuration of an [`crate::Db`].
///
/// Defaults give a small, fast store suitable for tests; the RocksDB
/// contention experiment scales them via [`LsmOptions::benchmark_profile`].
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Directory holding WALs and SSTables (absolute, inside the simulated
    /// kernel's namespace).
    pub db_path: String,
    /// Memtable size that triggers a flush, in bytes.
    pub memtable_bytes: usize,
    /// Number of L0 files that schedules an L0→L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Number of L0 files at which writes are slowed down.
    pub l0_slowdown_trigger: usize,
    /// Number of L0 files at which writes stop until compaction catches up.
    pub l0_stop_trigger: usize,
    /// Number of levels below L0.
    pub max_levels: usize,
    /// Max total bytes of L1; each further level is 10× larger.
    pub l1_max_bytes: u64,
    /// Target SSTable file size.
    pub target_file_bytes: usize,
    /// Background compaction threads (the paper's run uses 7, named
    /// `rocksdb:low0..low6`).
    pub compaction_threads: usize,
    /// `fdatasync` the WAL every N writes (0 = never).
    pub wal_sync_every: usize,
    /// Bits per key in SSTable bloom filters.
    pub bloom_bits_per_key: usize,
    /// Pause injected per write while in the slowdown regime, nanoseconds.
    pub slowdown_write_ns: u64,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            db_path: "/db".to_string(),
            memtable_bytes: 64 * 1024,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 12,
            max_levels: 6,
            l1_max_bytes: 512 * 1024,
            target_file_bytes: 64 * 1024,
            compaction_threads: 2,
            wal_sync_every: 64,
            bloom_bits_per_key: 10,
            slowdown_write_ns: 1_000_000,
        }
    }
}

impl LsmOptions {
    /// Options with a custom database directory.
    pub fn new(db_path: impl Into<String>) -> Self {
        LsmOptions { db_path: db_path.into(), ..Default::default() }
    }

    /// The configuration used by the Fig. 3/4 reproduction: 7 compaction
    /// threads + 1 flush thread (RocksDB's `max_background_jobs = 8` split),
    /// larger memtables, and aggressive level targets so compactions churn.
    pub fn benchmark_profile(db_path: impl Into<String>) -> Self {
        LsmOptions {
            db_path: db_path.into(),
            memtable_bytes: 256 * 1024,
            l0_compaction_trigger: 8,
            l0_slowdown_trigger: 12,
            l0_stop_trigger: 20,
            max_levels: 5,
            l1_max_bytes: 512 * 1024,
            target_file_bytes: 256 * 1024,
            compaction_threads: 7,
            wal_sync_every: 64,
            bloom_bits_per_key: 10,
            slowdown_write_ns: 1_000_000,
        }
    }

    /// Maximum bytes allowed at level `level` (1-based below L0).
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        let mut max = self.l1_max_bytes;
        for _ in 1..level {
            max = max.saturating_mul(10);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_10x() {
        let o = LsmOptions::default();
        assert_eq!(o.max_bytes_for_level(1), o.l1_max_bytes);
        assert_eq!(o.max_bytes_for_level(2), o.l1_max_bytes * 10);
        assert_eq!(o.max_bytes_for_level(3), o.l1_max_bytes * 100);
    }

    #[test]
    fn benchmark_profile_matches_paper_threading() {
        let o = LsmOptions::benchmark_profile("/db");
        assert_eq!(o.compaction_threads, 7, "1 flush + 7 compactions = 8 background threads");
        assert!(o.l0_stop_trigger > o.l0_slowdown_trigger);
        assert!(o.l0_slowdown_trigger > o.l0_compaction_trigger);
    }
}
