//! SSTables: immutable sorted files with a full index and a Bloom filter.
//!
//! Layout (little-endian):
//!
//! ```text
//! [data]   per entry: u32 klen | u32 vlen (MAX = tombstone) | key | value
//! [index]  u32 count, then per entry: u32 klen | key | u64 offset | u32 vlen
//! [bloom]  BloomFilter::to_bytes
//! [footer] u64 index_off | u64 bloom_off | u32 entry_count | u32 MAGIC
//! ```
//!
//! All I/O goes through the simulated kernel's syscalls, so SSTable reads
//! and writes are visible to DIO exactly like RocksDB's are to the paper's
//! tracer.

use dio_kernel::{Errno, OpenFlags, SysResult, ThreadCtx};

use crate::bloom::BloomFilter;

const MAGIC: u32 = 0x5354_424C; // "STBL"

/// A sorted run of `(key, value-or-tombstone)` entries.
pub type SortedEntries = Vec<(Vec<u8>, Option<Vec<u8>>)>;
const TOMBSTONE: u32 = u32::MAX;
const WRITE_CHUNK: usize = 32 * 1024;

/// One key's location inside the data region.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    key: Vec<u8>,
    offset: u64,
    vlen: u32,
}

/// Writes a sorted run of entries as an SSTable; returns the file size.
///
/// # Panics
///
/// Debug-asserts that `entries` are strictly sorted by key.
///
/// # Errors
///
/// Propagates kernel errors (`ENOSPC`, ...).
pub fn write_sst(
    ctx: &ThreadCtx,
    path: &str,
    entries: &[(Vec<u8>, Option<Vec<u8>>)],
    bloom_bits_per_key: usize,
) -> SysResult<u64> {
    debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries must be sorted+unique");
    let fd = ctx.openat(path, OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::TRUNC, 0o644)?;

    let mut buf: Vec<u8> = Vec::with_capacity(WRITE_CHUNK * 2);
    let mut written = 0u64;
    let mut index: Vec<IndexEntry> = Vec::with_capacity(entries.len());
    let flush =
        |ctx: &ThreadCtx, buf: &mut Vec<u8>, written: &mut u64, force: bool| -> SysResult<()> {
            if buf.len() >= WRITE_CHUNK || (force && !buf.is_empty()) {
                ctx.write(fd, buf)?;
                *written += buf.len() as u64;
                buf.clear();
            }
            Ok(())
        };

    for (key, value) in entries {
        let offset = written + buf.len() as u64;
        let vlen = value.as_ref().map_or(TOMBSTONE, |v| v.len() as u32);
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&vlen.to_le_bytes());
        buf.extend_from_slice(key);
        if let Some(v) = value {
            buf.extend_from_slice(v);
        }
        index.push(IndexEntry { key: key.clone(), offset, vlen });
        flush(ctx, &mut buf, &mut written, false)?;
    }
    flush(ctx, &mut buf, &mut written, true)?;
    let index_off = written;

    // Index region.
    buf.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for e in &index {
        buf.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&e.key);
        buf.extend_from_slice(&e.offset.to_le_bytes());
        buf.extend_from_slice(&e.vlen.to_le_bytes());
        flush(ctx, &mut buf, &mut written, false)?;
    }
    flush(ctx, &mut buf, &mut written, true)?;
    let bloom_off = written;

    // Bloom + footer.
    let bloom = BloomFilter::build(
        entries.iter().map(|(k, _)| k.as_slice()),
        entries.len(),
        bloom_bits_per_key,
    );
    buf.extend_from_slice(&bloom.to_bytes());
    buf.extend_from_slice(&index_off.to_le_bytes());
    buf.extend_from_slice(&bloom_off.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    flush(ctx, &mut buf, &mut written, true)?;

    ctx.fsync(fd)?;
    ctx.close(fd)?;
    Ok(written)
}

/// A reader over one SSTable. Safe for concurrent use from multiple
/// threads of the owning process: lookups use positional reads only.
#[derive(Debug)]
pub struct SstReader {
    fd: i32,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    data_len: u64,
}

impl SstReader {
    /// Opens an SSTable, loading its footer, index and Bloom filter.
    ///
    /// # Errors
    ///
    /// `ENOENT` for missing files; `EIO` for corrupt footers.
    pub fn open(ctx: &ThreadCtx, path: &str) -> SysResult<SstReader> {
        let fd = ctx.openat(path, OpenFlags::RDONLY, 0)?;
        let size = ctx.fstat(fd)?.size;
        if size < 24 {
            ctx.close(fd)?;
            return Err(Errno::EIO);
        }
        let mut footer = [0u8; 24];
        ctx.pread64(fd, &mut footer, size - 24)?;
        let index_off = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let bloom_off = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let entry_count = u32::from_le_bytes(footer[16..20].try_into().expect("4 bytes"));
        let magic = u32::from_le_bytes(footer[20..24].try_into().expect("4 bytes"));
        if magic != MAGIC || index_off > bloom_off || bloom_off > size {
            ctx.close(fd)?;
            return Err(Errno::EIO);
        }

        // Load index.
        let mut index_raw = vec![0u8; (bloom_off - index_off) as usize];
        ctx.pread64(fd, &mut index_raw, index_off)?;
        let mut pos = 4usize;
        let stored_count =
            u32::from_le_bytes(index_raw.get(0..4).ok_or(Errno::EIO)?.try_into().expect("4 bytes"));
        if stored_count != entry_count {
            ctx.close(fd)?;
            return Err(Errno::EIO);
        }
        let mut index = Vec::with_capacity(entry_count as usize);
        for _ in 0..entry_count {
            let klen = u32::from_le_bytes(
                index_raw.get(pos..pos + 4).ok_or(Errno::EIO)?.try_into().expect("4 bytes"),
            ) as usize;
            pos += 4;
            let key = index_raw.get(pos..pos + klen).ok_or(Errno::EIO)?.to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(
                index_raw.get(pos..pos + 8).ok_or(Errno::EIO)?.try_into().expect("8 bytes"),
            );
            pos += 8;
            let vlen = u32::from_le_bytes(
                index_raw.get(pos..pos + 4).ok_or(Errno::EIO)?.try_into().expect("4 bytes"),
            );
            pos += 4;
            index.push(IndexEntry { key, offset, vlen });
        }

        // Load bloom.
        let mut bloom_raw = vec![0u8; (size - 24 - bloom_off) as usize];
        ctx.pread64(fd, &mut bloom_raw, bloom_off)?;
        let bloom = BloomFilter::from_bytes(&bloom_raw).ok_or(Errno::EIO)?;

        Ok(SstReader { fd, index, bloom, data_len: index_off })
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.index.first().map(|e| e.key.as_slice())
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.index.last().map(|e| e.key.as_slice())
    }

    /// Point lookup. Returns:
    /// * `None` — key not in this table,
    /// * `Some(None)` — tombstone (deleted at this table's level),
    /// * `Some(Some(value))` — present.
    ///
    /// # Errors
    ///
    /// Propagates kernel read errors.
    pub fn get(&self, ctx: &ThreadCtx, key: &[u8]) -> SysResult<Option<Option<Vec<u8>>>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Ok(idx) = self.index.binary_search_by(|e| e.key.as_slice().cmp(key)) else {
            return Ok(None);
        };
        let entry = &self.index[idx];
        if entry.vlen == TOMBSTONE {
            return Ok(Some(None));
        }
        let header = 8 + entry.key.len() as u64;
        let mut value = vec![0u8; entry.vlen as usize];
        let n = ctx.pread64(self.fd, &mut value, entry.offset + header)?;
        if n != value.len() {
            return Err(Errno::EIO);
        }
        Ok(Some(Some(value)))
    }

    /// Streams the whole data region back as sorted entries (used by
    /// compaction and scans).
    ///
    /// # Errors
    ///
    /// Propagates kernel read errors.
    pub fn scan_all(&self, ctx: &ThreadCtx) -> SysResult<SortedEntries> {
        let mut data = vec![0u8; self.data_len as usize];
        let mut read = 0usize;
        while read < data.len() {
            let chunk = (data.len() - read).min(128 * 1024);
            let n = ctx.pread64(self.fd, &mut data[read..read + chunk], read as u64)?;
            if n == 0 {
                return Err(Errno::EIO);
            }
            read += n;
        }
        let mut out = Vec::with_capacity(self.index.len());
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let vlen_raw = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            pos += 8;
            let key = data[pos..pos + klen].to_vec();
            pos += klen;
            let value = if vlen_raw == TOMBSTONE {
                None
            } else {
                let v = data[pos..pos + vlen_raw as usize].to_vec();
                pos += vlen_raw as usize;
                Some(v)
            };
            out.push((key, value));
        }
        Ok(out)
    }

    /// Closes the table's descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` if already closed.
    pub fn close(&self, ctx: &ThreadCtx) -> SysResult<()> {
        ctx.close(self.fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::{DiskProfile, Kernel};

    fn ctx() -> ThreadCtx {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        k.spawn_process("sst-test").spawn_thread("sst-test")
    }

    fn sample_entries(n: usize) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let key = format!("key{i:06}").into_bytes();
                let value = if i % 7 == 3 { None } else { Some(format!("value-{i}").into_bytes()) };
                (key, value)
            })
            .collect()
    }

    #[test]
    fn write_open_get_roundtrip() {
        let t = ctx();
        let entries = sample_entries(500);
        let size = write_sst(&t, "/t.sst", &entries, 10).unwrap();
        assert!(size > 0);
        let reader = SstReader::open(&t, "/t.sst").unwrap();
        assert_eq!(reader.len(), 500);
        assert_eq!(reader.min_key().unwrap(), b"key000000");
        assert_eq!(reader.max_key().unwrap(), b"key000499");
        for (key, value) in &entries {
            assert_eq!(reader.get(&t, key).unwrap(), Some(value.clone()), "key {key:?}");
        }
        assert_eq!(reader.get(&t, b"missing").unwrap(), None);
        reader.close(&t).unwrap();
    }

    #[test]
    fn scan_all_preserves_order_and_tombstones() {
        let t = ctx();
        let entries = sample_entries(100);
        write_sst(&t, "/s.sst", &entries, 10).unwrap();
        let reader = SstReader::open(&t, "/s.sst").unwrap();
        assert_eq!(reader.scan_all(&t).unwrap(), entries);
    }

    #[test]
    fn empty_table() {
        let t = ctx();
        write_sst(&t, "/e.sst", &[], 10).unwrap();
        let reader = SstReader::open(&t, "/e.sst").unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.min_key(), None);
        assert_eq!(reader.get(&t, b"x").unwrap(), None);
        assert!(reader.scan_all(&t).unwrap().is_empty());
    }

    #[test]
    fn corrupt_file_rejected() {
        let t = ctx();
        let fd = t.creat("/bad.sst", 0o644).unwrap();
        t.write(fd, &[0u8; 100]).unwrap();
        t.close(fd).unwrap();
        assert_eq!(SstReader::open(&t, "/bad.sst").unwrap_err(), Errno::EIO);
        let fd = t.creat("/tiny.sst", 0o644).unwrap();
        t.write(fd, b"xy").unwrap();
        t.close(fd).unwrap();
        assert_eq!(SstReader::open(&t, "/tiny.sst").unwrap_err(), Errno::EIO);
    }

    #[test]
    fn reads_are_positional_and_concurrent_safe() {
        let t = ctx();
        let entries = sample_entries(200);
        write_sst(&t, "/c.sst", &entries, 10).unwrap();
        let reader = std::sync::Arc::new(SstReader::open(&t, "/c.sst").unwrap());
        // Interleave gets out of order; positional reads must not interfere.
        for i in [199usize, 0, 100, 50, 150] {
            let key = format!("key{i:06}").into_bytes();
            assert_eq!(reader.get(&t, &key).unwrap(), Some(entries[i].1.clone()));
        }
    }

    #[test]
    fn large_values_span_write_chunks() {
        let t = ctx();
        let entries: Vec<_> = (0..4)
            .map(|i| (format!("k{i}").into_bytes(), Some(vec![i as u8; 40 * 1024])))
            .collect();
        write_sst(&t, "/big.sst", &entries, 10).unwrap();
        let reader = SstReader::open(&t, "/big.sst").unwrap();
        assert_eq!(reader.get(&t, b"k2").unwrap(), Some(Some(vec![2u8; 40 * 1024])));
    }
}
