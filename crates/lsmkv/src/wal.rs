//! The write-ahead log, persisted through the simulated kernel's syscalls.

use dio_kernel::{Errno, OpenFlags, SysResult, ThreadCtx};

/// Record header: key length + value length (`u32::MAX` marks a tombstone).
const TOMBSTONE: u32 = u32::MAX;

/// An append-only write-ahead log backing one memtable generation.
///
/// Every mutation is appended before it is applied in memory; the log is
/// deleted once its memtable is flushed into an SSTable.
#[derive(Debug)]
pub struct Wal {
    path: String,
    fd: i32,
    appended: u64,
    since_sync: usize,
    sync_every: usize,
}

impl Wal {
    /// Creates (truncating) a WAL at `path`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (`ENOENT` for a missing directory, ...).
    pub fn create(ctx: &ThreadCtx, path: impl Into<String>, sync_every: usize) -> SysResult<Wal> {
        let path = path.into();
        let fd = ctx.openat(
            &path,
            OpenFlags::CREAT | OpenFlags::WRONLY | OpenFlags::TRUNC | OpenFlags::APPEND,
            0o644,
        )?;
        Ok(Wal { path, fd, appended: 0, since_sync: 0, sync_every })
    }

    /// The log's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record (`value = None` is a tombstone), periodically
    /// issuing `fdatasync` per the configured interval.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (`ENOSPC`, `EBADF`, ...).
    pub fn append(&mut self, ctx: &ThreadCtx, key: &[u8], value: Option<&[u8]>) -> SysResult<()> {
        let vlen = value.map_or(TOMBSTONE, |v| v.len() as u32);
        let mut record = Vec::with_capacity(8 + key.len() + value.map_or(0, <[u8]>::len));
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&vlen.to_le_bytes());
        record.extend_from_slice(key);
        if let Some(v) = value {
            record.extend_from_slice(v);
        }
        ctx.write(self.fd, &record)?;
        self.appended += 1;
        self.since_sync += 1;
        if self.sync_every > 0 && self.since_sync >= self.sync_every {
            ctx.fdatasync(self.fd)?;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Forces the log to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn sync(&mut self, ctx: &ThreadCtx) -> SysResult<()> {
        ctx.fdatasync(self.fd)?;
        self.since_sync = 0;
        Ok(())
    }

    /// Closes the descriptor (the file stays on disk for recovery).
    ///
    /// # Errors
    ///
    /// `EBADF` if already closed.
    pub fn close(self, ctx: &ThreadCtx) -> SysResult<String> {
        ctx.close(self.fd)?;
        Ok(self.path)
    }

    /// Replays a WAL file, invoking `apply(key, value)` per record in
    /// append order. Returns the number of records replayed. Truncated
    /// trailing records (torn writes) are ignored, as in real recovery.
    ///
    /// # Errors
    ///
    /// `ENOENT` when the log does not exist.
    pub fn replay(
        ctx: &ThreadCtx,
        path: &str,
        mut apply: impl FnMut(&[u8], Option<&[u8]>),
    ) -> SysResult<u64> {
        let fd = ctx.openat(path, OpenFlags::RDONLY, 0)?;
        let size = ctx.fstat(fd)?.size as usize;
        let mut data = vec![0u8; size];
        let n = ctx.pread64(fd, &mut data, 0)?;
        data.truncate(n);
        ctx.close(fd)?;

        let mut pos = 0usize;
        let mut records = 0u64;
        while pos + 8 <= data.len() {
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let vlen_raw = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            pos += 8;
            let vlen = if vlen_raw == TOMBSTONE { 0 } else { vlen_raw as usize };
            if pos + klen + vlen > data.len() {
                break; // torn final record
            }
            let key = &data[pos..pos + klen];
            pos += klen;
            let value = if vlen_raw == TOMBSTONE {
                None
            } else {
                let v = &data[pos..pos + vlen];
                pos += vlen;
                Some(v)
            };
            apply(key, value);
            records += 1;
        }
        Ok(records)
    }

    /// Removes a WAL file after its memtable was flushed.
    ///
    /// # Errors
    ///
    /// `ENOENT` when the log does not exist.
    pub fn remove(ctx: &ThreadCtx, path: &str) -> SysResult<()> {
        match ctx.unlink(path) {
            Ok(()) | Err(Errno::ENOENT) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_kernel::{DiskProfile, Kernel};

    fn ctx() -> ThreadCtx {
        let k = Kernel::builder().root_disk(DiskProfile::instant()).build();
        k.spawn_process("wal-test").spawn_thread("wal-test")
    }

    #[test]
    fn append_replay_roundtrip() {
        let t = ctx();
        let mut wal = Wal::create(&t, "/wal.log", 0).unwrap();
        wal.append(&t, b"k1", Some(b"v1")).unwrap();
        wal.append(&t, b"k2", None).unwrap();
        wal.append(&t, b"k3", Some(b"")).unwrap();
        assert_eq!(wal.appended(), 3);
        wal.close(&t).unwrap();

        let mut seen = Vec::new();
        let n = Wal::replay(&t, "/wal.log", |k, v| {
            seen.push((k.to_vec(), v.map(<[u8]>::to_vec)));
        })
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(seen[0], (b"k1".to_vec(), Some(b"v1".to_vec())));
        assert_eq!(seen[1], (b"k2".to_vec(), None));
        assert_eq!(seen[2], (b"k3".to_vec(), Some(Vec::new())));
    }

    #[test]
    fn torn_final_record_is_skipped() {
        let t = ctx();
        let mut wal = Wal::create(&t, "/torn.log", 0).unwrap();
        wal.append(&t, b"good", Some(b"record")).unwrap();
        wal.close(&t).unwrap();
        // Append garbage that looks like a header but lacks the payload.
        let fd = t.openat("/torn.log", OpenFlags::WRONLY | OpenFlags::APPEND, 0).unwrap();
        t.write(fd, &[200, 0, 0, 0, 5, 0, 0, 0, b'x']).unwrap();
        t.close(fd).unwrap();
        let n = Wal::replay(&t, "/torn.log", |_, _| {}).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn periodic_sync_issues_fdatasync() {
        let t = ctx();
        let before = t.kernel().root_vfs().disk().stats().flushes;
        let mut wal = Wal::create(&t, "/s.log", 2).unwrap();
        wal.append(&t, b"a", Some(b"1")).unwrap();
        wal.append(&t, b"b", Some(b"1")).unwrap(); // triggers sync
        wal.append(&t, b"c", Some(b"1")).unwrap();
        let after = t.kernel().root_vfs().disk().stats().flushes;
        assert_eq!(after - before, 1);
        wal.sync(&t).unwrap();
        assert_eq!(t.kernel().root_vfs().disk().stats().flushes - before, 2);
    }

    #[test]
    fn remove_is_idempotent() {
        let t = ctx();
        let wal = Wal::create(&t, "/gone.log", 0).unwrap();
        wal.close(&t).unwrap();
        Wal::remove(&t, "/gone.log").unwrap();
        Wal::remove(&t, "/gone.log").unwrap(); // ENOENT swallowed
        assert!(Wal::replay(&t, "/gone.log", |_, _| {}).is_err());
    }
}
