//! The streaming directly-follows-graph miner.
//!
//! [`DfgMiner`] consumes the same parsed event documents the diagnosis
//! engine sees and maintains directly-follows graphs: nodes are the 42
//! catalog syscalls (annotated with their class), an edge `a → b` means
//! syscall `b` directly followed syscall `a` in a sequence. Three graph
//! scopes are mined at once:
//!
//! * **global** — one graph over the whole stream, sequenced per thread;
//! * **per process** — one graph per pid, sequenced per thread;
//! * **per file tag** — one graph per `dev|ino|ts` tag, sequenced by the
//!   order of operations on the tag.
//!
//! Edges carry a transition count plus two log-scale histograms: the
//! latency of the destination syscall and the inter-arrival gap between
//! the two calls. Memory is bounded everywhere: at most
//! [`ProfileConfig::top_k_edges`] edges per graph (the minimum-count edge
//! is evicted, space-saving style), at most [`ProfileConfig::max_graphs`]
//! per-process and per-tag graphs (excess keys fold into the global
//! graph), and a fixed-capacity transition ring for alert attribution.
//! Under pipeline pressure the miner degrades to 1-in-N sampling exactly
//! like the diagnosis engine does.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, OnceLock};

use dio_syscall::SyscallKind;
use dio_telemetry::{Counter, Gauge, HistogramSnapshot, MetricsRegistry, TraceSpan};
use parking_lot::Mutex;
use serde_json::{json, Value};

/// Configuration of the DFG miner (flat, so it serializes through the
/// tracer's JSON configuration file alongside `DiagnoseConfig`-style
/// blocks).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProfileConfig {
    /// Maximum edges kept per graph; beyond it the minimum-count edge is
    /// evicted (space-saving policy, counted in `dfg.edges_evicted`).
    pub top_k_edges: usize,
    /// Maximum per-process and per-file-tag graphs each; excess keys
    /// still feed the global graph (counted in `dfg.graphs_dropped`).
    pub max_graphs: usize,
    /// Pipeline pressure (0..1) beyond which mining degrades to sampling
    /// (same semantics as `DiagnoseConfig::degrade_pressure`).
    pub degrade_pressure: f64,
    /// Under degradation, mine 1 in this many events.
    pub degraded_sample_every: u64,
    /// Phase-segmentation window width (ns): dominant edge sets are
    /// compared across consecutive windows of this width.
    pub phase_window_ns: u64,
    /// Size of the dominant edge set compared across phase windows.
    pub phase_top_edges: usize,
    /// Jaccard similarity below which consecutive dominant edge sets are
    /// declared a phase shift (`kind: "phase"` document).
    pub phase_min_similarity: f64,
    /// Capacity of the transition ring backing alert attribution.
    pub ring_capacity: usize,
    /// Attribution look-back (ns) for alerts that carry no window.
    pub attribution_horizon_ns: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            top_k_edges: 32,
            max_graphs: 64,
            degrade_pressure: 0.75,
            degraded_sample_every: 16,
            phase_window_ns: 100_000_000,
            phase_top_edges: 6,
            phase_min_similarity: 0.5,
            ring_capacity: 8_192,
            attribution_horizon_ns: 1_000_000_000,
        }
    }
}

impl ProfileConfig {
    /// Sets the per-graph edge budget.
    pub fn top_k_edges(mut self, k: usize) -> Self {
        self.top_k_edges = k.max(1);
        self
    }

    /// Sets the per-scope graph budget.
    pub fn max_graphs(mut self, n: usize) -> Self {
        self.max_graphs = n;
        self
    }

    /// Sets the degradation trigger (pipeline fill fraction, 0..1).
    pub fn degrade_pressure(mut self, fraction: f64) -> Self {
        self.degrade_pressure = fraction;
        self
    }

    /// Sets the degraded sampling period (mine 1 in `n` events).
    pub fn degraded_sample_every(mut self, n: u64) -> Self {
        self.degraded_sample_every = n.max(1);
        self
    }

    /// Sets the phase-segmentation window width (ns).
    pub fn phase_window_ns(mut self, ns: u64) -> Self {
        self.phase_window_ns = ns.max(1);
        self
    }

    /// Sets the dominant edge-set size compared across phase windows.
    pub fn phase_top_edges(mut self, n: usize) -> Self {
        self.phase_top_edges = n.max(1);
        self
    }

    /// Sets the phase-shift similarity threshold.
    pub fn phase_min_similarity(mut self, s: f64) -> Self {
        self.phase_min_similarity = s;
        self
    }
}

// ---------------------------------------------------------- histograms

/// A log2-bucketed histogram over `u64` samples: 64 buckets, O(1)
/// record, `Clone + PartialEq` so graphs snapshot and compare cheaply.
/// Percentile resolution is one power of two — enough for the "which
/// edge got slow" question the DFG answers; exact latencies stay in the
/// session's main telemetry histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LogHist {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Resolves the histogram into the shared [`HistogramSnapshot`] form
    /// (the same struct the session telemetry uses), so DFG edge
    /// latencies answer arbitrary quantiles through
    /// [`HistogramSnapshot::quantile`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        if self.count == 0 {
            return HistogramSnapshot::default();
        }
        let percentile = |p: f64| -> u64 {
            let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in self.buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return (1u64 << i).clamp(self.min, self.max);
                }
            }
            self.max
        };
        HistogramSnapshot {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum as f64 / self.count as f64,
            p50: percentile(50.0),
            p90: percentile(90.0),
            p99: percentile(99.0),
            p999: percentile(99.9),
        }
    }
}

// --------------------------------------------------------------- graphs

type EdgeKey = (SyscallKind, SyscallKind);

#[derive(Debug, Clone, Default, PartialEq)]
struct Edge {
    count: u64,
    latency: LogHist,
    gap: LogHist,
}

/// One bounded directly-follows graph.
#[derive(Debug, Clone, Default, PartialEq)]
struct Graph {
    nodes: BTreeMap<SyscallKind, u64>,
    edges: BTreeMap<EdgeKey, Edge>,
    evicted: u64,
}

impl Graph {
    fn observe_node(&mut self, kind: SyscallKind) {
        *self.nodes.entry(kind).or_insert(0) += 1;
    }

    fn observe_edge(
        &mut self,
        from: SyscallKind,
        to: SyscallKind,
        gap: u64,
        lat: u64,
        top_k: usize,
    ) {
        // Known edges take the single-lookup fast path: the steady state
        // of a mined workload repeats a small set of transitions.
        if let Some(edge) = self.edges.get_mut(&(from, to)) {
            edge.count += 1;
            edge.gap.record(gap);
            edge.latency.record(lat);
            return;
        }
        if self.edges.len() >= top_k {
            // Space-saving eviction: drop the minimum-count edge (ties
            // resolve by key order, keeping eviction deterministic).
            let victim = self
                .edges
                .iter()
                .min_by_key(|(k, e)| (e.count, **k))
                .map(|(k, _)| *k)
                .expect("top_k >= 1 so a full graph has a victim");
            self.edges.remove(&victim);
            self.evicted += 1;
        }
        let edge = self.edges.entry((from, to)).or_default();
        edge.count += 1;
        edge.gap.record(gap);
        edge.latency.record(lat);
    }

    fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            nodes: self
                .nodes
                .iter()
                .map(|(k, &count)| NodeSnapshot {
                    syscall: k.name().to_string(),
                    class: k.class().to_string(),
                    count,
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|((from, to), e)| EdgeSnapshot {
                    from: from.name().to_string(),
                    to: to.name().to_string(),
                    count: e.count,
                    latency: e.latency.snapshot(),
                    gap: e.gap.snapshot(),
                })
                .collect(),
            evicted_edges: self.evicted,
        }
    }
}

/// One node of a [`GraphSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeSnapshot {
    /// Catalog syscall name.
    pub syscall: String,
    /// The syscall's class (Table I column).
    pub class: String,
    /// Occurrences mined into this graph.
    pub count: u64,
}

/// One directed edge of a [`GraphSnapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EdgeSnapshot {
    /// Source syscall.
    pub from: String,
    /// Destination syscall.
    pub to: String,
    /// Directly-follows transitions observed.
    pub count: u64,
    /// Latency of the destination call (ns), log-bucketed.
    pub latency: HistogramSnapshot,
    /// Inter-arrival gap between the two calls (ns), log-bucketed.
    pub gap: HistogramSnapshot,
}

impl EdgeSnapshot {
    /// The edge rendered `from->to`.
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// Point-in-time copy of one mined graph.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct GraphSnapshot {
    /// Nodes, in catalog order.
    pub nodes: Vec<NodeSnapshot>,
    /// Edges, ordered by (from, to).
    pub edges: Vec<EdgeSnapshot>,
    /// Edges evicted by the top-K bound over this graph's lifetime.
    pub evicted_edges: u64,
}

/// Point-in-time copy of every graph plus miner counters — the payload
/// behind `/api/dfg`, the exporters, and the `dio top` DFG panel.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DfgSnapshot {
    /// Events offered to the miner.
    pub events: u64,
    /// Events skipped by degraded (sampled) mining.
    pub sampled_out: u64,
    /// Directly-follows transitions recorded (global sequence).
    pub transitions: u64,
    /// Events whose syscall name is outside the 42-call catalog.
    pub unknown_syscalls: u64,
    /// Events routed past a full per-process/per-tag graph table.
    pub graphs_dropped: u64,
    /// Phase shifts detected so far.
    pub phase_shifts: u64,
    /// The whole-stream graph.
    pub global: GraphSnapshot,
    /// Per-process graphs, keyed `pid:proc_name`.
    pub processes: BTreeMap<String, GraphSnapshot>,
    /// Per-file-tag graphs, keyed by the `dev|ino|ts` tag.
    pub tags: BTreeMap<String, GraphSnapshot>,
}

// ---------------------------------------------------------------- miner

#[derive(Debug, Clone, Copy)]
struct Transition {
    from: SyscallKind,
    to: SyscallKind,
    pid: u64,
    time_ns: u64,
    latency_ns: u64,
}

#[derive(Debug, Default)]
struct PhaseState {
    window_start: Option<u64>,
    window_edges: BTreeMap<EdgeKey, u64>,
    prev_dominant: Option<BTreeSet<EdgeKey>>,
    shifts: u64,
}

struct ProcGraph {
    name: String,
    graph: Graph,
}

#[derive(Default)]
struct MinerInner {
    global: Graph,
    last_by_tid: BTreeMap<u64, (SyscallKind, u64)>,
    procs: BTreeMap<u64, ProcGraph>,
    tag_last: BTreeMap<String, (SyscallKind, u64)>,
    tags: BTreeMap<String, Graph>,
    ring: VecDeque<Transition>,
    phase: PhaseState,
    phase_docs: Vec<Value>,
    events: u64,
    sampled_out: u64,
    degraded_batches: u64,
    transitions: u64,
    unknown_syscalls: u64,
    graphs_dropped: u64,
    attributions: u64,
    sample_tick: u64,
}

struct DfgTelemetry {
    events: Arc<Counter>,
    sampled_out: Arc<Counter>,
    degraded_batches: Arc<Counter>,
    transitions: Arc<Counter>,
    edges_evicted: Arc<Counter>,
    graphs_dropped: Arc<Counter>,
    phase_shifts: Arc<Counter>,
    attributions: Arc<Counter>,
    edges: Arc<Gauge>,
    graphs: Arc<Gauge>,
}

/// The streaming DFG miner (see the module docs).
pub struct DfgMiner {
    config: ProfileConfig,
    inner: Mutex<MinerInner>,
    telemetry: OnceLock<DfgTelemetry>,
}

impl std::fmt::Debug for DfgMiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DfgMiner")
            .field("events", &inner.events)
            .field("transitions", &inner.transitions)
            .field("edges", &inner.global.edges.len())
            .finish()
    }
}

impl DfgMiner {
    /// Builds a miner from `config`.
    pub fn new(config: ProfileConfig) -> Arc<Self> {
        Arc::new(DfgMiner {
            config,
            inner: Mutex::new(MinerInner::default()),
            telemetry: OnceLock::new(),
        })
    }

    /// The miner's configuration.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// Registers the `dfg.*` counters and gauges with a session registry.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.telemetry.set(DfgTelemetry {
            events: registry.counter("dfg.events"),
            sampled_out: registry.counter("dfg.events.sampled_out"),
            degraded_batches: registry.counter("dfg.batches.degraded"),
            transitions: registry.counter("dfg.transitions"),
            edges_evicted: registry.counter("dfg.edges.evicted"),
            graphs_dropped: registry.counter("dfg.graphs.dropped"),
            phase_shifts: registry.counter("dfg.phase.shifts"),
            attributions: registry.counter("dfg.attributions"),
            edges: registry.gauge("dfg.edges"),
            graphs: registry.gauge("dfg.graphs"),
        });
    }

    /// Mines a batch at zero pressure (every event).
    pub fn observe_batch(&self, docs: &[Value]) {
        self.observe_batch_with_pressure(docs, 0.0);
    }

    /// Mines a batch of event documents.
    ///
    /// `pressure` is the caller's pipeline fill fraction (0..1); at or
    /// above [`ProfileConfig::degrade_pressure`] the miner samples 1 in
    /// [`ProfileConfig::degraded_sample_every`] events instead of mining
    /// all of them, so a loaded pipeline never waits on profiling.
    pub fn observe_batch_with_pressure(&self, docs: &[Value], pressure: f64) {
        if docs.is_empty() {
            return;
        }
        let degraded =
            pressure >= self.config.degrade_pressure && self.config.degraded_sample_every > 1;
        let mut inner = self.inner.lock();
        if degraded {
            inner.degraded_batches += 1;
        }
        let before_sampled = inner.sampled_out;
        let before_transitions = inner.transitions;
        let before_evicted = self.total_evicted(&inner);
        let before_dropped = inner.graphs_dropped;
        let before_shifts = inner.phase.shifts;
        for doc in docs {
            inner.events += 1;
            if degraded {
                let tick = inner.sample_tick;
                inner.sample_tick += 1;
                if !tick.is_multiple_of(self.config.degraded_sample_every) {
                    inner.sampled_out += 1;
                    continue;
                }
            }
            self.observe_locked(&mut inner, doc);
        }
        if let Some(t) = self.telemetry.get() {
            t.events.add(docs.len() as u64);
            t.sampled_out.add(inner.sampled_out - before_sampled);
            if degraded {
                t.degraded_batches.inc();
            }
            t.transitions.add(inner.transitions - before_transitions);
            t.edges_evicted.add(self.total_evicted(&inner) - before_evicted);
            t.graphs_dropped.add(inner.graphs_dropped - before_dropped);
            t.phase_shifts.add(inner.phase.shifts - before_shifts);
            t.edges.set(inner.global.edges.len() as u64);
            t.graphs.set((1 + inner.procs.len() + inner.tags.len()) as u64);
        }
    }

    fn total_evicted(&self, inner: &MinerInner) -> u64 {
        inner.global.evicted
            + inner.procs.values().map(|p| p.graph.evicted).sum::<u64>()
            + inner.tags.values().map(|g| g.evicted).sum::<u64>()
    }

    fn observe_locked(&self, inner: &mut MinerInner, doc: &Value) {
        // One ordered pass over the document instead of a map lookup per
        // field: this runs per event on the consumer path, and the field
        // extraction is most of the per-doc cost.
        let mut syscall = None;
        let mut time = 0u64;
        let mut latency = 0u64;
        let mut pid = 0u64;
        let mut tid = None;
        let mut tag = None;
        let mut proc_name = None;
        if let Some(obj) = doc.as_object() {
            for (key, value) in obj.iter() {
                match key.as_str() {
                    "syscall" => syscall = value.as_str(),
                    "time" => time = value.as_u64().unwrap_or(0),
                    "latency_ns" => latency = value.as_u64().unwrap_or(0),
                    "pid" => pid = value.as_u64().unwrap_or(0),
                    "tid" => tid = value.as_u64(),
                    "file_tag" => tag = value.as_str().filter(|t| !t.is_empty()),
                    "proc_name" => proc_name = value.as_str(),
                    _ => {}
                }
            }
        }
        let Some(kind) = syscall.and_then(|s| s.parse::<SyscallKind>().ok()) else {
            inner.unknown_syscalls += 1;
            return;
        };
        let tid = tid.unwrap_or(pid);
        let top_k = self.config.top_k_edges;

        // Global graph, sequenced per thread.
        inner.global.observe_node(kind);
        let prev = inner.last_by_tid.insert(tid, (kind, time));
        if let Some((from, from_time)) = prev {
            let gap = time.saturating_sub(from_time);
            inner.global.observe_edge(from, kind, gap, latency, top_k);
            inner.transitions += 1;
            if inner.ring.len() >= self.config.ring_capacity.max(1) {
                inner.ring.pop_front();
            }
            inner.ring.push_back(Transition {
                from,
                to: kind,
                pid,
                time_ns: time,
                latency_ns: latency,
            });
            self.phase_observe(inner, (from, kind), time);
        } else {
            // The thread's first event still opens the phase clock.
            self.phase_clock(inner, time);
        }

        // Per-process graph (same per-thread sequence, scoped to the pid).
        let max_graphs = self.config.max_graphs;
        if inner.procs.contains_key(&pid) || inner.procs.len() < max_graphs {
            let entry = inner.procs.entry(pid).or_insert_with(|| ProcGraph {
                name: proc_name.unwrap_or("?").to_string(),
                graph: Graph::default(),
            });
            entry.graph.observe_node(kind);
            if let Some((from, from_time)) = prev {
                let gap = time.saturating_sub(from_time);
                entry.graph.observe_edge(from, kind, gap, latency, top_k);
            }
        } else {
            inner.graphs_dropped += 1;
        }

        // Per-file-tag graph, sequenced by operations on the tag. Known
        // tags take the get_mut path so the steady state allocates no
        // key strings.
        let Some(tag) = tag else { return };
        let tag_prev = match inner.tag_last.get_mut(tag) {
            Some(slot) => Some(std::mem::replace(slot, (kind, time))),
            None => {
                inner.tag_last.insert(tag.to_string(), (kind, time));
                None
            }
        };
        if inner.tags.contains_key(tag) || inner.tags.len() < max_graphs {
            let graph = match inner.tags.get_mut(tag) {
                Some(graph) => graph,
                None => inner.tags.entry(tag.to_string()).or_default(),
            };
            graph.observe_node(kind);
            if let Some((from, from_time)) = tag_prev {
                let gap = time.saturating_sub(from_time);
                graph.observe_edge(from, kind, gap, latency, top_k);
            }
        } else {
            inner.graphs_dropped += 1;
            if inner.tag_last.len() > max_graphs.saturating_mul(4).max(1024) {
                // Keep the sequencing table bounded too: forget dropped
                // tags instead of tracking them forever.
                inner.tag_last.remove(tag);
            }
        }
    }

    // ------------------------------------------------------------ phases

    fn phase_clock(&self, inner: &mut MinerInner, time: u64) {
        let width = self.config.phase_window_ns.max(1);
        match inner.phase.window_start {
            None => inner.phase.window_start = Some((time / width) * width),
            Some(start) if time >= start + width => self.phase_seal(inner, time),
            Some(_) => {}
        }
    }

    fn phase_observe(&self, inner: &mut MinerInner, edge: EdgeKey, time: u64) {
        self.phase_clock(inner, time);
        *inner.phase.window_edges.entry(edge).or_insert(0) += 1;
    }

    /// Seals the current phase window: compares its dominant edge set to
    /// the previous window's and emits a `kind: "phase"` document when
    /// the sets diverge below the similarity threshold.
    fn phase_seal(&self, inner: &mut MinerInner, now: u64) {
        let width = self.config.phase_window_ns.max(1);
        let Some(start) = inner.phase.window_start else { return };
        let mut ranked: Vec<(EdgeKey, u64)> =
            inner.phase.window_edges.iter().map(|(k, &c)| (*k, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.phase_top_edges.max(1));
        let dominant: BTreeSet<EdgeKey> = ranked.iter().map(|(k, _)| *k).collect();
        if let Some(prev) = &inner.phase.prev_dominant {
            if !prev.is_empty() && !dominant.is_empty() {
                let both = prev.intersection(&dominant).count();
                let either = prev.union(&dominant).count();
                let similarity = both as f64 / either.max(1) as f64;
                if similarity < self.config.phase_min_similarity {
                    inner.phase.shifts += 1;
                    let label = |set: &BTreeSet<EdgeKey>| -> Vec<String> {
                        set.iter().map(|(a, b)| format!("{}->{}", a.name(), b.name())).collect()
                    };
                    let entered =
                        label(&dominant.difference(prev).copied().collect::<BTreeSet<_>>());
                    let left = label(&prev.difference(&dominant).copied().collect::<BTreeSet<_>>());
                    let doc = json!({
                        "kind": "phase",
                        "seq": inner.phase.shifts,
                        "time": start + width,
                        "window_start_ns": start,
                        "window_end_ns": start + width,
                        "similarity": similarity,
                        "dominant": label(&dominant),
                        "previous": label(prev),
                        "entered": entered,
                        "left": left,
                    });
                    inner.phase_docs.push(doc);
                    // Bound the unshipped phase log like the alert log.
                    if inner.phase_docs.len() > 256 {
                        inner.phase_docs.remove(0);
                    }
                }
            }
        }
        if !dominant.is_empty() {
            inner.phase.prev_dominant = Some(dominant);
        }
        inner.phase.window_edges.clear();
        inner.phase.window_start = Some((now / width) * width);
    }

    /// Seals the in-progress phase window (end of stream).
    pub fn finish(&self) {
        let mut inner = self.inner.lock();
        let width = self.config.phase_window_ns.max(1);
        if let Some(start) = inner.phase.window_start {
            self.phase_seal(&mut inner, start + width);
        }
        let shifts = inner.phase.shifts;
        drop(inner);
        if let Some(t) = self.telemetry.get() {
            let counted = t.phase_shifts.get();
            if shifts > counted {
                t.phase_shifts.add(shifts - counted);
            }
        }
    }

    /// Drains the `kind: "phase"` documents emitted since the last drain
    /// (for shipping into the session's telemetry index).
    pub fn drain_phase_docs(&self) -> Vec<Value> {
        std::mem::take(&mut self.inner.lock().phase_docs)
    }

    /// Phase shifts detected so far.
    pub fn phase_shifts(&self) -> u64 {
        self.inner.lock().phase.shifts
    }

    // ---------------------------------------------------------- snapshot

    /// A point-in-time copy of every graph plus the miner counters.
    pub fn snapshot(&self) -> DfgSnapshot {
        let inner = self.inner.lock();
        DfgSnapshot {
            events: inner.events,
            sampled_out: inner.sampled_out,
            transitions: inner.transitions,
            unknown_syscalls: inner.unknown_syscalls,
            graphs_dropped: inner.graphs_dropped,
            phase_shifts: inner.phase.shifts,
            global: inner.global.snapshot(),
            processes: inner
                .procs
                .iter()
                .map(|(pid, p)| (format!("{pid}:{}", p.name), p.graph.snapshot()))
                .collect(),
            tags: inner.tags.iter().map(|(tag, g)| (tag.clone(), g.snapshot())).collect(),
        }
    }

    // ------------------------------------------------------- attribution

    /// Computes the critical-path attribution for an alert window.
    ///
    /// The DFG delta over `[window_start, window_end]` (falling back to
    /// [`ProfileConfig::attribution_horizon_ns`] behind `time_ns` for
    /// un-windowed alerts) is read from the transition ring; the edge
    /// whose share of transition latency grew most against its full-trace
    /// baseline is named the critical edge. Flight-recorder `spans`
    /// overlapping the window are attached as corroborating evidence.
    /// Returns `None` only when the miner has seen no transitions at all.
    pub fn attribute(
        &self,
        window_start: Option<u64>,
        window_end: Option<u64>,
        time_ns: u64,
        subject: &str,
        spans: &[TraceSpan],
    ) -> Option<Value> {
        let mut inner = self.inner.lock();
        let we = window_end.unwrap_or(time_ns).max(1);
        let ws = window_start
            .unwrap_or_else(|| we.saturating_sub(self.config.attribution_horizon_ns.max(1)));
        let subject_pid: Option<u64> = subject.parse().ok();

        let in_window: Vec<Transition> = {
            let windowed =
                inner.ring.iter().filter(|t| t.time_ns >= ws && t.time_ns <= we).copied();
            match subject_pid {
                Some(pid) => {
                    let scoped: Vec<Transition> = inner
                        .ring
                        .iter()
                        .filter(|t| t.time_ns >= ws && t.time_ns <= we && t.pid == pid)
                        .copied()
                        .collect();
                    if scoped.is_empty() {
                        windowed.collect()
                    } else {
                        scoped
                    }
                }
                None => windowed.collect(),
            }
        };
        let window_hit = !in_window.is_empty();
        let candidates: Vec<Transition> = if window_hit {
            in_window
        } else {
            // Clock skew or an empty window: fall back to the ring tail,
            // the transitions leading up to the alert.
            inner.ring.iter().rev().take(256).copied().collect()
        };
        if candidates.is_empty() {
            return None;
        }

        // Window aggregation per edge.
        let mut agg: BTreeMap<EdgeKey, (u64, u64)> = BTreeMap::new();
        let mut window_total = 0u64;
        for t in &candidates {
            let slot = agg.entry((t.from, t.to)).or_insert((0, 0));
            slot.0 += 1;
            slot.1 = slot.1.saturating_add(t.latency_ns);
            window_total = window_total.saturating_add(t.latency_ns);
        }
        // Full-trace baseline shares from the global graph.
        let baseline_total: u64 =
            inner.global.edges.values().map(|e| e.latency.sum()).fold(0, u64::saturating_add);
        let share = |sum: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                sum as f64 / total as f64
            }
        };
        let (edge, (count, lat_sum), growth) = agg
            .iter()
            .map(|(k, v)| {
                let window_share = share(v.1, window_total);
                let base = inner
                    .global
                    .edges
                    .get(k)
                    .map(|e| share(e.latency.sum(), baseline_total))
                    .unwrap_or(0.0);
                (*k, *v, window_share - base)
            })
            .max_by(|a, b| {
                a.2.partial_cmp(&b.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1 .1.cmp(&b.1 .1))
                    .then(b.0.cmp(&a.0))
            })?;
        let (from, to) = edge;
        let edge_hist = inner.global.edges.get(&edge).map(|e| e.latency.snapshot());

        // Flight-recorder spans overlapping the window (or, when the
        // clocks do not line up, the most recent spans), largest first.
        let mut overlapping: Vec<&TraceSpan> =
            spans.iter().filter(|s| s.start_ns < we && s.end_ns > ws).collect();
        let spans_aligned = !overlapping.is_empty();
        if !spans_aligned {
            overlapping = spans.iter().collect();
            overlapping.sort_by_key(|s| std::cmp::Reverse(s.end_ns));
            overlapping.truncate(8);
        }
        overlapping.sort_by(|a, b| {
            (b.end_ns - b.start_ns).cmp(&(a.end_ns - a.start_ns)).then(a.name.cmp(b.name))
        });
        let span_rows: Vec<Value> = overlapping
            .iter()
            .take(3)
            .map(|s| {
                json!({
                    "name": s.name,
                    "category": s.category,
                    "trace_id": format!("{:016x}", s.trace_id),
                    "duration_ns": s.end_ns - s.start_ns,
                })
            })
            .collect();

        inner.attributions += 1;
        let phase = inner.phase.shifts;
        drop(inner);
        if let Some(t) = self.telemetry.get() {
            t.attributions.inc();
        }
        let window_share = share(lat_sum, window_total);
        Some(json!({
            "edge": format!("{}->{}", from.name(), to.name()),
            "from": from.name(),
            "to": to.name(),
            "from_class": from.class().to_string(),
            "to_class": to.class().to_string(),
            "window": { "start_ns": ws, "end_ns": we, "hit": window_hit },
            "transitions": count,
            "latency_ns": lat_sum,
            "latency_share": window_share,
            "baseline_share": window_share - growth,
            "growth": growth,
            "latency_p50_ns": edge_hist.map(|h| h.quantile(0.5)),
            "latency_p99_ns": edge_hist.map(|h| h.quantile(0.99)),
            "phase": phase,
            "spans_aligned": spans_aligned,
            "spans": span_rows,
        }))
    }

    /// Attributions computed so far.
    pub fn attributions(&self) -> u64 {
        self.inner.lock().attributions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn ev(time: u64, tid: u64, syscall: &str, latency: u64) -> Value {
        json!({
            "time": time, "pid": 1, "tid": tid, "proc_name": "app",
            "syscall": syscall, "latency_ns": latency, "ret_val": 1,
            "file_tag": "7|12|100",
        })
    }

    #[test]
    fn mines_per_thread_transitions() {
        let miner = DfgMiner::new(ProfileConfig::default());
        miner.observe_batch(&[
            ev(10, 1, "write", 100),
            ev(20, 1, "fsync", 900),
            ev(30, 2, "read", 50),
            ev(40, 1, "write", 110),
        ]);
        let snap = miner.snapshot();
        assert_eq!(snap.events, 4);
        assert_eq!(snap.transitions, 2, "tid 2's first event opens no edge");
        let labels: Vec<String> = snap.global.edges.iter().map(|e| e.label()).collect();
        assert_eq!(labels, vec!["write->fsync", "fsync->write"]);
        let wf = &snap.global.edges[0];
        assert_eq!(wf.count, 1);
        assert_eq!(wf.latency.count, 1);
        assert_eq!(wf.latency.max, 900, "edge latency is the destination call's");
        assert_eq!(wf.gap.max, 10);
    }

    #[test]
    fn tag_graphs_sequence_across_threads() {
        let miner = DfgMiner::new(ProfileConfig::default());
        miner.observe_batch(&[ev(10, 1, "write", 10), ev(20, 2, "read", 20)]);
        let snap = miner.snapshot();
        assert_eq!(snap.tags.len(), 1);
        let (tag, graph) = snap.tags.iter().next().unwrap();
        assert_eq!(tag, "7|12|100");
        assert_eq!(graph.edges.len(), 1, "tag sequence crosses threads");
        assert_eq!(graph.edges[0].label(), "write->read");
        assert!(snap.global.edges.is_empty(), "per-thread global sequence has no edge yet");
    }

    #[test]
    fn top_k_evicts_the_minimum_count_edge() {
        let miner = DfgMiner::new(ProfileConfig::default().top_k_edges(2));
        // write->fsync twice, then fsync->read once, then read->openat
        // (forces an eviction of the weakest edge).
        miner.observe_batch(&[
            ev(1, 1, "write", 1),
            ev(2, 1, "fsync", 1),
            ev(3, 1, "write", 1),
            ev(4, 1, "fsync", 1),
            ev(5, 1, "read", 1),
            ev(6, 1, "openat", 1),
        ]);
        let snap = miner.snapshot();
        assert_eq!(snap.global.edges.len(), 2);
        assert!(snap.global.evicted_edges >= 1);
        assert!(snap.global.edges.iter().any(|e| e.label() == "write->fsync"));
    }

    #[test]
    fn unknown_syscalls_are_counted_not_mined() {
        let miner = DfgMiner::new(ProfileConfig::default());
        miner.observe_batch(&[ev(1, 1, "write", 1), ev(2, 1, "notasyscall", 1)]);
        let snap = miner.snapshot();
        assert_eq!(snap.unknown_syscalls, 1);
        assert_eq!(snap.transitions, 0);
    }

    #[test]
    fn pressure_degrades_to_sampling() {
        let config = ProfileConfig::default().degrade_pressure(0.5).degraded_sample_every(4);
        let miner = DfgMiner::new(config);
        let registry = MetricsRegistry::new();
        miner.bind_telemetry(&registry);
        let docs: Vec<Value> = (0..100).map(|i| ev(i, 1, "read", 1)).collect();
        miner.observe_batch_with_pressure(&docs, 0.9);
        let snap = miner.snapshot();
        assert_eq!(snap.events, 100);
        assert_eq!(snap.sampled_out, 75, "3 of 4 skipped");
        let t = registry.snapshot();
        assert_eq!(t.counter("dfg.events.sampled_out"), 75);
        assert_eq!(t.counter("dfg.batches.degraded"), 1);
    }

    #[test]
    fn phase_shift_emits_a_typed_document() {
        let config = ProfileConfig::default()
            .phase_window_ns(1_000)
            .phase_top_edges(2)
            .phase_min_similarity(0.6);
        let miner = DfgMiner::new(config);
        // Window 0: read-heavy. Window 1: fsync/write-heavy.
        let mut docs = Vec::new();
        for i in 0..10u64 {
            docs.push(ev(i * 50, 1, if i % 2 == 0 { "read" } else { "pread64" }, 10));
        }
        for i in 0..10u64 {
            docs.push(ev(1_000 + i * 50, 1, if i % 2 == 0 { "write" } else { "fsync" }, 10));
        }
        docs.push(ev(2_500, 1, "close", 10));
        miner.observe_batch(&docs);
        assert_eq!(miner.phase_shifts(), 1, "read phase -> flush phase");
        let phases = miner.drain_phase_docs();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0]["kind"], "phase");
        assert!(phases[0]["similarity"].as_f64().unwrap() < 0.6);
        assert!(phases[0]["entered"].as_array().is_some_and(|v| !v.is_empty()));
        assert!(miner.drain_phase_docs().is_empty(), "drain clears");
    }

    #[test]
    fn attribution_names_the_grown_edge() {
        let miner = DfgMiner::new(ProfileConfig::default());
        // Baseline: cheap read->read traffic, then a slow write->fsync
        // burst inside the alert window.
        let mut docs = Vec::new();
        for i in 0..50u64 {
            docs.push(ev(i * 10, 1, "read", 100));
        }
        for i in 0..5u64 {
            docs.push(ev(10_000 + i * 20, 1, if i % 2 == 0 { "write" } else { "fsync" }, 50_000));
        }
        miner.observe_batch(&docs);
        let block = miner
            .attribute(Some(10_000), Some(11_000), 11_000, "1", &[])
            .expect("transitions exist");
        let edge = block["edge"].as_str().unwrap();
        assert!(edge == "write->fsync" || edge == "fsync->write", "got {edge}");
        assert_eq!(block["window"]["hit"], true);
        assert!(block["growth"].as_f64().unwrap() > 0.0);
        assert!(block["latency_p99_ns"].as_u64().is_some());
        assert_eq!(miner.attributions(), 1);
    }

    #[test]
    fn attribution_falls_back_to_ring_tail_outside_the_window() {
        let miner = DfgMiner::new(ProfileConfig::default());
        miner.observe_batch(&[ev(10, 1, "write", 5), ev(20, 1, "fsync", 5)]);
        let block =
            miner.attribute(Some(1_000_000), Some(2_000_000), 2_000_000, "app", &[]).unwrap();
        assert_eq!(block["window"]["hit"], false);
        assert_eq!(block["edge"], "write->fsync");
    }

    #[test]
    fn attribution_is_none_only_without_transitions() {
        let miner = DfgMiner::new(ProfileConfig::default());
        assert!(miner.attribute(None, None, 100, "x", &[]).is_none());
        miner.observe_batch(&[ev(1, 1, "read", 1)]);
        assert!(miner.attribute(None, None, 100, "x", &[]).is_none(), "one event, no edge");
    }

    #[test]
    fn loghist_snapshot_matches_quantile_contract() {
        let mut h = LogHist::default();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1024);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1024);
        assert!(s.p50 >= 1 && s.p50 <= 1024);
    }

    #[test]
    fn config_json_roundtrip() {
        let config = ProfileConfig::default().top_k_edges(8).phase_window_ns(5_000);
        let json = serde_json::to_string(&config).unwrap();
        let parsed: ProfileConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, config);
    }
}
