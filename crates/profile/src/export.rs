//! Graph exporters: Graphviz DOT, Mermaid, and JSON.
//!
//! All three render from a [`GraphSnapshot`], so anything holding a
//! snapshot — `/api/dfg`, the `exp_dfg` experiment, tests — exports
//! identically. Node fill colors encode the syscall class (Table I);
//! edge pen width scales with the transition count and the label carries
//! `count @ p50` of the destination-call latency.

use std::fmt::Write as _;

use crate::dfg::{DfgSnapshot, GraphSnapshot};

/// Graphviz fill color per syscall class.
fn class_color(class: &str) -> &'static str {
    match class {
        "data" => "#a7c7e7",
        "metadata" => "#b5e7a7",
        "extended attributes" => "#e7d7a7",
        "directory management" => "#e7a7c7",
        _ => "#dddddd",
    }
}

/// Renders nanoseconds compactly (`950ns`, `1.5us`, `2.3ms`, `1.2s`).
pub fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

/// Renders a graph as Graphviz DOT (`digraph`).
pub fn to_dot(graph: &GraphSnapshot, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dfg {{");
    let _ = writeln!(out, "  label=\"{}\";", title.replace('"', "'"));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontname=\"monospace\"];");
    for node in &graph.nodes {
        let _ = writeln!(
            out,
            "  \"{}\" [fillcolor=\"{}\", tooltip=\"{} ({}), {} calls\"];",
            node.syscall,
            class_color(&node.class),
            node.syscall,
            node.class,
            node.count
        );
    }
    let max_count = graph.edges.iter().map(|e| e.count).max().unwrap_or(1).max(1);
    for edge in &graph.edges {
        let width = 1.0 + 4.0 * edge.count as f64 / max_count as f64;
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{} @ {}\", penwidth={:.2}];",
            edge.from,
            edge.to,
            edge.count,
            format_ns(edge.latency.p50),
            width
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a graph as a Mermaid flowchart (`graph LR`).
pub fn to_mermaid(graph: &GraphSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph LR");
    for node in &graph.nodes {
        let _ = writeln!(out, "  {}[\"{} ({})\"]", node.syscall, node.syscall, node.count);
    }
    for edge in &graph.edges {
        let _ = writeln!(
            out,
            "  {} -->|\"{} @ {}\"| {}",
            edge.from,
            edge.count,
            format_ns(edge.latency.p50),
            edge.to
        );
    }
    out
}

/// Serializes a full miner snapshot as a JSON value (the `/api/dfg`
/// payload).
pub fn to_json(snapshot: &DfgSnapshot) -> serde_json::Value {
    serde_json::to_value(snapshot).expect("snapshot serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{DfgMiner, ProfileConfig};
    use serde_json::json;

    fn mined() -> DfgSnapshot {
        let miner = DfgMiner::new(ProfileConfig::default());
        miner.observe_batch(&[
            json!({"time": 10, "pid": 1, "tid": 1, "syscall": "write", "latency_ns": 100,
                   "proc_name": "app", "file_tag": "7|1|1"}),
            json!({"time": 20, "pid": 1, "tid": 1, "syscall": "fsync", "latency_ns": 900,
                   "proc_name": "app", "file_tag": "7|1|1"}),
        ]);
        miner.snapshot()
    }

    #[test]
    fn dot_is_well_formed() {
        let snap = mined();
        let dot = to_dot(&snap.global, "test session");
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("\"write\" -> \"fsync\""));
        assert!(dot.contains("label=\"1 @ 900ns\""));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn mermaid_lists_nodes_and_edges() {
        let snap = mined();
        let mermaid = to_mermaid(&snap.global);
        assert!(mermaid.starts_with("graph LR"));
        assert!(mermaid.contains("write -->"));
        assert!(mermaid.contains("| fsync"));
    }

    #[test]
    fn json_roundtrips_the_snapshot() {
        let snap = mined();
        let value = to_json(&snap);
        assert_eq!(value["transitions"], 1);
        let back: DfgSnapshot = serde_json::from_value(&value).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(format_ns(950), "950ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_300_000), "2.3ms");
        assert_eq!(format_ns(1_200_000_000), "1.2s");
    }
}
