//! dio-profile: causal I/O profiling over the traced syscall stream.
//!
//! The diagnosis layer (dio-diagnose, dio-rules) says *that* something is
//! wrong; this crate is the half that explains *why*. A streaming
//! [`DfgMiner`] consumes the same parsed event documents the diagnosis
//! engine taps and mines **directly-follows graphs** — which syscall
//! follows which, how often, and at what latency — per process, per file
//! tag, and globally, in bounded memory ("Inspection of I/O Operations
//! from System Call Traces using Directly-Follows-Graph", Sankaran et
//! al.). On top of the graphs:
//!
//! * **phase segmentation** — when the dominant edge set of one time
//!   window diverges from the previous window's (load → compaction,
//!   ingest → flush), a typed `kind: "phase"` document is emitted;
//! * **alert attribution** — when a diagnosis alert fires, the DFG delta
//!   over the alert window is intersected with the flight-recorder span
//!   rings and the edge whose latency share grew most is named in an
//!   `attribution` block on the alert (the critical transition, in the
//!   spirit of ReLayTracer's layer slicing).
//!
//! Graphs export as Graphviz DOT, Mermaid, and JSON ([`export`]), feed
//! the `/api/dfg` + `/dfg` endpoints of dio-serve and the `dio top` DFG
//! panel, and report themselves through `dfg.*` telemetry counters.
//!
//! ```
//! use dio_profile::{DfgMiner, ProfileConfig};
//! use serde_json::json;
//!
//! let miner = DfgMiner::new(ProfileConfig::default());
//! miner.observe_batch(&[
//!     json!({"time": 10, "pid": 1, "tid": 1, "syscall": "write", "latency_ns": 120}),
//!     json!({"time": 25, "pid": 1, "tid": 1, "syscall": "fsync", "latency_ns": 8_000}),
//! ]);
//! let snapshot = miner.snapshot();
//! assert_eq!(snapshot.global.edges[0].label(), "write->fsync");
//! ```

pub mod dfg;
pub mod export;

pub use dfg::{
    DfgMiner, DfgSnapshot, EdgeSnapshot, GraphSnapshot, LogHist, NodeSnapshot, ProfileConfig,
};
pub use export::{format_ns, to_dot, to_json, to_mermaid};
