#![warn(missing_docs)]

//! Trace replay: re-executes a stored DIO session against a fresh kernel.
//!
//! The paper's related work (§IV, Table III) discusses Re-Animator, a
//! "versatile high-fidelity storage-system tracing and replaying" system.
//! DIO's traces contain everything replay needs — syscall type, arguments,
//! return values, per-thread attribution, timestamps — so this crate adds
//! the replay half: it walks a session's events in time order, recreates
//! the original processes and threads, re-issues each syscall (with
//! synthetic payloads, since DIO records sizes rather than data), and
//! reports every *divergence* where the replayed return value differs from
//! the recorded one.
//!
//! Replay is useful for (a) regression-testing storage stacks against
//! recorded production behaviour, and (b) validating that a trace is
//! internally consistent — a diverging replay of an unmodified trace
//! usually means events were dropped at the ring buffer.
//!
//! # Examples
//!
//! ```
//! use dio_backend::DocStore;
//! use dio_kernel::{DiskProfile, Kernel};
//! use dio_replay::{replay_session, ReplayConfig};
//! use dio_tracer::{Tracer, TracerConfig};
//!
//! // Record...
//! let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
//! let backend = DocStore::new();
//! let tracer = Tracer::attach(TracerConfig::new("rec"), &kernel, backend.clone());
//! let t = kernel.spawn_process("app").spawn_thread("app");
//! let fd = t.creat("/f", 0o644)?;
//! t.write(fd, b"hello")?;
//! t.close(fd)?;
//! tracer.stop();
//!
//! // ...and replay against a brand-new kernel.
//! let fresh = Kernel::builder().root_disk(DiskProfile::instant()).build();
//! let report = replay_session(&backend.index("dio-rec"), &fresh, &ReplayConfig::default());
//! assert_eq!(report.events_replayed, 3);
//! assert!(report.divergences.is_empty());
//! # Ok::<(), dio_kernel::Errno>(())
//! ```

use std::collections::HashMap;

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_kernel::{Kernel, OpenFlags, ThreadCtx, Whence};
use dio_syscall::{FileType, SyscallKind};

/// Replay tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Time scaling: `0.0` replays as fast as possible; `1.0` preserves the
    /// recorded inter-event gaps; `0.1` replays 10× faster.
    pub speed: f64,
    /// Stop at the first divergence instead of collecting all of them.
    pub stop_on_divergence: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { speed: 0.0, stop_on_divergence: false }
    }
}

/// One replayed event whose outcome differed from the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Recorded entry timestamp of the event.
    pub time_ns: u64,
    /// The syscall.
    pub syscall: String,
    /// Return value in the recording.
    pub recorded_ret: i64,
    /// Return value observed during replay.
    pub replayed_ret: i64,
}

/// Outcome of a replay run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Events successfully re-issued.
    pub events_replayed: u64,
    /// Events skipped: unmappable descriptors (opened before the trace
    /// started, or their open was dropped) or unsupported forms.
    pub events_skipped: u64,
    /// Return-value mismatches between recording and replay.
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// Whether the replay reproduced every recorded outcome.
    pub fn is_faithful(&self) -> bool {
        self.divergences.is_empty() && self.events_skipped == 0
    }
}

struct ReplayState {
    threads: HashMap<(u64, u64), ThreadCtx>,
    /// (recorded pid, recorded fd) -> replayed fd.
    fd_map: HashMap<(u64, i64), i32>,
}

impl ReplayState {
    fn thread<'a>(
        &'a mut self,
        kernel: &Kernel,
        procs: &mut HashMap<u64, dio_kernel::Process>,
        pid: u64,
        tid: u64,
        comm: &str,
    ) -> &'a ThreadCtx {
        self.threads.entry((pid, tid)).or_insert_with(|| {
            let proc =
                procs.entry(pid).or_insert_with(|| kernel.spawn_process(comm.to_string())).clone();
            proc.spawn_thread(comm.to_string())
        })
    }
}

fn arg_u64(doc: &serde_json::Value, name: &str) -> Option<u64> {
    doc["args"][name].as_u64()
}

fn arg_i64(doc: &serde_json::Value, name: &str) -> Option<i64> {
    doc["args"][name].as_i64()
}

fn arg_str<'a>(doc: &'a serde_json::Value, name: &str) -> Option<&'a str> {
    doc["args"][name].as_str()
}

/// Replays every event of `index` (time-ordered) against `kernel`.
///
/// Unsupported argument shapes are counted as skipped rather than failing
/// the run, so partially-enriched traces (e.g. from the sysdig baseline)
/// degrade gracefully.
pub fn replay_session(index: &Index, kernel: &Kernel, config: &ReplayConfig) -> ReplayReport {
    let events = index.search(
        &SearchRequest::new(Query::MatchAll).sort_by("time", SortOrder::Asc).size(usize::MAX),
    );
    let mut report = ReplayReport::default();
    let mut state = ReplayState { threads: HashMap::new(), fd_map: HashMap::new() };
    let mut procs: HashMap<u64, dio_kernel::Process> = HashMap::new();
    let mut last_time: Option<u64> = None;

    for hit in &events.hits {
        let doc = &hit.source;
        let (Some(pid), Some(tid), Some(kind_name)) =
            (doc["pid"].as_u64(), doc["tid"].as_u64(), doc["syscall"].as_str())
        else {
            report.events_skipped += 1;
            continue;
        };
        let Ok(kind) = kind_name.parse::<SyscallKind>() else {
            report.events_skipped += 1;
            continue;
        };
        let comm = doc["proc_name"].as_str().unwrap_or("replayed");
        let recorded_ret = doc["ret_val"].as_i64().unwrap_or(0);
        let time_ns = doc["time"].as_u64().unwrap_or(0);

        // Pace the replay against the recorded timeline.
        if config.speed > 0.0 {
            if let Some(prev) = last_time {
                let gap = time_ns.saturating_sub(prev) as f64 * config.speed;
                kernel.clock().sleep_ns(gap as u64);
            }
        }
        last_time = Some(time_ns);

        let replayed_ret = match replay_one(
            &mut state,
            kernel,
            &mut procs,
            pid,
            tid,
            comm,
            kind,
            doc,
            recorded_ret,
        ) {
            Some(ret) => ret,
            None => {
                report.events_skipped += 1;
                continue;
            }
        };
        report.events_replayed += 1;
        if replayed_ret != recorded_ret && !ret_equivalent(kind, recorded_ret, replayed_ret) {
            report.divergences.push(Divergence {
                time_ns,
                syscall: kind_name.to_string(),
                recorded_ret,
                replayed_ret,
            });
            if config.stop_on_divergence {
                break;
            }
        }
    }
    report
}

/// File-descriptor numbers may legitimately differ between recording and
/// replay (the replayed process has a different descriptor history); an
/// open returning *some* valid fd is considered equivalent.
fn ret_equivalent(kind: SyscallKind, recorded: i64, replayed: i64) -> bool {
    matches!(kind, SyscallKind::Open | SyscallKind::Openat | SyscallKind::Creat)
        && recorded >= 0
        && replayed >= 0
}

#[allow(clippy::too_many_arguments)]
fn replay_one(
    state: &mut ReplayState,
    kernel: &Kernel,
    procs: &mut HashMap<u64, dio_kernel::Process>,
    pid: u64,
    tid: u64,
    comm: &str,
    kind: SyscallKind,
    doc: &serde_json::Value,
    recorded_ret: i64,
) -> Option<i64> {
    // Resolve the replayed thread (creating process/thread lazily).
    let ctx_key = (pid, tid);
    if !state.threads.contains_key(&ctx_key) {
        state.thread(kernel, procs, pid, tid, comm);
    }
    let translate_fd = |state: &ReplayState, doc: &serde_json::Value| -> Option<i32> {
        let fd = arg_i64(doc, "fd")?;
        state.fd_map.get(&(pid, fd)).copied()
    };
    let encode = |r: Result<i64, dio_kernel::Errno>| match r {
        Ok(v) => v,
        Err(e) => e.to_ret(),
    };
    let ctx = &state.threads[&ctx_key];

    let ret = match kind {
        SyscallKind::Open | SyscallKind::Openat | SyscallKind::Creat => {
            let path = arg_str(doc, "path")?.to_string();
            let flags = if kind == SyscallKind::Creat {
                OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC
            } else {
                OpenFlags(arg_u64(doc, "flags")? as u32)
            };
            let result = ctx.openat(&path, flags, arg_u64(doc, "mode").unwrap_or(0) as u32);
            if let Ok(new_fd) = result {
                if recorded_ret >= 0 {
                    state.fd_map.insert((pid, recorded_ret), new_fd);
                }
            }
            encode(result.map(i64::from))
        }
        SyscallKind::Close => {
            let fd = arg_i64(doc, "fd")?;
            let new_fd = state.fd_map.remove(&(pid, fd))?;
            encode(state.threads[&ctx_key].close(new_fd).map(|()| 0))
        }
        SyscallKind::Read | SyscallKind::Readv => {
            let fd = translate_fd(state, doc)?;
            let mut buf = vec![0u8; arg_u64(doc, "count")? as usize];
            encode(ctx.read(fd, &mut buf).map(|n| n as i64))
        }
        SyscallKind::Pread64 => {
            let fd = translate_fd(state, doc)?;
            let mut buf = vec![0u8; arg_u64(doc, "count")? as usize];
            encode(ctx.pread64(fd, &mut buf, arg_u64(doc, "offset")?).map(|n| n as i64))
        }
        SyscallKind::Write | SyscallKind::Writev => {
            let fd = translate_fd(state, doc)?;
            let buf = vec![0xA5u8; arg_u64(doc, "count")? as usize];
            encode(ctx.write(fd, &buf).map(|n| n as i64))
        }
        SyscallKind::Pwrite64 => {
            let fd = translate_fd(state, doc)?;
            let buf = vec![0xA5u8; arg_u64(doc, "count")? as usize];
            encode(ctx.pwrite64(fd, &buf, arg_u64(doc, "offset")?).map(|n| n as i64))
        }
        SyscallKind::Lseek => {
            let fd = translate_fd(state, doc)?;
            let whence = match arg_u64(doc, "whence")? {
                0 => Whence::Set,
                1 => Whence::Cur,
                _ => Whence::End,
            };
            encode(ctx.lseek(fd, arg_i64(doc, "offset")?, whence).map(|o| o as i64))
        }
        SyscallKind::Readahead => {
            let fd = translate_fd(state, doc)?;
            encode(
                ctx.readahead(fd, arg_u64(doc, "offset")?, arg_u64(doc, "count")? as usize)
                    .map(|()| 0),
            )
        }
        SyscallKind::Truncate => {
            encode(ctx.truncate(arg_str(doc, "path")?, arg_u64(doc, "length")?).map(|()| 0))
        }
        SyscallKind::Ftruncate => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.ftruncate(fd, arg_u64(doc, "length")?).map(|()| 0))
        }
        SyscallKind::Fsync => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fsync(fd).map(|()| 0))
        }
        SyscallKind::Fdatasync => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fdatasync(fd).map(|()| 0))
        }
        SyscallKind::Stat => encode(ctx.stat(arg_str(doc, "path")?).map(|_| 0)),
        SyscallKind::Lstat => encode(ctx.lstat(arg_str(doc, "path")?).map(|_| 0)),
        SyscallKind::Fstat => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fstat(fd).map(|_| 0))
        }
        SyscallKind::Fstatfs => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fstatfs(fd).map(|_| 0))
        }
        SyscallKind::Rename | SyscallKind::Renameat => {
            encode(ctx.rename(arg_str(doc, "oldpath")?, arg_str(doc, "newpath")?).map(|()| 0))
        }
        SyscallKind::Renameat2 => encode(
            ctx.renameat2(
                arg_str(doc, "oldpath")?,
                arg_str(doc, "newpath")?,
                arg_u64(doc, "flags")? as u32,
            )
            .map(|()| 0),
        ),
        SyscallKind::Unlink => encode(ctx.unlink(arg_str(doc, "path")?).map(|()| 0)),
        SyscallKind::Unlinkat => encode(
            ctx.unlinkat(arg_str(doc, "path")?, arg_u64(doc, "flags").unwrap_or(0) as u32)
                .map(|()| 0),
        ),
        SyscallKind::Mkdir | SyscallKind::Mkdirat => encode(
            ctx.mkdir(arg_str(doc, "path")?, arg_u64(doc, "mode").unwrap_or(0o755) as u32)
                .map(|()| 0),
        ),
        SyscallKind::Rmdir => encode(ctx.rmdir(arg_str(doc, "path")?).map(|()| 0)),
        SyscallKind::Mknod | SyscallKind::Mknodat => {
            let file_type = match arg_u64(doc, "mode")? {
                0o010000 => FileType::Pipe,
                0o020000 => FileType::CharDevice,
                0o060000 => FileType::BlockDevice,
                0o140000 => FileType::Socket,
                _ => FileType::Regular,
            };
            encode(ctx.mknod(arg_str(doc, "path")?, file_type).map(|()| 0))
        }
        SyscallKind::Setxattr | SyscallKind::Lsetxattr => {
            let value = vec![0xEEu8; arg_u64(doc, "size").unwrap_or(0) as usize];
            let path = arg_str(doc, "path")?;
            let name = arg_str(doc, "name")?;
            if kind == SyscallKind::Setxattr {
                encode(ctx.setxattr(path, name, &value).map(|()| 0))
            } else {
                encode(ctx.lsetxattr(path, name, &value).map(|()| 0))
            }
        }
        SyscallKind::Fsetxattr => {
            let fd = translate_fd(state, doc)?;
            let value = vec![0xEEu8; arg_u64(doc, "size").unwrap_or(0) as usize];
            encode(ctx.fsetxattr(fd, arg_str(doc, "name")?, &value).map(|()| 0))
        }
        SyscallKind::Getxattr => encode(
            ctx.getxattr(arg_str(doc, "path")?, arg_str(doc, "name")?).map(|v| v.len() as i64),
        ),
        SyscallKind::Lgetxattr => encode(
            ctx.lgetxattr(arg_str(doc, "path")?, arg_str(doc, "name")?).map(|v| v.len() as i64),
        ),
        SyscallKind::Fgetxattr => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fgetxattr(fd, arg_str(doc, "name")?).map(|v| v.len() as i64))
        }
        SyscallKind::Listxattr => encode(
            ctx.listxattr(arg_str(doc, "path")?)
                .map(|names| names.iter().map(|n| n.len() as i64 + 1).sum()),
        ),
        SyscallKind::Llistxattr => encode(
            ctx.llistxattr(arg_str(doc, "path")?)
                .map(|names| names.iter().map(|n| n.len() as i64 + 1).sum()),
        ),
        SyscallKind::Flistxattr => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.flistxattr(fd).map(|names| names.iter().map(|n| n.len() as i64 + 1).sum()))
        }
        SyscallKind::Removexattr => {
            encode(ctx.removexattr(arg_str(doc, "path")?, arg_str(doc, "name")?).map(|()| 0))
        }
        SyscallKind::Lremovexattr => {
            encode(ctx.lremovexattr(arg_str(doc, "path")?, arg_str(doc, "name")?).map(|()| 0))
        }
        SyscallKind::Fremovexattr => {
            let fd = translate_fd(state, doc)?;
            encode(ctx.fremovexattr(fd, arg_str(doc, "name")?).map(|()| 0))
        }
    };
    Some(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_backend::DocStore;
    use dio_kernel::DiskProfile;
    use dio_tracer::{Tracer, TracerConfig};

    fn fast_kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    /// Records `workload` under DIO and returns the session index.
    fn record(workload: impl FnOnce(&Kernel)) -> std::sync::Arc<Index> {
        let kernel = fast_kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(TracerConfig::new("rec"), &kernel, backend.clone());
        workload(&kernel);
        tracer.stop();
        backend.index("dio-rec")
    }

    #[test]
    fn faithful_replay_of_a_mixed_workload() {
        let index = record(|kernel| {
            let t = kernel.spawn_process("app").spawn_thread("app");
            t.mkdir("/d", 0o755).unwrap();
            let fd = t.openat("/d/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
            t.write(fd, b"hello world").unwrap();
            t.lseek(fd, 0, Whence::Set).unwrap();
            let mut buf = [0u8; 5];
            t.read(fd, &mut buf).unwrap();
            t.fsync(fd).unwrap();
            t.setxattr("/d/f", "user.tag", b"x").unwrap();
            t.getxattr("/d/f", "user.tag").unwrap();
            t.stat("/d/f").unwrap();
            t.close(fd).unwrap();
            t.rename("/d/f", "/d/g").unwrap();
            t.unlink("/d/g").unwrap();
            t.rmdir("/d").unwrap();
        });
        let fresh = fast_kernel();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert!(report.is_faithful(), "{report:?}");
        assert_eq!(report.events_replayed, 13);
        // The replayed kernel's state matches: everything was cleaned up.
        let t = fresh.spawn_process("check").spawn_thread("check");
        assert!(t.stat("/d").is_err());
    }

    #[test]
    fn replay_reconstructs_file_state() {
        let index = record(|kernel| {
            let t = kernel.spawn_process("app").spawn_thread("app");
            let fd = t.openat("/keep.dat", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644).unwrap();
            t.write(fd, &[1u8; 1000]).unwrap();
            t.ftruncate(fd, 400).unwrap();
            t.close(fd).unwrap();
        });
        let fresh = fast_kernel();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert!(report.is_faithful(), "{report:?}");
        let t = fresh.spawn_process("check").spawn_thread("check");
        assert_eq!(t.stat("/keep.dat").unwrap().size, 400);
    }

    #[test]
    fn errors_replay_as_the_same_errno() {
        let index = record(|kernel| {
            let t = kernel.spawn_process("app").spawn_thread("app");
            let _ = t.openat("/missing", OpenFlags::RDONLY, 0); // ENOENT
            let _ = t.unlink("/also-missing"); // ENOENT
            t.mkdir("/dup", 0o755).unwrap();
            let _ = t.mkdir("/dup", 0o755); // EEXIST
        });
        let fresh = fast_kernel();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert!(report.is_faithful(), "errnos must reproduce exactly: {report:?}");
        assert_eq!(report.events_replayed, 4);
    }

    #[test]
    fn divergence_detected_when_environment_differs() {
        let index = record(|kernel| {
            let t = kernel.spawn_process("app").spawn_thread("app");
            t.stat("/preexisting").unwrap_err(); // recorded as ENOENT
        });
        // Fresh kernel WITH the file: stat now succeeds -> divergence.
        let fresh = fast_kernel();
        let t = fresh.spawn_process("setup").spawn_thread("setup");
        t.creat("/preexisting", 0o644).unwrap();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].recorded_ret, -2);
        assert_eq!(report.divergences[0].replayed_ret, 0);
        assert!(!report.is_faithful());
    }

    #[test]
    fn unmappable_fds_are_skipped_not_fatal() {
        // Simulate a trace whose open event was dropped: a lone write on
        // an fd the replayer never saw opened.
        let index = Index::new("partial");
        index.index_doc(serde_json::json!({
            "time": 1, "pid": 9, "tid": 9, "proc_name": "app",
            "syscall": "write", "ret_val": 4, "args": {"fd": 3, "count": 4},
        }));
        let fresh = fast_kernel();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert_eq!(report.events_skipped, 1);
        assert_eq!(report.events_replayed, 0);
        assert!(report.divergences.is_empty());
    }

    #[test]
    fn multi_threaded_trace_replays_per_thread() {
        let index = record(|kernel| {
            let proc = kernel.spawn_process("app");
            let t1 = proc.spawn_thread("t1");
            let t2 = proc.spawn_thread("t2");
            let fd1 = t1.creat("/a", 0o644).unwrap();
            let fd2 = t2.creat("/b", 0o644).unwrap();
            t1.write(fd1, b"one").unwrap();
            t2.write(fd2, b"twoo").unwrap();
            t1.close(fd1).unwrap();
            t2.close(fd2).unwrap();
        });
        let fresh = fast_kernel();
        let report = replay_session(&index, &fresh, &ReplayConfig::default());
        assert!(report.is_faithful(), "{report:?}");
        let t = fresh.spawn_process("check").spawn_thread("check");
        assert_eq!(t.stat("/a").unwrap().size, 3);
        assert_eq!(t.stat("/b").unwrap().size, 4);
    }

    #[test]
    fn paced_replay_preserves_gaps() {
        let index = record(|kernel| {
            let t = kernel.spawn_process("app").spawn_thread("app");
            t.creat("/x", 0o644).unwrap();
            kernel.clock().sleep_ns(3_000_000); // 3 ms gap
            t.creat("/y", 0o644).unwrap();
        });
        let fresh = fast_kernel();
        let clock = fresh.clock().clone();
        let t0 = clock.now_ns();
        let report =
            replay_session(&index, &fresh, &ReplayConfig { speed: 1.0, stop_on_divergence: false });
        let elapsed = clock.now_ns() - t0;
        assert!(report.is_faithful());
        assert!(elapsed >= 2_500_000, "recorded gap preserved, elapsed={elapsed}ns");
    }
}
