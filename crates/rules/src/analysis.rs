//! Satisfiability analysis over rule predicates.
//!
//! The verifier proves predicates *statically empty* (can never evaluate
//! to true) or *tautological* (the negation is empty) by abstract
//! interpretation on negation normal form: numeric atoms collapse into
//! per-expression intervals, string atoms into allowed/forbidden sets and
//! prefix constraints, boolean atoms into forced values. Everything the
//! analysis cannot model becomes an *opaque* atom that is assumed
//! satisfiable — the pass only ever claims emptiness on a definite
//! contradiction, so every rejection carries a proof.
//!
//! Soundness under runtime semantics: evaluation is three-valued (a
//! missing field makes its atom *unknown*, and unknown never fires a
//! rule). Kleene evaluation is monotone — if a predicate evaluates true,
//! every two-valued completion of the unknowns is also true — so a
//! classically unsatisfiable predicate can never fire at runtime.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Expr, ExprKind};
use crate::catalog::{self, Domain, FieldTy};

/// Proves `expr` unsatisfiable, returning a human-readable proof.
pub fn prove_unsat(expr: &Expr) -> Option<String> {
    let mut vars = BTreeMap::new();
    let n = nnf(expr, false, &mut vars);
    unsat(&n, &vars)
}

/// Proves `expr` tautological (its negation is unsatisfiable).
pub fn prove_taut(expr: &Expr) -> Option<String> {
    let mut vars = BTreeMap::new();
    let n = nnf(expr, true, &mut vars);
    unsat(&n, &vars)
}

/// Domain facts known about one analysis variable.
#[derive(Debug, Clone, Default)]
struct VarInfo {
    lo: Option<f64>,
    hi: Option<f64>,
    domain: Option<Domain>,
}

/// Negation normal form with typed leaf atoms.
enum NExpr {
    And(Vec<NExpr>),
    Or(Vec<NExpr>),
    Atom(Atom),
}

/// Comparison operators surviving into atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn of(op: BinOp) -> Option<Cmp> {
        Some(match op {
            BinOp::Eq => Cmp::Eq,
            BinOp::Ne => Cmp::Ne,
            BinOp::Lt => Cmp::Lt,
            BinOp::Le => Cmp::Le,
            BinOp::Gt => Cmp::Gt,
            BinOp::Ge => Cmp::Ge,
            _ => return None,
        })
    }

    fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }

    fn flip(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
            other => other,
        }
    }

    fn eval(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// One analyzable constraint (leaf of the NNF tree).
enum Atom {
    /// `var op constant`.
    Num { var: String, op: Cmp, val: f64, src: String },
    /// `var == value` (or `!=` when negated).
    StrEq { var: String, val: String, neg: bool, src: String },
    /// `var in (values)` (or negated).
    StrIn { var: String, vals: Vec<String>, neg: bool, src: String },
    /// `var starts_with prefix` (or negated).
    Prefix { var: String, prefix: String, neg: bool, src: String },
    /// A boolean atom forced to a value (`first_read`, `follows(x)`).
    BoolIs { var: String, val: bool, src: String },
    /// A constant truth value (both sides folded).
    Const { val: bool, src: String },
    /// Beyond the abstraction; assumed satisfiable either way.
    Opaque,
}

/// Constant-folds a numeric expression (durations fold to nanoseconds).
fn const_num(e: &Expr) -> Option<f64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v as f64),
        ExprKind::Float(v) => Some(*v),
        ExprKind::Dur(d) => Some(d.as_ns() as f64),
        ExprKind::Neg(inner) => const_num(inner).map(|v| -v),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (const_num(lhs)?, const_num(rhs)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div if b != 0.0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

fn const_str(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Str(s) => Some(s),
        _ => None,
    }
}

/// Registers domain facts for a variable expression and returns its key.
fn var_key(e: &Expr, vars: &mut BTreeMap<String, VarInfo>) -> String {
    let key = e.to_string();
    let info = vars.entry(key.clone()).or_default();
    apply_domain_facts(e, info);
    key
}

fn apply_domain_facts(e: &Expr, info: &mut VarInfo) {
    match &e.kind {
        ExprKind::Ident(name) => {
            if let Some(field) = catalog::field(name) {
                if matches!(field.ty, FieldTy::UInt | FieldTy::Ns) {
                    info.lo = Some(0.0);
                }
                info.domain = field.domain;
            } else {
                match name.as_str() {
                    // 1-based reuse-generation index.
                    "generation" => info.lo = Some(1.0),
                    "count" | "errors" | "rate" => info.lo = Some(0.0),
                    "error_fraction" => {
                        info.lo = Some(0.0);
                        info.hi = Some(1.0);
                    }
                    _ => {}
                }
            }
        }
        ExprKind::Call { name, args } => match name.as_str() {
            "count" | "errors" | "rate" | "distinct" => info.lo = Some(0.0),
            "error_fraction" => {
                info.lo = Some(0.0);
                info.hi = Some(1.0);
            }
            "p50" | "p95" | "p99" => {
                if let Some(ExprKind::Ident(f)) = args.first().map(|a| &a.kind) {
                    if let Some(field) = catalog::field(f) {
                        if matches!(field.ty, FieldTy::UInt | FieldTy::Ns) {
                            info.lo = Some(0.0);
                        }
                    }
                }
            }
            "baseline" | "mean_when" => {
                if let Some(inner) = args.first() {
                    apply_domain_facts(inner, info);
                }
            }
            _ => {}
        },
        _ => {}
    }
}

/// Renders the source form of an atom, with applied negation.
fn src_of(e: &Expr, neg: bool) -> String {
    if neg {
        format!("not ({e})")
    } else {
        e.to_string()
    }
}

/// Converts to negation normal form, pushing `neg` inward.
fn nnf(e: &Expr, neg: bool, vars: &mut BTreeMap<String, VarInfo>) -> NExpr {
    match &e.kind {
        ExprKind::Not(inner) => nnf(inner, !neg, vars),
        ExprKind::Binary { op: BinOp::And, lhs, rhs } => {
            let (a, b) = (nnf(lhs, neg, vars), nnf(rhs, neg, vars));
            if neg {
                NExpr::Or(vec![a, b])
            } else {
                NExpr::And(vec![a, b])
            }
        }
        ExprKind::Binary { op: BinOp::Or, lhs, rhs } => {
            let (a, b) = (nnf(lhs, neg, vars), nnf(rhs, neg, vars));
            if neg {
                NExpr::And(vec![a, b])
            } else {
                NExpr::Or(vec![a, b])
            }
        }
        ExprKind::Binary { op, lhs, rhs } if op.is_cmp() => {
            let Some(mut cmp) = Cmp::of(*op) else { return NExpr::Atom(Atom::Opaque) };
            if neg {
                cmp = cmp.negate();
            }
            let src = src_of(e, neg);
            // Numeric: constant on either side.
            match (const_num(lhs), const_num(rhs)) {
                (Some(a), Some(b)) => {
                    return NExpr::Atom(Atom::Const { val: cmp.eval(a, b), src });
                }
                (None, Some(val)) if const_str(lhs).is_none() => {
                    let var = var_key(lhs, vars);
                    return NExpr::Atom(Atom::Num { var, op: cmp, val, src });
                }
                (Some(val), None) if const_str(rhs).is_none() => {
                    let var = var_key(rhs, vars);
                    return NExpr::Atom(Atom::Num { var, op: cmp.flip(), val, src });
                }
                _ => {}
            }
            // String equality with a literal on one side.
            if matches!(cmp, Cmp::Eq | Cmp::Ne) {
                let (var_e, lit) = match (const_str(lhs), const_str(rhs)) {
                    (None, Some(s)) => (Some(&**lhs), Some(s)),
                    (Some(s), None) => (Some(&**rhs), Some(s)),
                    (Some(a), Some(b)) => {
                        let val = if cmp == Cmp::Eq { a == b } else { a != b };
                        return NExpr::Atom(Atom::Const { val, src });
                    }
                    _ => (None, None),
                };
                if let (Some(var_e), Some(lit)) = (var_e, lit) {
                    let var = var_key(var_e, vars);
                    return NExpr::Atom(Atom::StrEq {
                        var,
                        val: lit.to_string(),
                        neg: cmp == Cmp::Ne,
                        src,
                    });
                }
            }
            NExpr::Atom(Atom::Opaque)
        }
        ExprKind::In { lhs, items } => {
            let src = src_of(e, neg);
            if let Some(s) = const_str(lhs) {
                let member = items.iter().any(|i| i == s);
                return NExpr::Atom(Atom::Const { val: member != neg, src });
            }
            let var = var_key(lhs, vars);
            NExpr::Atom(Atom::StrIn { var, vals: items.clone(), neg, src })
        }
        ExprKind::StartsWith { lhs, prefix } => {
            let src = src_of(e, neg);
            if let Some(s) = const_str(lhs) {
                return NExpr::Atom(Atom::Const {
                    val: s.starts_with(prefix.as_str()) != neg,
                    src,
                });
            }
            let var = var_key(lhs, vars);
            NExpr::Atom(Atom::Prefix { var, prefix: prefix.clone(), neg, src })
        }
        ExprKind::Ident(_) | ExprKind::Call { .. } => {
            // A bare boolean atom (`first_read`, `follows(write)`).
            let src = src_of(e, neg);
            let var = var_key(e, vars);
            NExpr::Atom(Atom::BoolIs { var, val: !neg, src })
        }
        _ => NExpr::Atom(Atom::Opaque),
    }
}

// ------------------------------------------------------------------ solver

/// One directed numeric bound with its provenance.
#[derive(Debug, Clone)]
struct Bound {
    val: f64,
    strict: bool,
    src: String,
}

/// Accumulated constraints for one variable inside a conjunction.
#[derive(Default)]
struct VarState {
    lo: Option<Bound>,
    hi: Option<Bound>,
    ne: Vec<(f64, String)>,
    allowed: Option<(BTreeSet<String>, String)>,
    forbidden: Vec<(String, String)>,
    req_prefixes: Vec<(String, String)>,
    forb_prefixes: Vec<(String, String)>,
    bool_true: Option<String>,
    bool_false: Option<String>,
}

/// Checks an NNF tree for definite unsatisfiability.
fn unsat(n: &NExpr, vars: &BTreeMap<String, VarInfo>) -> Option<String> {
    match n {
        NExpr::Or(children) => {
            let mut proofs = Vec::new();
            for c in children {
                proofs.push(unsat(c, vars)?);
            }
            proofs.dedup();
            Some(format!("every branch is empty: {}", proofs.join("; ")))
        }
        NExpr::And(_) | NExpr::Atom(_) => {
            // Flatten the conjunction; nested Or children are checked
            // recursively (a definitely-empty disjunct empties the whole
            // conjunction).
            let mut atoms = Vec::new();
            let mut stack = vec![n];
            while let Some(cur) = stack.pop() {
                match cur {
                    NExpr::And(cs) => stack.extend(cs.iter()),
                    NExpr::Or(_) => {
                        if let Some(proof) = unsat(cur, vars) {
                            return Some(proof);
                        }
                    }
                    NExpr::Atom(a) => atoms.push(a),
                }
            }
            solve_conjunction(&atoms, vars)
        }
    }
}

fn solve_conjunction(atoms: &[&Atom], vars: &BTreeMap<String, VarInfo>) -> Option<String> {
    let mut states: BTreeMap<&str, VarState> = BTreeMap::new();
    // Seed domain facts.
    for (var, info) in vars {
        let state = states.entry(var.as_str()).or_default();
        if let Some(lo) = info.lo {
            state.lo =
                Some(Bound { val: lo, strict: false, src: format!("`{var}` is at least {lo}") });
        }
        if let Some(hi) = info.hi {
            state.hi =
                Some(Bound { val: hi, strict: false, src: format!("`{var}` is at most {hi}") });
        }
    }
    for atom in atoms {
        match atom {
            Atom::Const { val: false, src } => {
                return Some(format!("`{src}` is constantly false"));
            }
            Atom::Const { .. } | Atom::Opaque => {}
            Atom::Num { var, op, val, src } => {
                let state = states.entry(var.as_str()).or_default();
                match op {
                    Cmp::Eq => {
                        tighten_lo(state, *val, false, src);
                        tighten_hi(state, *val, false, src);
                    }
                    Cmp::Ne => state.ne.push((*val, src.clone())),
                    Cmp::Lt => tighten_hi(state, *val, true, src),
                    Cmp::Le => tighten_hi(state, *val, false, src),
                    Cmp::Gt => tighten_lo(state, *val, true, src),
                    Cmp::Ge => tighten_lo(state, *val, false, src),
                }
            }
            Atom::StrEq { var, val, neg, src } => {
                let state = states.entry(var.as_str()).or_default();
                if *neg {
                    state.forbidden.push((val.clone(), src.clone()));
                } else {
                    intersect_allowed(state, std::iter::once(val.clone()).collect(), src);
                }
            }
            Atom::StrIn { var, vals, neg, src } => {
                let state = states.entry(var.as_str()).or_default();
                if *neg {
                    state.forbidden.extend(vals.iter().map(|v| (v.clone(), src.clone())));
                } else {
                    intersect_allowed(state, vals.iter().cloned().collect(), src);
                }
            }
            Atom::Prefix { var, prefix, neg, src } => {
                let state = states.entry(var.as_str()).or_default();
                if *neg {
                    state.forb_prefixes.push((prefix.clone(), src.clone()));
                } else {
                    state.req_prefixes.push((prefix.clone(), src.clone()));
                }
            }
            Atom::BoolIs { var, val, src } => {
                let state = states.entry(var.as_str()).or_default();
                let slot = if *val { &mut state.bool_true } else { &mut state.bool_false };
                if slot.is_none() {
                    *slot = Some(src.clone());
                }
            }
        }
    }
    for (var, state) in &states {
        if let Some(proof) = check_var(var, state, vars.get(*var)) {
            return Some(proof);
        }
    }
    None
}

fn tighten_lo(state: &mut VarState, val: f64, strict: bool, src: &str) {
    let better = match &state.lo {
        None => true,
        Some(b) => val > b.val || (val == b.val && strict && !b.strict),
    };
    if better {
        state.lo = Some(Bound { val, strict, src: src.to_string() });
    }
}

fn tighten_hi(state: &mut VarState, val: f64, strict: bool, src: &str) {
    let better = match &state.hi {
        None => true,
        Some(b) => val < b.val || (val == b.val && strict && !b.strict),
    };
    if better {
        state.hi = Some(Bound { val, strict, src: src.to_string() });
    }
}

fn intersect_allowed(state: &mut VarState, vals: BTreeSet<String>, src: &str) {
    match &mut state.allowed {
        None => state.allowed = Some((vals, src.to_string())),
        Some((cur, cur_src)) => {
            cur.retain(|v| vals.contains(v));
            *cur_src = format!("{cur_src}` and `{src}");
        }
    }
}

fn check_var(var: &str, state: &VarState, info: Option<&VarInfo>) -> Option<String> {
    // Numeric interval emptiness.
    if let (Some(lo), Some(hi)) = (&state.lo, &state.hi) {
        if lo.val > hi.val || (lo.val == hi.val && (lo.strict || hi.strict)) {
            return Some(format!("`{}` contradicts `{}` on `{var}`", lo.src, hi.src));
        }
        // A point interval punctured by `!=`.
        if lo.val == hi.val {
            for (ne, ne_src) in &state.ne {
                if *ne == lo.val {
                    return Some(format!(
                        "`{}` pins `{var}` to {} but `{}` excludes it",
                        lo.src, lo.val, ne_src
                    ));
                }
            }
        }
    }
    // Boolean atom forced both ways.
    if let (Some(t), Some(f)) = (&state.bool_true, &state.bool_false) {
        return Some(format!("`{t}` contradicts `{f}`"));
    }
    // Required prefixes must nest.
    for (p, p_src) in &state.req_prefixes {
        for (q, q_src) in &state.req_prefixes {
            if !p.starts_with(q.as_str()) && !q.starts_with(p.as_str()) {
                return Some(format!(
                    "`{p_src}` contradicts `{q_src}`: no string starts with both"
                ));
            }
        }
        for (q, q_src) in &state.forb_prefixes {
            if p.starts_with(q.as_str()) {
                return Some(format!(
                    "`{p_src}` contradicts `{q_src}`: every `{p}…` string also starts with `{q}`"
                ));
            }
        }
    }
    // Candidate-set exhaustion: explicit allowed set, or the field's
    // finite enum domain.
    let candidates: Option<(Vec<String>, String)> = match &state.allowed {
        Some((set, src)) => Some((set.iter().cloned().collect(), src.clone())),
        None => info.and_then(|i| i.domain).and_then(|d| {
            // Only worth scanning when something constrains the values.
            if state.req_prefixes.is_empty()
                && state.forb_prefixes.is_empty()
                && state.forbidden.is_empty()
            {
                None
            } else {
                Some((
                    d.members().into_iter().map(str::to_string).collect(),
                    format!("`{var}` ranges over {}", d.describe()),
                ))
            }
        }),
    };
    if let Some((candidates, src)) = candidates {
        let survives = candidates.iter().any(|c| {
            state.forbidden.iter().all(|(f, _)| f != c)
                && state.req_prefixes.iter().all(|(p, _)| c.starts_with(p.as_str()))
                && state.forb_prefixes.iter().all(|(p, _)| !c.starts_with(p.as_str()))
        });
        if !survives {
            let others: Vec<&str> = state
                .forbidden
                .iter()
                .map(|(_, s)| s.as_str())
                .chain(state.req_prefixes.iter().map(|(_, s)| s.as_str()))
                .chain(state.forb_prefixes.iter().map(|(_, s)| s.as_str()))
                .collect();
            let constraint = if others.is_empty() {
                "no candidate value survives".to_string()
            } else {
                format!("no value satisfies `{}`", others.join("` and `"))
            };
            return Some(format!("{src} leaves `{var}` empty: {constraint}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn unsat_of(src: &str) -> Option<String> {
        prove_unsat(&parse_expr(src).unwrap())
    }

    fn taut_of(src: &str) -> Option<String> {
        prove_taut(&parse_expr(src).unwrap())
    }

    #[test]
    fn interval_contradictions_are_proven() {
        assert!(unsat_of("offset > 10 and offset < 5").is_some());
        assert!(unsat_of("offset > 0 and offset == 0").is_some());
        assert!(unsat_of("ret_val == 1 and ret_val != 1").is_some());
        assert!(unsat_of("offset > 10 and offset < 20").is_none());
    }

    #[test]
    fn unsigned_domain_facts_apply() {
        assert!(unsat_of("offset < 0").is_some(), "offset is unsigned");
        assert!(unsat_of("ret_val < 0").is_none(), "ret_val is signed");
        assert!(unsat_of("error_fraction > 1.5").is_some());
        assert!(unsat_of("generation < 1").is_some(), "generations are 1-based");
    }

    #[test]
    fn string_set_contradictions_are_proven() {
        assert!(unsat_of("syscall == \"read\" and syscall == \"write\"").is_some());
        assert!(unsat_of("syscall in (read, write) and syscall == \"openat\"").is_some());
        assert!(unsat_of("syscall in (read, write) and syscall != \"read\"").is_none());
        assert!(unsat_of("syscall == \"read\" and not (syscall in (read, write))").is_some());
    }

    #[test]
    fn prefix_contradictions_are_proven() {
        assert!(unsat_of(
            "proc_name starts_with \"db_bench\" and proc_name starts_with \"rocksdb\""
        )
        .is_some());
        assert!(unsat_of(
            "proc_name starts_with \"db_bench\" and not (proc_name starts_with \"db\")"
        )
        .is_some());
        assert!(unsat_of("proc_name starts_with \"db\" and proc_name starts_with \"db_bench\"")
            .is_none());
    }

    #[test]
    fn enum_domain_exhaustion_is_proven() {
        assert!(unsat_of("syscall starts_with \"xyz\"").is_some());
        assert!(unsat_of("syscall starts_with \"pread\"").is_none());
        assert!(unsat_of("class starts_with \"data\"").is_none());
    }

    #[test]
    fn bool_atoms_conflict() {
        assert!(unsat_of("first_read and not first_read").is_some());
        assert!(unsat_of("follows(write) and not follows(write)").is_some());
        assert!(unsat_of("follows(write) and not follows(read)").is_none());
    }

    #[test]
    fn or_branches_must_all_be_empty() {
        assert!(unsat_of("(offset < 0) or (error_fraction > 2.0)").is_some());
        assert!(unsat_of("(offset < 0) or (offset > 10)").is_none());
    }

    #[test]
    fn constant_folding_sees_through_arithmetic() {
        assert!(unsat_of("offset > 4 * 1000 and offset < 2 + 2").is_some());
        assert!(unsat_of("1 > 2").is_some());
        assert!(unsat_of("latency_ns > 5ms and latency_ns < 1ms").is_some());
    }

    #[test]
    fn opaque_atoms_stay_satisfiable() {
        assert!(unsat_of("count > baseline(count, 3) * 4.0").is_none());
        assert!(unsat_of("errors / count >= 0.25").is_none());
    }

    #[test]
    fn tautologies_are_proven_via_the_negation() {
        assert!(taut_of("offset >= 0").is_some());
        assert!(taut_of("offset > 0 or offset <= 0").is_some());
        assert!(taut_of("offset > 0").is_none());
        assert!(taut_of("error_fraction <= 1.0").is_some());
    }

    #[test]
    fn proofs_cite_the_contradicting_atoms() {
        let proof = unsat_of("offset > 0 and offset == 0").unwrap();
        assert!(proof.contains("offset > 0"), "{proof}");
        assert!(proof.contains("offset == 0"), "{proof}");
    }

    #[test]
    fn nested_unsat_conjunct_empties_the_whole_predicate() {
        assert!(unsat_of("count >= 100 and (offset > 0 and offset < 0)").is_some());
        assert!(unsat_of("count >= 100 and (offset < 0 or 1 > 2)").is_some());
    }
}
