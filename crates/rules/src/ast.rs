//! The typed AST of the rule DSL, plus its canonical pretty-printer.
//!
//! The printer is the *canonical form* of a rule file: `print → reparse`
//! is a fixpoint (property-tested), which is what makes structural
//! rule comparison (`shadowed-rule`) and the analysis variable keys
//! (an aggregate is identified by its printed form) well-defined.

/// Source position of a token (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// Unit suffix of a duration literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurUnit {
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// Seconds.
    S,
}

impl DurUnit {
    /// Nanoseconds per unit.
    pub fn ns(self) -> u64 {
        match self {
            DurUnit::Ns => 1,
            DurUnit::Us => 1_000,
            DurUnit::Ms => 1_000_000,
            DurUnit::S => 1_000_000_000,
        }
    }

    /// The suffix as written (`ns`/`us`/`ms`/`s`).
    pub fn suffix(self) -> &'static str {
        match self {
            DurUnit::Ns => "ns",
            DurUnit::Us => "us",
            DurUnit::Ms => "ms",
            DurUnit::S => "s",
        }
    }
}

/// A duration literal (`250ms`), kept with its written unit so the
/// printer round-trips the source form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurLit {
    /// Value as written (before unit scaling).
    pub value: u64,
    /// Unit suffix as written.
    pub unit: DurUnit,
    /// Position of the literal.
    pub span: Span,
}

impl DurLit {
    /// The duration in nanoseconds.
    pub fn as_ns(&self) -> u64 {
        self.value.saturating_mul(self.unit.ns())
    }
}

impl std::fmt::Display for DurLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.value, self.unit.suffix())
    }
}

/// Binary operators, lowest-to-highest precedence tier noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or (tier 1).
    Or,
    /// Logical and (tier 2).
    And,
    /// Equality (tier 4, non-associative).
    Eq,
    /// Inequality (tier 4).
    Ne,
    /// Less-than (tier 4).
    Lt,
    /// Less-or-equal (tier 4).
    Le,
    /// Greater-than (tier 4).
    Gt,
    /// Greater-or-equal (tier 4).
    Ge,
    /// Addition (tier 5).
    Add,
    /// Subtraction (tier 5).
    Sub,
    /// Multiplication (tier 6).
    Mul,
    /// Division (tier 6).
    Div,
}

impl BinOp {
    /// The operator as written.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// Printing precedence tier (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }

    /// Whether this is a comparison operator.
    pub fn is_cmp(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// The comparison with flipped operand order (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    /// The negated comparison (`!(a < b)` ⇔ `a >= b`).
    pub fn negated_cmp(self) -> BinOp {
        match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            other => other,
        }
    }
}

/// An expression node with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression variant.
    pub kind: ExprKind,
    /// Position of the expression's first token.
    pub span: Span,
}

/// Expression variants of the rule DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Duration literal (`250ms`).
    Dur(DurLit),
    /// A bare name: catalog field, stream atom, or nullary aggregate.
    Ident(String),
    /// A call: aggregate (`count(...)`, `p95(...)`) or sequence atom
    /// (`follows(write)`).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// String membership: `syscall in (read, pread64)`.
    In {
        /// Tested expression.
        lhs: Box<Expr>,
        /// Member values (bare idents and quoted strings both land here).
        items: Vec<String>,
    },
    /// String prefix test: `proc_name starts_with "db_bench"`.
    StartsWith {
        /// Tested expression.
        lhs: Box<Expr>,
        /// Required prefix.
        prefix: String,
    },
}

impl Expr {
    /// Builds an expression with a default span (used by tests/builders).
    pub fn new(kind: ExprKind) -> Expr {
        Expr { kind, span: Span::default() }
    }

    /// Printing precedence of this node (higher binds tighter).
    fn precedence(&self) -> u8 {
        match &self.kind {
            ExprKind::Binary { op, .. } => op.precedence(),
            ExprKind::In { .. } | ExprKind::StartsWith { .. } => 4,
            ExprKind::Not(_) => 3,
            ExprKind::Neg(_) => 7,
            _ => 8,
        }
    }

    fn fmt_prec(&self, f: &mut std::fmt::Formatter<'_>, min: u8) -> std::fmt::Result {
        let prec = self.precedence();
        let parens = prec < min;
        if parens {
            f.write_str("(")?;
        }
        match &self.kind {
            ExprKind::Int(v) => write!(f, "{v}")?,
            ExprKind::Float(v) => write!(f, "{v:?}")?,
            ExprKind::Str(s) => write!(f, "{}", quote(s))?,
            ExprKind::Dur(d) => write!(f, "{d}")?,
            ExprKind::Ident(name) => f.write_str(name)?,
            ExprKind::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                f.write_str(")")?;
            }
            ExprKind::Neg(inner) => {
                f.write_str("-")?;
                inner.fmt_prec(f, 8)?;
            }
            ExprKind::Not(inner) => {
                f.write_str("not ")?;
                inner.fmt_prec(f, 3)?;
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Left-associative: the left child may sit at the same
                // tier, the right child must bind strictly tighter.
                // Comparisons are non-associative: both sides go up a tier.
                let (lmin, rmin) =
                    if op.is_cmp() { (5, 5) } else { (op.precedence(), op.precedence() + 1) };
                lhs.fmt_prec(f, lmin)?;
                write!(f, " {} ", op.symbol())?;
                rhs.fmt_prec(f, rmin)?;
            }
            ExprKind::In { lhs, items } => {
                lhs.fmt_prec(f, 5)?;
                f.write_str(" in (")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    if is_bare_ident(item) {
                        f.write_str(item)?;
                    } else {
                        write!(f, "{}", quote(item))?;
                    }
                }
                f.write_str(")")?;
            }
            ExprKind::StartsWith { lhs, prefix } => {
                lhs.fmt_prec(f, 5)?;
                write!(f, " starts_with {}", quote(prefix))?;
            }
        }
        if parens {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Whether `s` can print as a bare identifier inside an `in (...)` list.
fn is_bare_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Quotes and escapes a string literal for printing.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// When a rule evaluates: per event, or per sealed window.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Evaluate the predicate on every event (the default).
    Stream,
    /// Evaluate the predicate when a window seals.
    Window {
        /// Window width.
        width: DurLit,
        /// Window slide; `None` = tumbling.
        slide: Option<DurLit>,
    },
}

/// The `by` key dimension of a windowed rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDim {
    /// Key windows by the `pid` field.
    Pid,
    /// Key windows by the `file_tag` field.
    File,
    /// Key windows by the `class` field.
    Class,
    /// Key windows by the `proc_name` field.
    Proc,
}

impl KeyDim {
    /// The keyword as written after `by`.
    pub fn keyword(self) -> &'static str {
        match self {
            KeyDim::Pid => "pid",
            KeyDim::File => "file",
            KeyDim::Class => "class",
            KeyDim::Proc => "proc",
        }
    }

    /// The document field this dimension reads.
    pub fn field(self) -> &'static str {
        match self {
            KeyDim::Pid => "pid",
            KeyDim::File => "file_tag",
            KeyDim::Class => "class",
            KeyDim::Proc => "proc_name",
        }
    }
}

/// Alert severity named in an `alert(...)` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeverityLit {
    /// Informational.
    Info,
    /// Warning.
    Warning,
    /// Critical.
    Critical,
}

impl SeverityLit {
    /// The keyword as written.
    pub fn keyword(self) -> &'static str {
        match self {
            SeverityLit::Info => "info",
            SeverityLit::Warning => "warning",
            SeverityLit::Critical => "critical",
        }
    }
}

/// What a matching rule does.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Raise a typed alert.
    Alert {
        /// Severity keyword.
        severity: SeverityLit,
        /// Optional alert-kind ident (defaults to `rule_match`).
        kind: Option<String>,
        /// Position of the kind ident, when present.
        kind_span: Span,
        /// Human-readable message.
        message: String,
    },
    /// Count the match without alerting (e.g. validated restarts).
    Record {
        /// Label of the counted condition.
        label: String,
    },
}

/// One parsed rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique per file).
    pub name: String,
    /// Position of the name token.
    pub name_span: Span,
    /// Evaluation trigger.
    pub trigger: Trigger,
    /// Optional window key dimension.
    pub key: Option<KeyDim>,
    /// The predicate.
    pub when: Expr,
    /// The action on match.
    pub action: Action,
    /// Optional cap on fired alerts (beyond it, matches are suppressed).
    pub limit: Option<u64>,
    /// Whether alerts fired by this rule opt into DFG critical-path
    /// attribution (`attribution on`). Off by default: attribution is a
    /// decoration, so rules must ask for it explicitly.
    pub attribution: bool,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule {}", self.name)?;
        match &self.trigger {
            Trigger::Stream => {}
            Trigger::Window { width, slide } => {
                write!(f, " on window({width}")?;
                if let Some(s) = slide {
                    write!(f, ", {s}")?;
                }
                f.write_str(")")?;
            }
        }
        if let Some(key) = self.key {
            write!(f, " by {}", key.keyword())?;
        }
        write!(f, " when {} then ", self.when)?;
        match &self.action {
            Action::Alert { severity, kind, message, .. } => {
                write!(f, "alert({}", severity.keyword())?;
                if let Some(k) = kind {
                    write!(f, ", {k}")?;
                }
                write!(f, ", {})", quote(message))?;
            }
            Action::Record { label } => write!(f, "record({})", quote(label))?,
        }
        if let Some(limit) = self.limit {
            write!(f, " limit {limit}")?;
        }
        if self.attribution {
            f.write_str(" attribution on")?;
        }
        Ok(())
    }
}

/// A parsed rule file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleFile {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl std::fmt::Display for RuleFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> Box<Expr> {
        Box::new(Expr::new(kind))
    }

    #[test]
    fn printer_parenthesizes_by_precedence() {
        // a + (b + c): right-nested Add needs parens.
        let expr = Expr::new(ExprKind::Binary {
            op: BinOp::Add,
            lhs: e(ExprKind::Ident("a".into())),
            rhs: Box::new(Expr::new(ExprKind::Binary {
                op: BinOp::Add,
                lhs: e(ExprKind::Ident("b".into())),
                rhs: e(ExprKind::Ident("c".into())),
            })),
        });
        assert_eq!(expr.to_string(), "a + (b + c)");
        // (a or b) and c: Or under And needs parens.
        let expr = Expr::new(ExprKind::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::new(ExprKind::Binary {
                op: BinOp::Or,
                lhs: e(ExprKind::Ident("a".into())),
                rhs: e(ExprKind::Ident("b".into())),
            })),
            rhs: e(ExprKind::Ident("c".into())),
        });
        assert_eq!(expr.to_string(), "(a or b) and c");
    }

    #[test]
    fn printer_quotes_non_ident_in_items() {
        let expr = Expr::new(ExprKind::In {
            lhs: e(ExprKind::Ident("class".into())),
            items: vec!["data".into(), "extended attributes".into()],
        });
        assert_eq!(expr.to_string(), "class in (data, \"extended attributes\")");
    }

    #[test]
    fn floats_print_distinguishably_from_ints() {
        assert_eq!(Expr::new(ExprKind::Float(4.0)).to_string(), "4.0");
        assert_eq!(Expr::new(ExprKind::Int(4)).to_string(), "4");
    }

    #[test]
    fn duration_literals_round_trip_their_unit() {
        let d = DurLit { value: 250, unit: DurUnit::Ms, span: Span::default() };
        assert_eq!(d.to_string(), "250ms");
        assert_eq!(d.as_ns(), 250_000_000);
    }
}
