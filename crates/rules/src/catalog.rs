//! The field catalog the static pass checks predicates against.
//!
//! Every name a rule may reference resolves here: the event-document
//! fields emitted by `SyscallEvent::to_document` (typed, with enum
//! domains derived from the 42-syscall contract in `dio-syscall`), the
//! stream sequence atoms, and the window aggregate functions. `dio-verify`
//! cross-checks this table against its own `DOCUMENT_FIELDS` list so the
//! two crates cannot drift.

use dio_syscall::SyscallKind;

/// Static type of a catalog field or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldTy {
    /// Unsigned integer (counts, ids, offsets).
    UInt,
    /// Signed integer (`ret_val`).
    Int,
    /// Nanosecond-valued quantity (timestamps, latencies). Numeric, but
    /// comparisons against bare literals draw a unit-confusion warning.
    Ns,
    /// Floating-point quantity (fractions, rates).
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
    /// Nested object — present in documents but not addressable in rules.
    Object,
}

impl FieldTy {
    /// Whether the type participates in numeric comparison/arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, FieldTy::UInt | FieldTy::Int | FieldTy::Ns | FieldTy::Float)
    }

    /// Human-readable name for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            FieldTy::UInt => "unsigned integer",
            FieldTy::Int => "integer",
            FieldTy::Ns => "nanoseconds",
            FieldTy::Float => "float",
            FieldTy::Str => "string",
            FieldTy::Bool => "boolean",
            FieldTy::Object => "object",
        }
    }
}

/// Finite value domain of an enum-valued string field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// The 42 syscall names of Table I.
    Syscalls,
    /// The four functional classes of Table I.
    Classes,
    /// The eight file types of the enrichment layer.
    FileTypes,
}

/// Class names as serialized into documents (`SyscallClass::to_string`).
pub const CLASS_NAMES: &[&str] =
    &["data", "metadata", "extended attributes", "directory management"];

/// File-type names as serialized into documents (`FileType::name`).
pub const FILE_TYPE_NAMES: &[&str] = &[
    "regular",
    "directory",
    "socket",
    "block_device",
    "char_device",
    "pipe",
    "symlink",
    "unknown",
];

impl Domain {
    /// Whether `value` is a member of the domain.
    pub fn contains(self, value: &str) -> bool {
        match self {
            Domain::Syscalls => value.parse::<SyscallKind>().is_ok(),
            Domain::Classes => CLASS_NAMES.contains(&value),
            Domain::FileTypes => FILE_TYPE_NAMES.contains(&value),
        }
    }

    /// Every member of the domain.
    pub fn members(self) -> Vec<&'static str> {
        match self {
            Domain::Syscalls => SyscallKind::ALL.iter().map(|k| k.name()).collect(),
            Domain::Classes => CLASS_NAMES.to_vec(),
            Domain::FileTypes => FILE_TYPE_NAMES.to_vec(),
        }
    }

    /// Short description for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            Domain::Syscalls => "the 42 syscalls of Table I",
            Domain::Classes => "the 4 syscall classes",
            Domain::FileTypes => "the 8 file types",
        }
    }
}

/// One addressable event-document field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDef {
    /// Document field name.
    pub name: &'static str,
    /// Static type.
    pub ty: FieldTy,
    /// Finite value domain, when the field is enum-valued.
    pub domain: Option<Domain>,
}

/// Every event-document field a rule may reference, in document order.
///
/// The first twelve entries mirror `dio-verify`'s `DOCUMENT_FIELDS`
/// (always present); the tail lists the optional enrichment fields.
pub const FIELDS: &[FieldDef] = &[
    FieldDef { name: "session", ty: FieldTy::Str, domain: None },
    FieldDef { name: "syscall", ty: FieldTy::Str, domain: Some(Domain::Syscalls) },
    FieldDef { name: "class", ty: FieldTy::Str, domain: Some(Domain::Classes) },
    FieldDef { name: "pid", ty: FieldTy::UInt, domain: None },
    FieldDef { name: "tid", ty: FieldTy::UInt, domain: None },
    FieldDef { name: "proc_name", ty: FieldTy::Str, domain: None },
    FieldDef { name: "cpu", ty: FieldTy::UInt, domain: None },
    FieldDef { name: "time", ty: FieldTy::Ns, domain: None },
    FieldDef { name: "time_exit", ty: FieldTy::Ns, domain: None },
    FieldDef { name: "latency_ns", ty: FieldTy::Ns, domain: None },
    FieldDef { name: "ret_val", ty: FieldTy::Int, domain: None },
    FieldDef { name: "args", ty: FieldTy::Object, domain: None },
    FieldDef { name: "offset", ty: FieldTy::UInt, domain: None },
    FieldDef { name: "file_tag", ty: FieldTy::Str, domain: None },
    FieldDef { name: "file_path", ty: FieldTy::Str, domain: None },
    FieldDef { name: "file_type", ty: FieldTy::Str, domain: Some(Domain::FileTypes) },
];

/// Looks up a document field by name.
pub fn field(name: &str) -> Option<&'static FieldDef> {
    FIELDS.iter().find(|f| f.name == name)
}

/// Stream sequence atoms (only meaningful in `on stream` rules).
///
/// * `generation` — 1-based reuse-generation index of the event's
///   `file_tag` within its `(dev, ino)` pair; defined for data-path
///   read/write calls carrying a parseable tag.
/// * `first_read` — whether this event is the first `read`/`pread64`
///   observed for its `file_tag`.
/// * `follows(<syscall>)` — whether the previous event on the same `tid`
///   was the named syscall (a directly-follows atom).
pub const STREAM_ATOMS: &[(&str, FieldTy)] =
    &[("generation", FieldTy::UInt), ("first_read", FieldTy::Bool)];

/// Window aggregate names (only meaningful in `on window` rules), with
/// result types. Call-shape validation happens in the checker.
pub const AGGREGATES: &[(&str, FieldTy)] = &[
    ("count", FieldTy::UInt),
    ("errors", FieldTy::UInt),
    ("error_fraction", FieldTy::Float),
    ("rate", FieldTy::Float),
    ("p50", FieldTy::Float),
    ("p95", FieldTy::Float),
    ("p99", FieldTy::Float),
    ("distinct", FieldTy::UInt),
    ("baseline", FieldTy::Float),
    ("mean_when", FieldTy::Float),
];

/// Whether `name` names a window aggregate.
pub fn is_aggregate(name: &str) -> bool {
    AGGREGATES.iter().any(|(n, _)| *n == name)
}

/// Result type of an aggregate.
pub fn aggregate_ty(name: &str) -> Option<FieldTy> {
    AGGREGATES.iter().find(|(n, _)| *n == name).map(|&(_, ty)| ty)
}

/// Every name the DSL knows (for did-you-mean suggestions).
pub fn known_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = FIELDS.iter().map(|f| f.name).collect();
    names.extend(STREAM_ATOMS.iter().map(|&(n, _)| n));
    names.push("follows");
    names.extend(AGGREGATES.iter().map(|&(n, _)| n));
    names
}

/// The closest known name within edit distance 2, for diagnostics.
pub fn suggest(name: &str) -> Option<&'static str> {
    known_names()
        .into_iter()
        .map(|k| (edit_distance(name, k), k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, k)| k)
}

/// Classic Levenshtein distance (small inputs only).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_42_syscalls() {
        assert!(Domain::Syscalls.contains("pread64"));
        assert!(!Domain::Syscalls.contains("futex"));
        assert_eq!(Domain::Syscalls.members().len(), 42);
    }

    #[test]
    fn field_lookup_and_types() {
        assert_eq!(field("ret_val").unwrap().ty, FieldTy::Int);
        assert_eq!(field("latency_ns").unwrap().ty, FieldTy::Ns);
        assert_eq!(field("class").unwrap().domain, Some(Domain::Classes));
        assert!(field("bogus").is_none());
    }

    #[test]
    fn suggestions_catch_typos() {
        assert_eq!(suggest("ofset"), Some("offset"));
        assert_eq!(suggest("latency"), None, "distance 3 is too far to guess");
        assert_eq!(suggest("procname"), Some("proc_name"));
    }

    #[test]
    fn class_names_match_display_impls() {
        use dio_syscall::SyscallClass;
        for class in [
            SyscallClass::Data,
            SyscallClass::Metadata,
            SyscallClass::ExtendedAttributes,
            SyscallClass::DirectoryManagement,
        ] {
            assert!(CLASS_NAMES.contains(&class.to_string().as_str()), "{class}");
        }
    }
}
