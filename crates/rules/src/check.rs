//! The verifier: typed semantic diagnostics over parsed rule files.
//!
//! Mirrors the load-time contract of `dio-verify`: every finding is a
//! typed [`RuleDiagnostic`] naming its [`RuleCheck`], and a file with any
//! rejecting diagnostic never compiles onto the engine. Warnings
//! (`unit-confusion`, `shadowed-rule`, `gappy-window`) surface without
//! blocking the load.

use dio_diagnose::AlertKind;

use crate::analysis;
use crate::ast::{Action, BinOp, Expr, ExprKind, Rule, RuleFile, Span, Trigger};
use crate::catalog::{self, FieldTy};

/// Widest admissible window (bounds per-window memory and seal latency).
pub const MAX_WINDOW_NS: u64 = 600_000_000_000;

/// Most concurrently-open sliding windows per key (`width / slide`).
pub const MAX_WINDOW_OVERLAP: u64 = 64;

/// The typed static checks a rule file is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCheck {
    /// A name that resolves to no catalog field, atom, or aggregate.
    UnknownField,
    /// A literal outside an enum field's finite domain (syscall names,
    /// classes, file types, alert kinds).
    UnknownEnumValue,
    /// An operator applied to operands of incompatible types.
    TypeMismatch,
    /// A nanosecond-valued expression compared against a bare numeric
    /// literal (or a duration against a non-time quantity).
    UnitConfusion,
    /// A predicate that provably can never evaluate to true.
    UnsatisfiablePredicate,
    /// A predicate that provably always evaluates to true.
    TautologicalPredicate,
    /// Two rules in one file sharing a name.
    DuplicateRule,
    /// A rule whose trigger, key, and predicate match an earlier rule.
    ShadowedRule,
    /// A window specification the engine refuses to pay for (zero width
    /// or slide, width over [`MAX_WINDOW_NS`], overlap over
    /// [`MAX_WINDOW_OVERLAP`]).
    WindowCost,
    /// A slide larger than the width: events can fall between windows.
    GappyWindow,
    /// A window aggregate outside a window context (stream rule, or
    /// nested inside an event predicate).
    AggregateWithoutWindow,
    /// A raw event field at window scope, where only aggregates have a
    /// per-window value.
    EventFieldOutsideAggregate,
    /// A stream sequence atom (`generation`, `first_read`, `follows`)
    /// inside a windowed rule.
    SequenceAtomInWindowRule,
}

impl RuleCheck {
    /// Every check, in documentation order.
    pub const ALL: &'static [RuleCheck] = &[
        RuleCheck::UnknownField,
        RuleCheck::UnknownEnumValue,
        RuleCheck::TypeMismatch,
        RuleCheck::UnitConfusion,
        RuleCheck::UnsatisfiablePredicate,
        RuleCheck::TautologicalPredicate,
        RuleCheck::DuplicateRule,
        RuleCheck::ShadowedRule,
        RuleCheck::WindowCost,
        RuleCheck::GappyWindow,
        RuleCheck::AggregateWithoutWindow,
        RuleCheck::EventFieldOutsideAggregate,
        RuleCheck::SequenceAtomInWindowRule,
    ];

    /// Stable kebab-case name used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            RuleCheck::UnknownField => "unknown-field",
            RuleCheck::UnknownEnumValue => "unknown-enum-value",
            RuleCheck::TypeMismatch => "type-mismatch",
            RuleCheck::UnitConfusion => "unit-confusion",
            RuleCheck::UnsatisfiablePredicate => "unsatisfiable-predicate",
            RuleCheck::TautologicalPredicate => "tautological-predicate",
            RuleCheck::DuplicateRule => "duplicate-rule",
            RuleCheck::ShadowedRule => "shadowed-rule",
            RuleCheck::WindowCost => "window-cost",
            RuleCheck::GappyWindow => "gappy-window",
            RuleCheck::AggregateWithoutWindow => "aggregate-without-window",
            RuleCheck::EventFieldOutsideAggregate => "event-field-outside-aggregate",
            RuleCheck::SequenceAtomInWindowRule => "sequence-atom-in-window-rule",
        }
    }

    /// One-line description for the generated reference table.
    pub fn describe(self) -> &'static str {
        match self {
            RuleCheck::UnknownField => {
                "a name that resolves to no document field, stream atom, or aggregate \
                 (with a did-you-mean suggestion)"
            }
            RuleCheck::UnknownEnumValue => {
                "a literal outside an enum field's finite domain: the 42 syscall names, \
                 the 4 classes, the 8 file types, or the typed alert kinds"
            }
            RuleCheck::TypeMismatch => "an operator applied to operands of incompatible types",
            RuleCheck::UnitConfusion => {
                "a nanosecond-valued expression compared against a bare numeric literal, \
                 or a duration literal against a unit-less quantity"
            }
            RuleCheck::UnsatisfiablePredicate => {
                "a predicate proven statically empty — it can never evaluate to true, \
                 and the proof is part of the diagnostic"
            }
            RuleCheck::TautologicalPredicate => "a predicate proven to fire on every evaluation",
            RuleCheck::DuplicateRule => "two rules in one file sharing a name",
            RuleCheck::ShadowedRule => {
                "a rule whose trigger, key, and canonical predicate match an earlier rule"
            }
            RuleCheck::WindowCost => {
                "a window the engine refuses to pay for: zero width or slide, width over \
                 600s, or more than 64 concurrently-open windows per key"
            }
            RuleCheck::GappyWindow => {
                "a slide larger than the width, leaving events no window ever evaluates"
            }
            RuleCheck::AggregateWithoutWindow => {
                "a window aggregate in a stream rule or nested inside an event predicate"
            }
            RuleCheck::EventFieldOutsideAggregate => {
                "a raw event field at window scope, where only aggregates have a value"
            }
            RuleCheck::SequenceAtomInWindowRule => {
                "a stream sequence atom (generation, first_read, follows) in a windowed rule"
            }
        }
    }

    /// Whether a finding of this check rejects the file (vs warning).
    pub fn rejects(self) -> bool {
        !matches!(self, RuleCheck::UnitConfusion | RuleCheck::ShadowedRule | RuleCheck::GappyWindow)
    }
}

impl std::fmt::Display for RuleCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the static pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDiagnostic {
    /// Which check fired.
    pub check: RuleCheck,
    /// Name of the offending rule.
    pub rule: String,
    /// Position the finding points at.
    pub span: Span,
    /// Human-readable explanation (with proof, for satisfiability checks).
    pub message: String,
}

impl RuleDiagnostic {
    /// Whether this finding rejects the file.
    pub fn rejects(&self) -> bool {
        self.check.rejects()
    }
}

impl std::fmt::Display for RuleDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level = if self.rejects() { "error" } else { "warning" };
        write!(
            f,
            "{level}[{}]: rule `{}`: {} ({})",
            self.check.name(),
            self.rule,
            self.message,
            self.span
        )
    }
}

/// The full result of statically verifying a rule file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RulesReport {
    diagnostics: Vec<RuleDiagnostic>,
}

impl RulesReport {
    /// All findings, in rule order.
    pub fn diagnostics(&self) -> &[RuleDiagnostic] {
        &self.diagnostics
    }

    /// The rejecting findings.
    pub fn errors(&self) -> impl Iterator<Item = &RuleDiagnostic> {
        self.diagnostics.iter().filter(|d| d.rejects())
    }

    /// The non-rejecting findings.
    pub fn warnings(&self) -> impl Iterator<Item = &RuleDiagnostic> {
        self.diagnostics.iter().filter(|d| !d.rejects())
    }

    /// Whether the file passed (no rejecting findings).
    pub fn is_ok(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether `rule` was proven statically empty (can never fire).
    pub fn statically_empty(&self, rule: &str) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.check == RuleCheck::UnsatisfiablePredicate && d.rule == rule)
    }

    /// Converts into a result, rejecting on any error-level finding.
    pub fn into_result(self) -> Result<RulesReport, RulesError> {
        if self.is_ok() {
            Ok(self)
        } else {
            Err(RulesError { report: self })
        }
    }
}

/// A rule file rejected by the static pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RulesError {
    report: RulesReport,
}

impl RulesError {
    /// The full report behind the rejection.
    pub fn report(&self) -> &RulesReport {
        &self.report
    }

    /// Whether any finding is of the given check.
    pub fn violates(&self, check: RuleCheck) -> bool {
        self.report.diagnostics.iter().any(|d| d.check == check)
    }
}

impl std::fmt::Display for RulesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let errors = self.report.errors().count();
        writeln!(f, "rule file rejected: {errors} error(s)")?;
        for diag in &self.report.diagnostics {
            writeln!(f, "  {diag}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RulesError {}

/// Runs every static check over a parsed rule file.
pub fn verify_rules(file: &RuleFile) -> RulesReport {
    let mut report = RulesReport::default();
    let mut seen_names: Vec<&str> = Vec::new();
    // (signature, name) of earlier rules, for shadowing detection.
    let mut signatures: Vec<(String, &str)> = Vec::new();
    for rule in &file.rules {
        let before = report.diagnostics.len();
        if seen_names.contains(&rule.name.as_str()) {
            report.diagnostics.push(RuleDiagnostic {
                check: RuleCheck::DuplicateRule,
                rule: rule.name.clone(),
                span: rule.name_span,
                message: format!("a rule named `{}` is already defined in this file", rule.name),
            });
        }
        seen_names.push(&rule.name);

        check_trigger(rule, &mut report.diagnostics);
        check_action(rule, &mut report.diagnostics);

        let windowed = matches!(rule.trigger, Trigger::Window { .. });
        let mut checker = Checker { rule, windowed, diags: &mut report.diagnostics };
        let top_ctx = if windowed { Ctx::Window } else { Ctx::Event };
        if let Some(ty) = checker.ty(&rule.when, top_ctx) {
            if ty != FieldTy::Bool {
                report.diagnostics.push(RuleDiagnostic {
                    check: RuleCheck::TypeMismatch,
                    rule: rule.name.clone(),
                    span: rule.when.span,
                    message: format!(
                        "rule predicate must be boolean, but this one is {}",
                        ty.describe()
                    ),
                });
            }
        }

        // Satisfiability analysis only over rules that type-check — a
        // reject above already blocks the load, and analyzing ill-typed
        // predicates would produce noise.
        let rejected = report.diagnostics[before..].iter().any(|d| d.rejects());
        if !rejected {
            if let Some(proof) = analysis::prove_unsat(&rule.when) {
                report.diagnostics.push(RuleDiagnostic {
                    check: RuleCheck::UnsatisfiablePredicate,
                    rule: rule.name.clone(),
                    span: rule.when.span,
                    message: format!("predicate is statically empty and can never fire: {proof}"),
                });
            } else if let Some(proof) = analysis::prove_taut(&rule.when) {
                report.diagnostics.push(RuleDiagnostic {
                    check: RuleCheck::TautologicalPredicate,
                    rule: rule.name.clone(),
                    span: rule.when.span,
                    message: format!(
                        "predicate is a tautology and fires on every evaluation: {proof}"
                    ),
                });
            }
        }

        // Structural shadowing: same trigger, key, and canonical predicate
        // as an earlier rule.
        let trigger_txt = match &rule.trigger {
            Trigger::Stream => "stream".to_string(),
            Trigger::Window { width, slide } => match slide {
                Some(s) => format!("window({width}, {s})"),
                None => format!("window({width})"),
            },
        };
        let key_txt = rule.key.map(|k| k.keyword()).unwrap_or("-");
        let signature = format!("{trigger_txt}|{key_txt}|{}", rule.when);
        if let Some((_, earlier)) = signatures.iter().find(|(sig, _)| *sig == signature) {
            report.diagnostics.push(RuleDiagnostic {
                check: RuleCheck::ShadowedRule,
                rule: rule.name.clone(),
                span: rule.name_span,
                message: format!(
                    "trigger, key, and predicate are identical to rule `{earlier}`; \
                     both rules fire on exactly the same matches"
                ),
            });
        } else {
            signatures.push((signature, &rule.name));
        }
    }
    report
}

/// Window-cost and key checks on the trigger clause.
fn check_trigger(rule: &Rule, diags: &mut Vec<RuleDiagnostic>) {
    match &rule.trigger {
        Trigger::Stream => {
            // `by` only keys windows; a stream rule evaluates per event.
            if let Some(key) = rule.key {
                diags.push(RuleDiagnostic {
                    check: RuleCheck::TypeMismatch,
                    rule: rule.name.clone(),
                    span: rule.name_span,
                    message: format!(
                        "`by {}` requires a window trigger; stream rules evaluate per event",
                        key.keyword()
                    ),
                });
            }
        }
        Trigger::Window { width, slide } => {
            if width.as_ns() == 0 {
                diags.push(RuleDiagnostic {
                    check: RuleCheck::WindowCost,
                    rule: rule.name.clone(),
                    span: width.span,
                    message: "zero-width window never contains an event".to_string(),
                });
            } else if width.as_ns() > MAX_WINDOW_NS {
                diags.push(RuleDiagnostic {
                    check: RuleCheck::WindowCost,
                    rule: rule.name.clone(),
                    span: width.span,
                    message: format!(
                        "window width {width} exceeds the {}s bound on per-window state",
                        MAX_WINDOW_NS / 1_000_000_000
                    ),
                });
            }
            if let Some(slide) = slide {
                if slide.as_ns() == 0 {
                    diags.push(RuleDiagnostic {
                        check: RuleCheck::WindowCost,
                        rule: rule.name.clone(),
                        span: slide.span,
                        message: "zero slide would open unboundedly many windows".to_string(),
                    });
                } else {
                    let overlap = width.as_ns().div_ceil(slide.as_ns());
                    if overlap > MAX_WINDOW_OVERLAP {
                        diags.push(RuleDiagnostic {
                            check: RuleCheck::WindowCost,
                            rule: rule.name.clone(),
                            span: slide.span,
                            message: format!(
                                "width {width} over slide {slide} keeps {overlap} windows \
                                 open per key, above the {MAX_WINDOW_OVERLAP} bound"
                            ),
                        });
                    }
                    if slide.as_ns() > width.as_ns() {
                        diags.push(RuleDiagnostic {
                            check: RuleCheck::GappyWindow,
                            rule: rule.name.clone(),
                            span: slide.span,
                            message: format!(
                                "slide {slide} exceeds width {width}; events between \
                                 windows are never evaluated"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Validates the alert-kind ident against the typed [`AlertKind`] set.
fn check_action(rule: &Rule, diags: &mut Vec<RuleDiagnostic>) {
    if let Action::Alert { kind: Some(kind), kind_span, .. } = &rule.action {
        if AlertKind::parse(kind).is_none() {
            diags.push(RuleDiagnostic {
                check: RuleCheck::UnknownEnumValue,
                rule: rule.name.clone(),
                span: *kind_span,
                message: format!(
                    "unknown alert kind `{kind}`; expected one of data_loss, \
                     stale_offset_resume, contention_skew, syscall_rate_anomaly, \
                     error_rate_anomaly, rule_match"
                ),
            });
        }
    }
}

/// Where an expression sits, which decides what names are in scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Per-event scope: stream predicates and aggregate event arguments.
    Event,
    /// Per-window scope: window-rule predicates and `mean_when` conditions.
    Window,
}

struct Checker<'a> {
    rule: &'a Rule,
    windowed: bool,
    diags: &'a mut Vec<RuleDiagnostic>,
}

impl Checker<'_> {
    fn push(&mut self, check: RuleCheck, span: Span, message: String) {
        self.diags.push(RuleDiagnostic { check, rule: self.rule.name.clone(), span, message });
    }

    /// Infers the type of `e`, emitting diagnostics along the way.
    /// `None` means "already diagnosed" and suppresses cascades.
    fn ty(&mut self, e: &Expr, ctx: Ctx) -> Option<FieldTy> {
        match &e.kind {
            ExprKind::Int(_) => Some(FieldTy::Int),
            ExprKind::Float(_) => Some(FieldTy::Float),
            ExprKind::Str(_) => Some(FieldTy::Str),
            ExprKind::Dur(_) => Some(FieldTy::Ns),
            ExprKind::Ident(name) => self.ident_ty(name, e.span, ctx),
            ExprKind::Call { name, args } => self.call_ty(name, args, e.span, ctx),
            ExprKind::Neg(inner) => {
                let t = self.ty(inner, ctx)?;
                if !t.is_numeric() {
                    self.push(
                        RuleCheck::TypeMismatch,
                        inner.span,
                        format!("cannot negate a {}", t.describe()),
                    );
                    return None;
                }
                Some(if t == FieldTy::UInt { FieldTy::Int } else { t })
            }
            ExprKind::Not(inner) => {
                if let Some(t) = self.ty(inner, ctx) {
                    if t != FieldTy::Bool {
                        self.push(
                            RuleCheck::TypeMismatch,
                            inner.span,
                            format!("`not` needs a boolean operand, got {}", t.describe()),
                        );
                    }
                }
                Some(FieldTy::Bool)
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary_ty(*op, lhs, rhs, ctx),
            ExprKind::In { lhs, items } => {
                if let Some(t) = self.ty(lhs, ctx) {
                    if t != FieldTy::Str {
                        self.push(
                            RuleCheck::TypeMismatch,
                            lhs.span,
                            format!("`in` tests string membership, got {}", t.describe()),
                        );
                    }
                }
                self.check_enum_values(lhs, items.iter().map(String::as_str), e.span);
                Some(FieldTy::Bool)
            }
            ExprKind::StartsWith { lhs, prefix } => {
                if let Some(t) = self.ty(lhs, ctx) {
                    if t != FieldTy::Str {
                        self.push(
                            RuleCheck::TypeMismatch,
                            lhs.span,
                            format!("`starts_with` tests strings, got {}", t.describe()),
                        );
                    }
                }
                let _ = prefix;
                Some(FieldTy::Bool)
            }
        }
    }

    fn ident_ty(&mut self, name: &str, span: Span, ctx: Ctx) -> Option<FieldTy> {
        if let Some(field) = catalog::field(name) {
            if field.ty == FieldTy::Object {
                self.push(
                    RuleCheck::TypeMismatch,
                    span,
                    format!("field `{name}` is a nested object and cannot be tested directly"),
                );
                return None;
            }
            if ctx == Ctx::Window {
                self.push(
                    RuleCheck::EventFieldOutsideAggregate,
                    span,
                    format!(
                        "event field `{name}` has no single value at window scope; \
                         wrap it in an aggregate such as `p95({name})` or `count(<predicate>)`"
                    ),
                );
            }
            return Some(field.ty);
        }
        if let Some(&(_, ty)) = catalog::STREAM_ATOMS.iter().find(|(n, _)| *n == name) {
            if self.windowed {
                self.push(
                    RuleCheck::SequenceAtomInWindowRule,
                    span,
                    format!(
                        "sequence atom `{name}` tracks per-event order and is only \
                         defined in `on stream` rules"
                    ),
                );
            }
            return Some(ty);
        }
        if catalog::is_aggregate(name) {
            // Only the nullary aggregates read well as bare idents.
            if !matches!(name, "count" | "errors" | "error_fraction" | "rate") {
                self.push(
                    RuleCheck::TypeMismatch,
                    span,
                    format!("aggregate `{name}` requires arguments, e.g. `{name}(...)`"),
                );
                return None;
            }
            self.check_aggregate_scope(name, span, ctx);
            return catalog::aggregate_ty(name);
        }
        if name == "follows" {
            self.push(
                RuleCheck::TypeMismatch,
                span,
                "`follows` needs a syscall argument, e.g. `follows(write)`".to_string(),
            );
            return None;
        }
        let suggestion =
            catalog::suggest(name).map(|s| format!("; did you mean `{s}`?")).unwrap_or_default();
        self.push(
            RuleCheck::UnknownField,
            span,
            format!("`{name}` is not a document field, stream atom, or aggregate{suggestion}"),
        );
        None
    }

    fn call_ty(&mut self, name: &str, args: &[Expr], span: Span, ctx: Ctx) -> Option<FieldTy> {
        match name {
            "follows" => {
                if self.windowed {
                    self.push(
                        RuleCheck::SequenceAtomInWindowRule,
                        span,
                        "sequence atom `follows(...)` tracks per-event order and is only \
                         defined in `on stream` rules"
                            .to_string(),
                    );
                }
                if args.len() != 1 {
                    self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        "`follows` takes exactly one syscall name".to_string(),
                    );
                    return Some(FieldTy::Bool);
                }
                match &args[0].kind {
                    ExprKind::Ident(sys) if catalog::Domain::Syscalls.contains(sys) => {}
                    ExprKind::Ident(sys) => self.push(
                        RuleCheck::UnknownEnumValue,
                        args[0].span,
                        format!("`{sys}` is not one of the 42 traced syscalls"),
                    ),
                    _ => self.push(
                        RuleCheck::TypeMismatch,
                        args[0].span,
                        "`follows` takes a bare syscall name, e.g. `follows(write)`".to_string(),
                    ),
                }
                Some(FieldTy::Bool)
            }
            "count" => {
                self.check_aggregate_scope(name, span, ctx);
                match args {
                    [] => {}
                    [pred] => self.expect_bool(pred, Ctx::Event, "the `count` predicate"),
                    _ => self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        "`count` takes at most one event predicate".to_string(),
                    ),
                }
                Some(FieldTy::UInt)
            }
            "errors" | "error_fraction" | "rate" => {
                self.check_aggregate_scope(name, span, ctx);
                if !args.is_empty() {
                    self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        format!("`{name}` takes no arguments"),
                    );
                }
                catalog::aggregate_ty(name)
            }
            "p50" | "p95" | "p99" => {
                self.check_aggregate_scope(name, span, ctx);
                if args.len() != 1 {
                    self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        format!("`{name}` takes exactly one numeric event expression"),
                    );
                } else if let Some(t) = self.ty(&args[0], Ctx::Event) {
                    if !t.is_numeric() {
                        self.push(
                            RuleCheck::TypeMismatch,
                            args[0].span,
                            format!("`{name}` aggregates numbers, got {}", t.describe()),
                        );
                    } else if t == FieldTy::Ns {
                        // Percentile of a nanosecond field stays time-typed
                        // so unit-confusion keeps tracking it.
                        return Some(FieldTy::Ns);
                    }
                }
                Some(FieldTy::Float)
            }
            "distinct" => {
                self.check_aggregate_scope(name, span, ctx);
                match args {
                    [value] => {
                        self.ty(value, Ctx::Event);
                    }
                    [value, pred] => {
                        self.ty(value, Ctx::Event);
                        self.expect_bool(pred, Ctx::Event, "the `distinct` predicate");
                    }
                    _ => self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        "`distinct` takes an event expression and an optional predicate"
                            .to_string(),
                    ),
                }
                Some(FieldTy::UInt)
            }
            "baseline" => {
                self.check_aggregate_scope(name, span, ctx);
                if args.len() != 2 {
                    self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        "`baseline` takes an aggregate and a window count, e.g. \
                         `baseline(count, 3)`"
                            .to_string(),
                    );
                    return Some(FieldTy::Float);
                }
                self.expect_plain_aggregate(&args[0], "baseline");
                match &args[1].kind {
                    ExprKind::Int(n) if *n >= 1 => {}
                    _ => self.push(
                        RuleCheck::TypeMismatch,
                        args[1].span,
                        "the `baseline` window count must be an integer literal >= 1".to_string(),
                    ),
                }
                Some(FieldTy::Float)
            }
            "mean_when" => {
                self.check_aggregate_scope(name, span, ctx);
                if args.len() != 2 {
                    self.push(
                        RuleCheck::TypeMismatch,
                        span,
                        "`mean_when` takes an aggregate and a window condition, e.g. \
                         `mean_when(count, errors == 0)`"
                            .to_string(),
                    );
                    return Some(FieldTy::Float);
                }
                self.expect_plain_aggregate(&args[0], "mean_when");
                self.expect_bool(&args[1], Ctx::Window, "the `mean_when` condition");
                Some(FieldTy::Float)
            }
            _ => {
                let suggestion = catalog::suggest(name)
                    .map(|s| format!("; did you mean `{s}`?"))
                    .unwrap_or_default();
                self.push(
                    RuleCheck::UnknownField,
                    span,
                    format!("`{name}` is not a known aggregate or atom{suggestion}"),
                );
                None
            }
        }
    }

    /// Aggregates only have a value at window scope of a windowed rule.
    fn check_aggregate_scope(&mut self, name: &str, span: Span, ctx: Ctx) {
        if !self.windowed {
            self.push(
                RuleCheck::AggregateWithoutWindow,
                span,
                format!(
                    "aggregate `{name}` needs a window to aggregate over; \
                     give the rule an `on window(...)` trigger"
                ),
            );
        } else if ctx == Ctx::Event {
            self.push(
                RuleCheck::AggregateWithoutWindow,
                span,
                format!(
                    "aggregate `{name}` cannot nest inside an event predicate, \
                     which is evaluated once per event"
                ),
            );
        }
    }

    /// First argument of `baseline`/`mean_when`: a plain (non-derived)
    /// aggregate expression.
    fn expect_plain_aggregate(&mut self, e: &Expr, outer: &str) {
        let ok = match &e.kind {
            ExprKind::Ident(n) => {
                matches!(n.as_str(), "count" | "errors" | "error_fraction" | "rate")
            }
            ExprKind::Call { name, .. } => {
                catalog::is_aggregate(name) && !matches!(name.as_str(), "baseline" | "mean_when")
            }
            _ => false,
        };
        if ok {
            self.ty(e, Ctx::Window);
        } else {
            self.push(
                RuleCheck::TypeMismatch,
                e.span,
                format!("the first argument of `{outer}` must be a plain window aggregate"),
            );
        }
    }

    fn expect_bool(&mut self, e: &Expr, ctx: Ctx, what: &str) {
        if let Some(t) = self.ty(e, ctx) {
            if t != FieldTy::Bool {
                self.push(
                    RuleCheck::TypeMismatch,
                    e.span,
                    format!("{what} must be boolean, got {}", t.describe()),
                );
            }
        }
    }

    fn binary_ty(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, ctx: Ctx) -> Option<FieldTy> {
        let lt = self.ty(lhs, ctx);
        let rt = self.ty(rhs, ctx);
        match op {
            BinOp::And | BinOp::Or => {
                for (t, side) in [(lt, lhs), (rt, rhs)] {
                    if let Some(t) = t {
                        if t != FieldTy::Bool {
                            self.push(
                                RuleCheck::TypeMismatch,
                                side.span,
                                format!(
                                    "`{}` needs boolean operands, got {}",
                                    op.symbol(),
                                    t.describe()
                                ),
                            );
                        }
                    }
                }
                Some(FieldTy::Bool)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if let (Some(a), Some(b)) = (lt, rt) {
                    match (a.is_numeric(), b.is_numeric()) {
                        (true, true) => self.unit_check(lt, lhs, rt, rhs),
                        _ if a == FieldTy::Str && b == FieldTy::Str => {
                            self.check_string_eq_domain(lhs, rhs);
                        }
                        _ if a == FieldTy::Bool && b == FieldTy::Bool => {
                            if !matches!(op, BinOp::Eq | BinOp::Ne) {
                                self.push(
                                    RuleCheck::TypeMismatch,
                                    lhs.span,
                                    "booleans only support `==` and `!=`".to_string(),
                                );
                            }
                        }
                        _ => self.push(
                            RuleCheck::TypeMismatch,
                            lhs.span,
                            format!("cannot compare {} with {}", a.describe(), b.describe()),
                        ),
                    }
                }
                Some(FieldTy::Bool)
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let mut result = FieldTy::Int;
                for (t, side) in [(lt, lhs), (rt, rhs)] {
                    if let Some(t) = t {
                        if !t.is_numeric() {
                            self.push(
                                RuleCheck::TypeMismatch,
                                side.span,
                                format!(
                                    "`{}` needs numeric operands, got {}",
                                    op.symbol(),
                                    t.describe()
                                ),
                            );
                            return None;
                        }
                        if t == FieldTy::Ns {
                            result = FieldTy::Ns;
                        } else if t == FieldTy::Float && result != FieldTy::Ns {
                            result = FieldTy::Float;
                        }
                    }
                }
                Some(result)
            }
        }
    }

    /// Ns-typed quantities must meet duration literals, not bare numbers.
    fn unit_check(&mut self, lt: Option<FieldTy>, lhs: &Expr, rt: Option<FieldTy>, rhs: &Expr) {
        for (t_a, e_a, t_b, e_b) in [(lt, lhs, rt, rhs), (rt, rhs, lt, lhs)] {
            if t_a == Some(FieldTy::Ns) && !contains_dur_lit(e_a) {
                if let Some(v) = bare_num_lit(e_b) {
                    if v != 0.0 {
                        self.push(
                            RuleCheck::UnitConfusion,
                            e_b.span,
                            format!(
                                "`{e_a}` is nanosecond-valued but compared against the bare \
                                 literal `{e_b}`; write a duration such as `5ms` to make the \
                                 unit explicit"
                            ),
                        );
                    }
                }
            }
            if contains_dur_lit(e_a) && t_b.is_some_and(|t| t.is_numeric() && t != FieldTy::Ns) {
                self.push(
                    RuleCheck::UnitConfusion,
                    e_a.span,
                    format!(
                        "duration literal `{e_a}` compared against `{e_b}`, which is not \
                         nanosecond-valued"
                    ),
                );
            }
        }
    }

    /// `==`/`!=` between an enum field and a string literal: the literal
    /// must be a domain member.
    fn check_string_eq_domain(&mut self, lhs: &Expr, rhs: &Expr) {
        for (field_side, lit_side) in [(lhs, rhs), (rhs, lhs)] {
            if let ExprKind::Str(lit) = &lit_side.kind {
                self.check_enum_values(field_side, std::iter::once(lit.as_str()), lit_side.span);
            }
        }
    }

    /// Checks literal values against the lhs field's finite domain.
    fn check_enum_values<'v>(
        &mut self,
        lhs: &Expr,
        values: impl Iterator<Item = &'v str>,
        span: Span,
    ) {
        let ExprKind::Ident(name) = &lhs.kind else { return };
        let Some(domain) = catalog::field(name).and_then(|f| f.domain) else { return };
        for value in values {
            if !domain.contains(value) {
                self.push(
                    RuleCheck::UnknownEnumValue,
                    span,
                    format!("`{value}` is not a member of {} (`{name}`)", domain.describe()),
                );
            }
        }
    }
}

/// The numeric value of a bare (unit-less) literal, if `e` is one.
fn bare_num_lit(e: &Expr) -> Option<f64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v as f64),
        ExprKind::Float(v) => Some(*v),
        ExprKind::Neg(inner) => bare_num_lit(inner).map(|v| -v),
        _ => None,
    }
}

/// Whether the expression contains a duration literal (units explicit).
fn contains_dur_lit(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Dur(_) => true,
        ExprKind::Neg(inner) | ExprKind::Not(inner) => contains_dur_lit(inner),
        ExprKind::Binary { lhs, rhs, .. } => contains_dur_lit(lhs) || contains_dur_lit(rhs),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;

    fn checks_of(src: &str) -> Vec<RuleCheck> {
        verify_rules(&parse_rules(src).unwrap()).diagnostics().iter().map(|d| d.check).collect()
    }

    fn assert_single(src: &str, check: RuleCheck) {
        let checks = checks_of(src);
        assert_eq!(checks, vec![check], "for: {src}");
    }

    #[test]
    fn clean_rules_pass() {
        let report = verify_rules(
            &parse_rules(
                "rule r when syscall == \"read\" and latency_ns > 5ms \
                 then alert(warning, \"slow read\")\n\
                 rule w on window(1s) by class when count >= 100 and error_fraction >= 0.25 \
                 then alert(warning, error_rate_anomaly, \"errors\")",
            )
            .unwrap(),
        );
        assert!(report.is_ok(), "{:?}", report.diagnostics());
        assert!(report.diagnostics().is_empty());
    }

    #[test]
    fn unknown_field_with_suggestion() {
        let report =
            verify_rules(&parse_rules("rule r when ofset > 0 then record(\"x\")").unwrap());
        let diag = &report.diagnostics()[0];
        assert_eq!(diag.check, RuleCheck::UnknownField);
        assert!(diag.message.contains("did you mean `offset`"), "{}", diag.message);
        assert!(!report.is_ok());
    }

    #[test]
    fn unknown_enum_values_reject() {
        assert_single(
            "rule r when syscall == \"futex\" then record(\"x\")",
            RuleCheck::UnknownEnumValue,
        );
        assert_single(
            "rule r when class in (data, \"bogus\") then record(\"x\")",
            RuleCheck::UnknownEnumValue,
        );
        assert_single("rule r when follows(futex) then record(\"x\")", RuleCheck::UnknownEnumValue);
        assert_single(
            "rule r when offset > 0 then alert(info, not_a_kind, \"x\")",
            RuleCheck::UnknownEnumValue,
        );
    }

    #[test]
    fn type_mismatches_reject() {
        assert_single("rule r when syscall > 4 then record(\"x\")", RuleCheck::TypeMismatch);
        assert_single("rule r when offset + 1 then record(\"x\")", RuleCheck::TypeMismatch);
        assert_single("rule r when not offset then record(\"x\")", RuleCheck::TypeMismatch);
        assert_single("rule r when args == \"x\" then record(\"x\")", RuleCheck::TypeMismatch);
        assert_single(
            "rule r by class when offset > 0 then record(\"x\")",
            RuleCheck::TypeMismatch,
        );
    }

    #[test]
    fn unit_confusion_warns_but_passes() {
        let report = verify_rules(
            &parse_rules("rule r when latency_ns > 5000000 then record(\"slow\")").unwrap(),
        );
        assert_eq!(report.diagnostics()[0].check, RuleCheck::UnitConfusion);
        assert!(report.is_ok(), "unit confusion is a warning");
        // Comparing against zero carries no unit.
        assert!(checks_of("rule r when latency_ns > 0 then record(\"x\")").is_empty());
        // Duration literal against a unit-less count.
        assert_single(
            "rule w on window(1s) when count > 5ms then record(\"x\")",
            RuleCheck::UnitConfusion,
        );
    }

    #[test]
    fn satisfiability_checks_carry_proofs() {
        let report = verify_rules(
            &parse_rules("rule r when offset > 10 and offset < 5 then record(\"x\")").unwrap(),
        );
        let diag = &report.diagnostics()[0];
        assert_eq!(diag.check, RuleCheck::UnsatisfiablePredicate);
        assert!(diag.message.contains("offset"), "{}", diag.message);
        assert!(report.statically_empty("r"));

        assert_single(
            "rule r when offset >= 0 then record(\"x\")",
            RuleCheck::TautologicalPredicate,
        );
    }

    #[test]
    fn duplicate_and_shadowed_rules() {
        assert_eq!(
            checks_of(
                "rule r when offset > 0 then record(\"a\")\n\
                 rule r when offset > 1 then record(\"b\")"
            ),
            vec![RuleCheck::DuplicateRule]
        );
        let checks = checks_of(
            "rule a when offset > 0 then record(\"a\")\n\
             rule b when offset > 0 then record(\"b\")",
        );
        assert_eq!(checks, vec![RuleCheck::ShadowedRule]);
    }

    #[test]
    fn window_cost_checks() {
        assert_single(
            "rule w on window(0s) when count > 1 then record(\"x\")",
            RuleCheck::WindowCost,
        );
        assert_single(
            "rule w on window(700s) when count > 1 then record(\"x\")",
            RuleCheck::WindowCost,
        );
        assert_single(
            "rule w on window(100s, 1s) when count > 1 then record(\"x\")",
            RuleCheck::WindowCost,
        );
        assert_single(
            "rule w on window(1s, 2s) when count > 1 then record(\"x\")",
            RuleCheck::GappyWindow,
        );
    }

    #[test]
    fn scope_checks() {
        assert_single(
            "rule r when count > 5 then record(\"x\")",
            RuleCheck::AggregateWithoutWindow,
        );
        assert_single(
            "rule w on window(1s) when count(count > 1) > 1 then record(\"x\")",
            RuleCheck::AggregateWithoutWindow,
        );
        assert_single(
            "rule w on window(1s) when offset > 5 then record(\"x\")",
            RuleCheck::EventFieldOutsideAggregate,
        );
        assert_single(
            "rule w on window(1s) when first_read then record(\"x\")",
            RuleCheck::SequenceAtomInWindowRule,
        );
        assert_single(
            "rule w on window(1s) when count(follows(write)) > 1 then record(\"x\")",
            RuleCheck::SequenceAtomInWindowRule,
        );
    }

    #[test]
    fn rejected_rules_skip_satisfiability_noise() {
        // `bogus < 0` would "prove" unsat if analyzed; the unknown-field
        // reject must be the only diagnostic.
        assert_single(
            "rule r when bogus < 0 and offset > 0 and offset < 0 then record(\"x\")",
            RuleCheck::UnknownField,
        );
    }

    #[test]
    fn error_reports_render_and_convert() {
        let report = verify_rules(&parse_rules("rule r when nope > 1 then record(\"x\")").unwrap());
        let err = report.into_result().unwrap_err();
        assert!(err.violates(RuleCheck::UnknownField));
        assert!(!err.violates(RuleCheck::TypeMismatch));
        let text = err.to_string();
        assert!(text.contains("error[unknown-field]"), "{text}");
        assert!(text.contains("rule `r`"), "{text}");
    }

    #[test]
    fn check_names_are_kebab_case_and_unique() {
        let mut names: Vec<&str> = RuleCheck::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 13);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "names must be unique");
    }
}
